#include <gtest/gtest.h>

#include <memory>

#include "ml/cross_validation.h"
#include "ml/logistic_regression.h"
#include "ml/random_forest.h"
#include "stats/rng.h"

namespace fairlaw::ml {
namespace {

using fairlaw::stats::Rng;

Dataset MakeXor(size_t n, Rng* rng) {
  Dataset data;
  for (size_t i = 0; i < n; ++i) {
    double x0 = rng->Uniform(-1.0, 1.0);
    double x1 = rng->Uniform(-1.0, 1.0);
    data.features.push_back({x0, x1});
    data.labels.push_back((x0 > 0.0) != (x1 > 0.0) ? 1 : 0);
  }
  return data;
}

double AccuracyOn(const Classifier& model, const Dataset& data) {
  std::vector<int> predictions =
      model.PredictBatch(data.features).ValueOrDie();
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (predictions[i] == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(RandomForestTest, LearnsXorAndBeatsSingleShallowTree) {
  Rng rng(5);
  Dataset train = MakeXor(1500, &rng);
  Dataset test = MakeXor(500, &rng);

  RandomForestOptions options;
  options.num_trees = 20;
  options.tree.max_depth = 6;
  RandomForest forest(options);
  ASSERT_TRUE(forest.Fit(train).ok());
  EXPECT_EQ(forest.num_trees(), 20u);
  double forest_accuracy = AccuracyOn(forest, test);
  EXPECT_GT(forest_accuracy, 0.9);

  DecisionTreeOptions stump_options;
  stump_options.max_depth = 1;
  DecisionTree stump(stump_options);
  ASSERT_TRUE(stump.Fit(train).ok());
  EXPECT_GT(forest_accuracy, AccuracyOn(stump, test) + 0.2);
}

TEST(RandomForestTest, DeterministicGivenSeed) {
  Rng rng(7);
  Dataset data = MakeXor(400, &rng);
  RandomForestOptions options;
  options.num_trees = 5;
  options.seed = 123;
  RandomForest a(options);
  RandomForest b(options);
  ASSERT_TRUE(a.Fit(data).ok());
  ASSERT_TRUE(b.Fit(data).ok());
  std::vector<double> x = {0.3, -0.4};
  EXPECT_DOUBLE_EQ(a.PredictProba(x).ValueOrDie(),
                   b.PredictProba(x).ValueOrDie());
}

TEST(RandomForestTest, Validation) {
  RandomForest unfitted;
  std::vector<double> x = {0.0, 0.0};
  EXPECT_TRUE(unfitted.PredictProba(x).status().IsFailedPrecondition());
  Rng rng(9);
  Dataset data = MakeXor(50, &rng);
  RandomForestOptions bad;
  bad.num_trees = 0;
  EXPECT_FALSE(RandomForest(bad).Fit(data).ok());
  bad.num_trees = 3;
  bad.sample_fraction = 0.0;
  EXPECT_FALSE(RandomForest(bad).Fit(data).ok());
}

TEST(CrossValidationTest, ScoresReasonableOnSeparableData) {
  Rng rng(11);
  Dataset data;
  for (int i = 0; i < 600; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    double center = label == 1 ? 1.5 : -1.5;
    data.features.push_back({rng.Normal(center, 1.0)});
    data.labels.push_back(label);
  }
  CrossValidationResult result =
      CrossValidate(
          data,
          [] {
            return std::unique_ptr<Classifier>(new LogisticRegression());
          },
          5, &rng)
          .ValueOrDie();
  EXPECT_EQ(result.fold_accuracy.size(), 5u);
  EXPECT_GT(result.mean_accuracy, 0.85);
  EXPECT_GT(result.mean_auc, 0.9);
  EXPECT_LT(result.stddev_accuracy, 0.1);
}

TEST(CrossValidationTest, Validation) {
  Rng rng(13);
  Dataset data;
  data.features = {{1.0}, {2.0}, {3.0}, {4.0}};
  data.labels = {0, 1, 0, 1};
  auto factory = [] {
    return std::unique_ptr<Classifier>(new LogisticRegression());
  };
  EXPECT_FALSE(CrossValidate(data, factory, 1, &rng).ok());
  EXPECT_FALSE(CrossValidate(data, factory, 2, nullptr).ok());
  EXPECT_FALSE(CrossValidate(data, ModelFactory(), 2, &rng).ok());
  ModelFactory null_factory = [] {
    return std::unique_ptr<Classifier>();
  };
  EXPECT_FALSE(CrossValidate(data, null_factory, 2, &rng).ok());
}

}  // namespace
}  // namespace fairlaw::ml
