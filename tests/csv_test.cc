#include <gtest/gtest.h>

#include <cstdio>

#include "data/csv.h"

namespace fairlaw::data {
namespace {

TEST(CsvTest, ParsesTypesFromHeaderedText) {
  std::string text =
      "name,age,score,active\n"
      "ann,30,1.5,true\n"
      "bob,40,2.5,false\n";
  Table table = ReadCsvString(text).ValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.schema().field(0).type, DataType::kString);
  EXPECT_EQ(table.schema().field(1).type, DataType::kInt64);
  EXPECT_EQ(table.schema().field(2).type, DataType::kDouble);
  EXPECT_EQ(table.schema().field(3).type, DataType::kBool);
  EXPECT_EQ(table.GetColumn("name").ValueOrDie()->GetString(1).ValueOrDie(),
            "bob");
  EXPECT_EQ(table.GetColumn("age").ValueOrDie()->GetInt64(0).ValueOrDie(),
            30);
}

TEST(CsvTest, HeaderlessGetsGeneratedNames) {
  Table table = ReadCsvString("1,2\n3,4\n", {.has_header = false})
                    .ValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(table.schema().HasField("c0"));
  EXPECT_TRUE(table.schema().HasField("c1"));
}

TEST(CsvTest, NullTokensBecomeNulls) {
  std::string text = "x,y\n1.5,a\n,b\nNA,c\n";
  Table table = ReadCsvString(text).ValueOrDie();
  const Column* x = table.GetColumn("x").ValueOrDie();
  EXPECT_EQ(x->type(), DataType::kDouble);
  EXPECT_EQ(x->null_count(), 2u);
  EXPECT_DOUBLE_EQ(x->GetDouble(0).ValueOrDie(), 1.5);
}

TEST(CsvTest, QuotedFieldsWithDelimitersAndEscapes) {
  std::string text =
      "a,b\n"
      "\"x,y\",\"he said \"\"hi\"\"\"\n";
  Table table = ReadCsvString(text).ValueOrDie();
  EXPECT_EQ(table.GetColumn("a").ValueOrDie()->GetString(0).ValueOrDie(),
            "x,y");
  EXPECT_EQ(table.GetColumn("b").ValueOrDie()->GetString(0).ValueOrDie(),
            "he said \"hi\"");
}

TEST(CsvTest, CrLfLineEndings) {
  Table table = ReadCsvString("a\r\n1\r\n2\r\n").ValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ReadCsvString("").ok());
  EXPECT_FALSE(ReadCsvString("a,b\n1\n").ok());          // ragged row
  EXPECT_FALSE(ReadCsvString("a\n\"unterminated\n").ok());  // open quote
}

TEST(CsvTest, MixedIntAndDoubleColumnBecomesDouble) {
  Table table = ReadCsvString("x\n1\n2.5\n").ValueOrDie();
  EXPECT_EQ(table.schema().field(0).type, DataType::kDouble);
}

TEST(CsvTest, CustomDelimiter) {
  Table table =
      ReadCsvString("a;b\n1;2\n", {.delimiter = ';'}).ValueOrDie();
  EXPECT_EQ(table.num_columns(), 2u);
  EXPECT_EQ(table.GetColumn("b").ValueOrDie()->GetInt64(0).ValueOrDie(), 2);
}

TEST(CsvTest, RoundTripPreservesData) {
  std::string text =
      "name,score,ok\n"
      "ann,1.500000,true\n"
      "\"b,ob\",2.250000,false\n";
  Table table = ReadCsvString(text).ValueOrDie();
  std::string written = WriteCsvString(table).ValueOrDie();
  Table reparsed = ReadCsvString(written).ValueOrDie();
  EXPECT_EQ(reparsed.num_rows(), table.num_rows());
  EXPECT_EQ(
      reparsed.GetColumn("name").ValueOrDie()->GetString(1).ValueOrDie(),
      "b,ob");
  EXPECT_DOUBLE_EQ(
      reparsed.GetColumn("score").ValueOrDie()->GetDouble(1).ValueOrDie(),
      2.25);
}

TEST(CsvTest, RoundTripPreservesNulls) {
  Table table = ReadCsvString("x,y\n1,a\n,b\n").ValueOrDie();
  std::string written = WriteCsvString(table).ValueOrDie();
  Table reparsed = ReadCsvString(written).ValueOrDie();
  EXPECT_EQ(reparsed.GetColumn("x").ValueOrDie()->null_count(), 1u);
}

TEST(CsvTest, FileRoundTrip) {
  std::string path = ::testing::TempDir() + "/fairlaw_csv_test.csv";
  Table table = ReadCsvString("a,b\n1,x\n2,y\n").ValueOrDie();
  ASSERT_TRUE(WriteCsvFile(table, path).ok());
  Table read = ReadCsvFile(path).ValueOrDie();
  EXPECT_EQ(read.num_rows(), 2u);
  std::remove(path.c_str());
  EXPECT_TRUE(ReadCsvFile("/nonexistent/nope.csv").status().IsIOError());
}

}  // namespace
}  // namespace fairlaw::data
