#include <gtest/gtest.h>

#include "audit/proxy.h"
#include "data/column.h"
#include "data/schema.h"
#include "stats/rng.h"

namespace fairlaw::audit {
namespace {

using fairlaw::stats::Rng;

/// gender with one strong numeric proxy, one weak proxy, one independent
/// feature, and one categorical proxy.
data::Table ProxyTable(size_t n, double strong, double weak) {
  Rng rng(13);
  std::vector<std::string> gender(n);
  std::vector<double> strong_proxy(n);
  std::vector<double> weak_proxy(n);
  std::vector<double> independent(n);
  std::vector<std::string> district(n);
  for (size_t i = 0; i < n; ++i) {
    bool female = rng.Bernoulli(0.5);
    gender[i] = female ? "female" : "male";
    strong_proxy[i] = (female ? -strong : strong) + rng.Normal(0.0, 1.0);
    weak_proxy[i] = (female ? -weak : weak) + rng.Normal(0.0, 1.0);
    independent[i] = rng.Normal(0.0, 1.0);
    // Categorical proxy: females mostly in district "north".
    district[i] = rng.Bernoulli(female ? 0.85 : 0.15) ? "north" : "south";
  }
  data::Schema schema =
      data::Schema::Make({{"gender", data::DataType::kString},
                          {"strong_proxy", data::DataType::kDouble},
                          {"weak_proxy", data::DataType::kDouble},
                          {"independent", data::DataType::kDouble},
                          {"district", data::DataType::kString}})
          .ValueOrDie();
  return data::Table::Make(
             schema, {data::Column::FromStrings(gender),
                      data::Column::FromDoubles(strong_proxy),
                      data::Column::FromDoubles(weak_proxy),
                      data::Column::FromDoubles(independent),
                      data::Column::FromStrings(district)})
      .ValueOrDie();
}

TEST(ProxyDetectionTest, RanksProxiesByAssociation) {
  data::Table table = ProxyTable(4000, 2.0, 0.5);
  std::vector<ProxyFinding> findings =
      DetectProxies(table, "gender",
                    {"strong_proxy", "weak_proxy", "independent",
                     "district"})
          .ValueOrDie();
  ASSERT_EQ(findings.size(), 4u);
  // Sorted by Cramér's V; the strong proxy or district leads, the
  // independent feature is last.
  EXPECT_EQ(findings.back().feature, "independent");
  EXPECT_LT(findings.back().cramers_v, 0.1);
  // Find the named entries.
  auto find = [&](const std::string& name) -> const ProxyFinding& {
    for (const ProxyFinding& f : findings) {
      if (f.feature == name) return f;
    }
    ADD_FAILURE() << name << " missing";
    return findings[0];
  };
  EXPECT_GT(find("strong_proxy").cramers_v, 0.5);
  EXPECT_TRUE(find("strong_proxy").flagged);
  EXPECT_GT(find("district").cramers_v, 0.5);
  EXPECT_TRUE(find("district").flagged);
  EXPECT_FALSE(find("independent").flagged);
  EXPECT_GT(find("strong_proxy").cramers_v, find("weak_proxy").cramers_v);
  // Mutual information is ordered consistently.
  EXPECT_GT(find("strong_proxy").mutual_information,
            find("independent").mutual_information);
  // Predictability gain: strong proxy predicts gender well above the
  // majority baseline.
  EXPECT_GT(find("strong_proxy").predictability_gain, 0.2);
  EXPECT_LT(find("independent").predictability_gain, 0.05);
}

TEST(ProxyDetectionTest, NoProxiesWhenIndependent) {
  data::Table table = ProxyTable(2000, 0.0, 0.0);
  std::vector<ProxyFinding> findings =
      DetectProxies(table, "gender", {"strong_proxy", "weak_proxy"})
          .ValueOrDie();
  for (const ProxyFinding& finding : findings) {
    EXPECT_FALSE(finding.flagged);
    EXPECT_LT(finding.cramers_v, 0.1);
  }
}

TEST(ProxyContingencyTest, ShapeMatchesBinsAndGroups) {
  data::Table table = ProxyTable(500, 1.0, 0.0);
  auto contingency =
      ProxyContingencyTable(table, "strong_proxy", "gender", 10)
          .ValueOrDie();
  EXPECT_EQ(contingency.size(), 10u);  // 10 quantile bins
  EXPECT_EQ(contingency[0].size(), 2u);  // two genders
  int64_t total = 0;
  for (const auto& row : contingency) {
    for (int64_t cell : row) total += cell;
  }
  EXPECT_EQ(total, 500);
}

TEST(ProxyDetectionTest, Validation) {
  data::Table table = ProxyTable(100, 1.0, 0.0);
  EXPECT_FALSE(DetectProxies(table, "gender", {}).ok());
  EXPECT_FALSE(
      DetectProxies(table, "gender", {"gender"}).ok());  // self-proxy
  EXPECT_FALSE(DetectProxies(table, "gender", {"missing"}).ok());
  ProxyDetectionOptions options;
  options.flag_threshold = 2.0;
  EXPECT_FALSE(
      DetectProxies(table, "gender", {"strong_proxy"}, options).ok());
}

}  // namespace
}  // namespace fairlaw::audit
