// base/thread_pool.h: scheduling, exception propagation, and shutdown.
#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <future>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "base/thread_pool.h"

namespace fairlaw {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&hits](size_t i) { ++hits[i]; });
  for (const std::atomic<int>& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, ResultIsIndependentOfThreadCount) {
  // The same reduction, computed at several pool widths, must agree:
  // per-index slots make the aggregation order-independent.
  std::vector<long long> expected_slots(500);
  for (size_t i = 0; i < expected_slots.size(); ++i) {
    expected_slots[i] = static_cast<long long>(i * i);
  }
  const long long expected = std::accumulate(expected_slots.begin(),
                                             expected_slots.end(), 0LL);
  for (const size_t threads : {1u, 2u, 8u}) {
    ThreadPool pool(threads);
    std::vector<long long> slots(expected_slots.size(), 0);
    pool.ParallelFor(slots.size(), [&slots](size_t i) {
      slots[i] = static_cast<long long>(i * i);
    });
    EXPECT_EQ(std::accumulate(slots.begin(), slots.end(), 0LL), expected)
        << "threads=" << threads;
  }
}

TEST(ThreadPoolTest, SubmitPropagatesExceptionThroughFuture) {
  ThreadPool pool(2);
  std::future<void> f =
      pool.Submit([] { throw std::runtime_error("job failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPoolTest, ParallelForRethrowsLowestIndexException) {
  ThreadPool pool(4);
  try {
    pool.ParallelFor(64, [](size_t i) {
      if (i == 7 || i == 31) {
        throw std::runtime_error("failed at " + std::to_string(i));
      }
    });
    FAIL() << "expected ParallelFor to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "failed at 7");
  }
}

TEST(ThreadPoolTest, PoolKeepsWorkingAfterAnException) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.Submit([] { throw std::runtime_error("boom"); }).get(),
               std::runtime_error);
  std::atomic<int> counter{0};
  pool.ParallelFor(10, [&counter](size_t) { ++counter; });
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, DestructorDrainsPendingQueue) {
  // Queue far more jobs than workers, then destroy the pool immediately:
  // shutdown must finish the backlog, not drop it.
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 200; ++i) {
      (void)pool.Submit([&counter] { ++counter; });
    }
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPoolTest, ZeroRequestsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.num_threads(), 1u);
}

TEST(ThreadPoolTest, ParallelForWithNoWorkReturnsImmediately) {
  ThreadPool pool(2);
  bool ran = false;
  pool.ParallelFor(0, [&ran](size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

}  // namespace
}  // namespace fairlaw
