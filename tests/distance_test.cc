#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

using V = std::vector<double>;

TEST(TotalVariationTest, IdenticalIsZero) {
  std::vector<double> p = {0.25, 0.25, 0.5};
  EXPECT_DOUBLE_EQ(TotalVariation(p, p).ValueOrDie(), 0.0);
}

TEST(TotalVariationTest, DisjointIsOne) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(TotalVariation(p, q).ValueOrDie(), 1.0);
}

TEST(TotalVariationTest, KnownValue) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.8, 0.2};
  EXPECT_NEAR(TotalVariation(p, q).ValueOrDie(), 0.3, 1e-12);
}

TEST(TotalVariationTest, RejectsMismatchedOrNegative) {
  EXPECT_FALSE(TotalVariation(V{0.5}, V{0.5, 0.5}).ok());
  EXPECT_FALSE(TotalVariation(V{-0.1, 1.1}, V{0.5, 0.5}).ok());
  EXPECT_FALSE(TotalVariation(V{}, V{}).ok());
}

TEST(HellingerTest, BoundsAndKnownValues) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(Hellinger(p, p).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(Hellinger(p, q).ValueOrDie(), 1.0);
  // H^2 = 1 - sum sqrt(p q); for p=(.5,.5), q=(.9,.1):
  std::vector<double> a = {0.5, 0.5};
  std::vector<double> b = {0.9, 0.1};
  double bc = std::sqrt(0.45) + std::sqrt(0.05);
  EXPECT_NEAR(Hellinger(a, b).ValueOrDie(), std::sqrt(1.0 - bc), 1e-12);
}

TEST(KlDivergenceTest, KnownValueAndInfiniteCase) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.25, 0.75};
  double expected = 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0);
  EXPECT_NEAR(KlDivergence(p, q).ValueOrDie(), expected, 1e-12);
  EXPECT_DOUBLE_EQ(KlDivergence(p, p).ValueOrDie(), 0.0);
  // Support mismatch -> infinite -> error.
  EXPECT_FALSE(KlDivergence(V{0.5, 0.5}, V{1.0, 0.0}).ok());
  // Zero in p is fine.
  EXPECT_NEAR(KlDivergence(V{1.0, 0.0}, V{0.5, 0.5}).ValueOrDie(),
              std::log(2.0), 1e-12);
}

TEST(JensenShannonTest, SymmetricAndBounded) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.1, 0.9};
  double pq = JensenShannon(p, q).ValueOrDie();
  double qp = JensenShannon(q, p).ValueOrDie();
  EXPECT_DOUBLE_EQ(pq, qp);
  EXPECT_GT(pq, 0.0);
  EXPECT_LE(pq, std::log(2.0) + 1e-12);
  // Works on disjoint supports where KL is infinite.
  EXPECT_NEAR(JensenShannon(V{1.0, 0.0}, V{0.0, 1.0}).ValueOrDie(),
              std::log(2.0), 1e-12);
}

TEST(ChiSquareDivergenceTest, KnownValue) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.25, 0.75};
  // (0.25)^2/0.25 + (0.25)^2/0.75
  EXPECT_NEAR(ChiSquareDivergence(p, q).ValueOrDie(),
              0.25 + 0.0625 / 0.75, 1e-12);
  EXPECT_FALSE(ChiSquareDivergence(V{0.5, 0.5}, V{1.0, 0.0}).ok());
}

TEST(Wasserstein1Test, PointMassShift) {
  // Two point masses distance d apart: W1 = d.
  std::vector<double> x = {0.0, 0.0, 0.0};
  std::vector<double> y = {2.5, 2.5, 2.5};
  EXPECT_NEAR(Wasserstein1Samples(x, y).ValueOrDie(), 2.5, 1e-12);
}

TEST(Wasserstein1Test, LocationShiftEqualsShift) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> y = {2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(Wasserstein1Samples(x, y).ValueOrDie(), 1.0, 1e-12);
}

TEST(Wasserstein1Test, DifferentSampleSizes) {
  std::vector<double> x = {0.0, 1.0};        // uniform on {0,1}
  std::vector<double> y = {0.0, 0.5, 1.0};   // uniform on {0,.5,1}
  double d = Wasserstein1Samples(x, y).ValueOrDie();
  EXPECT_GE(d, 0.0);
  EXPECT_LT(d, 0.25);
}

TEST(Wasserstein1Test, SymmetryAndIdentity) {
  Rng rng(5);
  std::vector<double> x(100);
  std::vector<double> y(80);
  for (double& v : x) v = rng.Normal();
  for (double& v : y) v = rng.Normal(1.0, 2.0);
  double xy = Wasserstein1Samples(x, y).ValueOrDie();
  double yx = Wasserstein1Samples(y, x).ValueOrDie();
  EXPECT_NEAR(xy, yx, 1e-12);
  EXPECT_NEAR(Wasserstein1Samples(x, x).ValueOrDie(), 0.0, 1e-12);
}

TEST(Wasserstein1Test, GaussianShiftConverges) {
  // W1 between N(0,1) and N(mu,1) is |mu|.
  Rng rng(71);
  const size_t n = 20000;
  std::vector<double> x(n);
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    x[i] = rng.Normal();
    y[i] = rng.Normal(1.5, 1.0);
  }
  EXPECT_NEAR(Wasserstein1Samples(x, y).ValueOrDie(), 1.5, 0.05);
}

TEST(Wasserstein1DiscreteTest, MatchesHandComputation) {
  // p: mass 1 at 0. q: mass 1 at 3. W1 = 3.
  EXPECT_NEAR(Wasserstein1Discrete(V{0.0}, V{1.0}, V{3.0}, V{1.0}).ValueOrDie(),
              3.0, 1e-12);
  // p uniform on {0,1}, q uniform on {1,2}: W1 = 1.
  EXPECT_NEAR(Wasserstein1Discrete(V{0.0, 1.0}, V{0.5, 0.5}, V{1.0, 2.0},
                                   V{0.5, 0.5})
                  .ValueOrDie(),
              1.0, 1e-12);
}

TEST(Wasserstein1DiscreteTest, RejectsUnsortedSupport) {
  EXPECT_FALSE(
      Wasserstein1Discrete(V{1.0, 0.0}, V{0.5, 0.5}, V{0.0}, V{1.0}).ok());
}

TEST(KolmogorovSmirnovTest, KnownValues) {
  std::vector<double> x = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov(x, x).ValueOrDie(), 0.0);
  std::vector<double> y = {10.0, 11.0};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnov(x, y).ValueOrDie(), 1.0);
  // Half-overlapping.
  std::vector<double> z = {3.5, 4.5};
  double ks = KolmogorovSmirnov(x, z).ValueOrDie();
  EXPECT_GT(ks, 0.5);
  EXPECT_LE(ks, 1.0);
}

// Property sweep: metric axioms on random distributions.
class DistancePropertyTest : public ::testing::TestWithParam<uint64_t> {};

std::vector<double> RandomSimplex(Rng* rng, size_t k) {
  std::vector<double> p(k);
  double total = 0.0;
  for (double& v : p) {
    v = rng->Exponential(1.0);
    total += v;
  }
  for (double& v : p) v /= total;
  return p;
}

TEST_P(DistancePropertyTest, AxiomsHold) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    size_t k = 2 + rng.UniformInt(6);
    std::vector<double> p = RandomSimplex(&rng, k);
    std::vector<double> q = RandomSimplex(&rng, k);
    std::vector<double> r = RandomSimplex(&rng, k);

    double tv_pq = TotalVariation(p, q).ValueOrDie();
    double tv_qp = TotalVariation(q, p).ValueOrDie();
    double tv_pr = TotalVariation(p, r).ValueOrDie();
    double tv_rq = TotalVariation(r, q).ValueOrDie();
    EXPECT_NEAR(tv_pq, tv_qp, 1e-12);              // symmetry
    EXPECT_GE(tv_pq, 0.0);                         // non-negativity
    EXPECT_LE(tv_pq, 1.0);                         // boundedness
    EXPECT_LE(tv_pq, tv_pr + tv_rq + 1e-12);       // triangle inequality

    double h_pq = Hellinger(p, q).ValueOrDie();
    double h_qp = Hellinger(q, p).ValueOrDie();
    double h_pr = Hellinger(p, r).ValueOrDie();
    double h_rq = Hellinger(r, q).ValueOrDie();
    EXPECT_NEAR(h_pq, h_qp, 1e-12);
    EXPECT_GE(h_pq, 0.0);
    EXPECT_LE(h_pq, 1.0);
    EXPECT_LE(h_pq, h_pr + h_rq + 1e-9);

    // Pinsker-flavored cross-bounds: H^2 <= TV <= sqrt(2) H.
    EXPECT_LE(h_pq * h_pq, tv_pq + 1e-9);
    EXPECT_LE(tv_pq, std::sqrt(2.0) * h_pq + 1e-9);

    // KL is non-negative (Gibbs) when finite.
    Result<double> kl = KlDivergence(p, q);
    if (kl.ok()) {
      EXPECT_GE(*kl, -1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistancePropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- presorted fast paths -------------------------------------------------

std::vector<double> DrawSample(uint64_t seed, size_t n, double mean) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.Normal(mean, 1.0);
  return v;
}

TEST(PresortedTest, ExactlyEqualsSortingVariant) {
  std::vector<double> x = DrawSample(41, 257, 0.0);
  std::vector<double> y = DrawSample(42, 193, 1.0);
  const double w1 = Wasserstein1Samples(x, y).ValueOrDie();
  const double ks = KolmogorovSmirnov(x, y).ValueOrDie();
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  EXPECT_EQ(Wasserstein1Presorted(x, y).ValueOrDie(), w1);
  EXPECT_EQ(KolmogorovSmirnovPresorted(x, y).ValueOrDie(), ks);
}

TEST(PresortedTest, RejectsUnsortedAndEmpty) {
  std::vector<double> sorted = {0.0, 1.0, 2.0};
  std::vector<double> unsorted = {2.0, 0.0, 1.0};
  EXPECT_FALSE(Wasserstein1Presorted(unsorted, sorted).ok());
  EXPECT_FALSE(Wasserstein1Presorted(sorted, unsorted).ok());
  EXPECT_FALSE(Wasserstein1Presorted({}, sorted).ok());
  EXPECT_FALSE(KolmogorovSmirnovPresorted(unsorted, sorted).ok());
  EXPECT_FALSE(KolmogorovSmirnovPresorted(sorted, {}).ok());
}

TEST(PresortedTest, TiesAndEqualSamplesHandled) {
  std::vector<double> ties = {1.0, 1.0, 1.0, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(Wasserstein1Presorted(ties, ties).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovPresorted(ties, ties).ValueOrDie(),
                   0.0);
}

// --- binned fast paths ----------------------------------------------------

TEST(BinnedTest, ApproximatesSampleDistanceWithinBinWidth) {
  const std::vector<double> x = DrawSample(43, 4000, 0.0);
  const std::vector<double> y = DrawSample(44, 4000, 1.0);
  const double exact_w1 = Wasserstein1Samples(x, y).ValueOrDie();
  const double exact_ks = KolmogorovSmirnov(x, y).ValueOrDie();

  const double lo = -5.0;
  const double hi = 6.0;
  const size_t bins = 200;
  Histogram hx = Histogram::Make(lo, hi, bins).ValueOrDie();
  Histogram hy = Histogram::Make(lo, hi, bins).ValueOrDie();
  hx.AddAll(x);
  hy.AddAll(y);
  const double width = (hi - lo) / static_cast<double>(bins);
  EXPECT_NEAR(Wasserstein1Binned(hx, hy).ValueOrDie(), exact_w1, width);
  // The KS statistic at bin granularity underestimates by at most the
  // CDF mass crossing inside one bin; a loose band suffices.
  EXPECT_NEAR(KolmogorovSmirnovBinned(hx, hy).ValueOrDie(), exact_ks,
              0.05);
}

TEST(BinnedTest, IdenticalHistogramsAreZero) {
  Histogram h = Histogram::Make(0.0, 1.0, 10).ValueOrDie();
  h.AddAll(std::vector<double>{0.1, 0.5, 0.9});
  EXPECT_DOUBLE_EQ(Wasserstein1Binned(h, h).ValueOrDie(), 0.0);
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovBinned(h, h).ValueOrDie(), 0.0);
}

TEST(BinnedTest, RejectsMisalignedHistograms) {
  Histogram a = Histogram::Make(0.0, 1.0, 10).ValueOrDie();
  Histogram wrong_bins = Histogram::Make(0.0, 1.0, 20).ValueOrDie();
  Histogram wrong_range = Histogram::Make(0.0, 2.0, 10).ValueOrDie();
  a.AddAll(std::vector<double>{0.5});
  wrong_bins.AddAll(std::vector<double>{0.5});
  wrong_range.AddAll(std::vector<double>{0.5});
  EXPECT_FALSE(Wasserstein1Binned(a, wrong_bins).ok());
  EXPECT_FALSE(Wasserstein1Binned(a, wrong_range).ok());
  EXPECT_FALSE(KolmogorovSmirnovBinned(a, wrong_bins).ok());
  EXPECT_FALSE(KolmogorovSmirnovBinned(a, wrong_range).ok());
}

}  // namespace
}  // namespace fairlaw::stats
