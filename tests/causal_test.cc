#include <gtest/gtest.h>

#include "causal/counterfactual.h"
#include "causal/scm.h"

namespace fairlaw::causal {
namespace {

using fairlaw::stats::Rng;

/// A -> X -> Y with additive Gaussian noise on X; A and Y deterministic.
Scm MakeChain() {
  Scm scm;
  EXPECT_TRUE(scm.AddNode({"a", {}, ConstantMechanism(1.0),
                           NoiseSpec::None()})
                  .ok());
  EXPECT_TRUE(scm.AddNode({"x", {"a"}, LinearMechanism({2.0}, 0.5),
                           NoiseSpec::Gaussian(0.0, 1.0)})
                  .ok());
  EXPECT_TRUE(scm.AddNode({"y", {"x"}, LinearMechanism({3.0}, 0.0),
                           NoiseSpec::None()})
                  .ok());
  return scm;
}

TEST(ScmTest, AddNodeValidation) {
  Scm scm;
  EXPECT_TRUE(scm.AddNode({"a", {}, ConstantMechanism(0.0),
                           NoiseSpec::None()})
                  .ok());
  // Duplicate name.
  EXPECT_TRUE(scm.AddNode({"a", {}, ConstantMechanism(0.0),
                           NoiseSpec::None()})
                  .IsAlreadyExists());
  // Unknown parent (also enforces topological order / acyclicity).
  EXPECT_FALSE(scm.AddNode({"b", {"zzz"}, LinearMechanism({1.0}),
                            NoiseSpec::None()})
                   .ok());
  // Missing mechanism.
  EXPECT_FALSE(scm.AddNode({"c", {}, Mechanism(), NoiseSpec::None()}).ok());
  // Bad noise.
  EXPECT_FALSE(scm.AddNode({"d", {}, ConstantMechanism(0.0),
                            NoiseSpec::Gaussian(0.0, -1.0)})
                   .ok());
  EXPECT_FALSE(scm.AddNode({"e", {}, ConstantMechanism(0.0),
                            NoiseSpec::Uniform(2.0, 1.0)})
                   .ok());
}

TEST(ScmTest, SampleMechanisms) {
  Scm scm = MakeChain();
  Rng rng(5);
  ScmSample sample = scm.Sample(5000, &rng).ValueOrDie();
  const std::vector<double>& a = *sample.Values("a").ValueOrDie();
  const std::vector<double>& x = *sample.Values("x").ValueOrDie();
  const std::vector<double>& y = *sample.Values("y").ValueOrDie();
  for (double v : a) EXPECT_DOUBLE_EQ(v, 1.0);
  // x = 2a + 0.5 + N(0,1): mean 2.5.
  double mean_x = 0.0;
  for (double v : x) mean_x += v;
  mean_x /= static_cast<double>(x.size());
  EXPECT_NEAR(mean_x, 2.5, 0.05);
  // y is exactly 3x.
  for (size_t i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(y[i], 3.0 * x[i]);
  EXPECT_FALSE(sample.Values("nope").ok());
}

TEST(ScmTest, DoInterventionSeversMechanism) {
  Scm scm = MakeChain();
  Scm intervened = scm.Do("x", 10.0).ValueOrDie();
  Rng rng(7);
  ScmSample sample = intervened.Sample(10, &rng).ValueOrDie();
  const std::vector<double>& x = *sample.Values("x").ValueOrDie();
  const std::vector<double>& y = *sample.Values("y").ValueOrDie();
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_DOUBLE_EQ(x[i], 10.0);
    EXPECT_DOUBLE_EQ(y[i], 30.0);
  }
  EXPECT_FALSE(scm.Do("nope", 1.0).ok());
}

TEST(ScmTest, AbductionRecoversNoise) {
  Scm scm = MakeChain();
  Rng rng(9);
  ScmSample sample = scm.Sample(50, &rng).ValueOrDie();
  const std::vector<double>& a = *sample.Values("a").ValueOrDie();
  const std::vector<double>& x = *sample.Values("x").ValueOrDie();
  const std::vector<double>& y = *sample.Values("y").ValueOrDie();
  const std::vector<double>& true_noise = *sample.Noise("x").ValueOrDie();
  for (size_t i = 0; i < 50; ++i) {
    std::vector<double> row = {a[i], x[i], y[i]};
    std::vector<double> noise = scm.Abduct(row).ValueOrDie();
    EXPECT_NEAR(noise[1], true_noise[i], 1e-12);
    EXPECT_NEAR(noise[0], 0.0, 1e-12);
    EXPECT_NEAR(noise[2], 0.0, 1e-12);
  }
}

TEST(ScmTest, CounterfactualConsistency) {
  // Counterfactual with the intervention equal to the observed value must
  // reproduce the observation exactly (Pearl's consistency axiom).
  Scm scm = MakeChain();
  Rng rng(11);
  ScmSample sample = scm.Sample(20, &rng).ValueOrDie();
  const std::vector<double>& a = *sample.Values("a").ValueOrDie();
  const std::vector<double>& x = *sample.Values("x").ValueOrDie();
  const std::vector<double>& y = *sample.Values("y").ValueOrDie();
  for (size_t i = 0; i < 20; ++i) {
    std::vector<double> row = {a[i], x[i], y[i]};
    std::vector<double> cf =
        scm.Counterfactual(row, {{"a", a[i]}}).ValueOrDie();
    EXPECT_NEAR(cf[1], x[i], 1e-12);
    EXPECT_NEAR(cf[2], y[i], 1e-12);
  }
}

TEST(ScmTest, CounterfactualPropagatesIntervention) {
  Scm scm = MakeChain();
  Rng rng(13);
  ScmSample sample = scm.Sample(20, &rng).ValueOrDie();
  const std::vector<double>& a = *sample.Values("a").ValueOrDie();
  const std::vector<double>& x = *sample.Values("x").ValueOrDie();
  const std::vector<double>& y = *sample.Values("y").ValueOrDie();
  for (size_t i = 0; i < 20; ++i) {
    std::vector<double> row = {a[i], x[i], y[i]};
    std::vector<double> cf =
        scm.Counterfactual(row, {{"a", 0.0}}).ValueOrDie();
    // a: 1 -> 0 shifts x by exactly -2 (same noise), y by -6.
    EXPECT_NEAR(cf[1], x[i] - 2.0, 1e-12);
    EXPECT_NEAR(cf[2], y[i] - 6.0, 1e-12);
  }
  // Unknown intervention node fails.
  std::vector<double> row = {1.0, 2.0, 6.0};
  EXPECT_FALSE(scm.Counterfactual(row, {{"zzz", 0.0}}).ok());
  std::vector<double> short_row = {1.0};
  EXPECT_FALSE(scm.Counterfactual(short_row, {{"a", 0.0}}).ok());
}

TEST(MechanismTest, Threshold) {
  Mechanism threshold = ThresholdMechanism({1.0, -1.0}, 0.0);
  std::vector<double> gt = {2.0, 1.0};
  std::vector<double> lt = {1.0, 2.0};
  std::vector<double> eq = {1.0, 1.0};
  EXPECT_DOUBLE_EQ(threshold(gt), 1.0);
  EXPECT_DOUBLE_EQ(threshold(lt), 0.0);
  EXPECT_DOUBLE_EQ(threshold(eq), 0.0);  // strict inequality
}

TEST(CounterfactualSampleTest, FlipsWholeDataset) {
  Scm scm = MakeChain();
  Rng rng(17);
  ScmSample sample = scm.Sample(30, &rng).ValueOrDie();
  ScmSample cf = CounterfactualSample(scm, sample, "a", 0.0).ValueOrDie();
  const std::vector<double>& x = *sample.Values("x").ValueOrDie();
  const std::vector<double>& cf_a = *cf.Values("a").ValueOrDie();
  const std::vector<double>& cf_x = *cf.Values("x").ValueOrDie();
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_DOUBLE_EQ(cf_a[i], 0.0);
    EXPECT_NEAR(cf_x[i], x[i] - 2.0, 1e-12);
  }
  std::vector<double> outcome =
      CounterfactualOutcome(scm, sample, "a", 0.0, "y").ValueOrDie();
  const std::vector<double>& y = *sample.Values("y").ValueOrDie();
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_NEAR(outcome[i], y[i] - 6.0, 1e-12);
  }
}

}  // namespace
}  // namespace fairlaw::causal
