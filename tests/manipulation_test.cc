#include <gtest/gtest.h>

#include "audit/manipulation.h"

namespace fairlaw::audit {
namespace {

metrics::MetricInput BiasedOutcomes() {
  metrics::MetricInput input;
  for (int i = 0; i < 100; ++i) {
    input.groups.push_back("male");
    input.predictions.push_back(i < 70 ? 1 : 0);  // 0.7
  }
  for (int i = 0; i < 100; ++i) {
    input.groups.push_back("female");
    input.predictions.push_back(i < 30 ? 1 : 0);  // 0.3
  }
  return input;
}

metrics::MetricInput FairOutcomes() {
  metrics::MetricInput input;
  for (int i = 0; i < 100; ++i) {
    input.groups.push_back("male");
    input.predictions.push_back(i < 50 ? 1 : 0);
    input.groups.push_back("female");
    input.predictions.push_back(i < 50 ? 1 : 0);
  }
  return input;
}

std::vector<ml::FeatureImportance> Importances(double sensitive,
                                               double proxy) {
  return {{"gender", sensitive}, {"university", proxy}, {"skill", 1.0}};
}

TEST(ManipulationAuditTest, MaskedModelFlagged) {
  // Attribution says fair (sensitive share ~0) but outcomes are biased:
  // the Dimanov signature.
  ManipulationAuditReport report =
      AuditManipulation(Importances(0.001, 2.0), "gender", BiasedOutcomes())
          .ValueOrDie();
  EXPECT_TRUE(report.attribution_says_fair);
  EXPECT_FALSE(report.outcome_says_fair);
  EXPECT_TRUE(report.masking_suspected);
  EXPECT_NEAR(report.outcome_gap, 0.4, 1e-12);
  EXPECT_NE(report.detail.find("MASKING SUSPECTED"), std::string::npos);
}

TEST(ManipulationAuditTest, HonestBiasedModelNotMasking) {
  // The sensitive feature visibly drives the model: attribution audit
  // already fails, no masking.
  ManipulationAuditReport report =
      AuditManipulation(Importances(3.0, 1.0), "gender", BiasedOutcomes())
          .ValueOrDie();
  EXPECT_FALSE(report.attribution_says_fair);
  EXPECT_FALSE(report.outcome_says_fair);
  EXPECT_FALSE(report.masking_suspected);
  EXPECT_GT(report.sensitive_attribution_share, 0.5);
}

TEST(ManipulationAuditTest, GenuinelyFairModelClean) {
  ManipulationAuditReport report =
      AuditManipulation(Importances(0.001, 1.0), "gender", FairOutcomes())
          .ValueOrDie();
  EXPECT_TRUE(report.attribution_says_fair);
  EXPECT_TRUE(report.outcome_says_fair);
  EXPECT_FALSE(report.masking_suspected);
}

TEST(ManipulationAuditTest, Validation) {
  EXPECT_FALSE(AuditManipulation({}, "gender", FairOutcomes()).ok());
  EXPECT_TRUE(AuditManipulation(Importances(1.0, 1.0), "zzz",
                                FairOutcomes())
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace fairlaw::audit
