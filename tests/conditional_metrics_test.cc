// §III-B and §III-F worked examples plus conditional-metric edge cases.
#include <gtest/gtest.h>

#include "metrics/conditional_metrics.h"
#include "metrics/group_metrics.h"

namespace fairlaw::metrics {
namespace {

void AddRows(MetricInput* input, std::vector<std::string>* strata,
             const std::string& group, const std::string& stratum,
             int prediction, int count) {
  for (int i = 0; i < count; ++i) {
    input->groups.push_back(group);
    input->predictions.push_back(prediction);
    strata->push_back(stratum);
  }
}

// ---- §III-B conditional statistical parity: 10 F / 20 M; 10 young
// males (5 hired, 50%), 6 young females; fair iff 3 young females hired.
// Old applicants: keep their rates equal so only the young stratum
// drives the verdict.

struct CspExample {
  MetricInput input;
  std::vector<std::string> strata;
};

CspExample MakeCspExample(int young_females_hired) {
  CspExample example;
  // Young males: 10, 5 hired.
  AddRows(&example.input, &example.strata, "male", "young", 1, 5);
  AddRows(&example.input, &example.strata, "male", "young", 0, 5);
  // Young females: 6.
  AddRows(&example.input, &example.strata, "female", "young", 1,
          young_females_hired);
  AddRows(&example.input, &example.strata, "female", "young", 0,
          6 - young_females_hired);
  // Old males: 10, 4 hired (40%). Old females: 4 applicants; 40% would
  // be 1.6, use 2/5... keep old rates equal: hire 2 of 4 females? 2/4=0.5
  // != 0.4. Use 10 old males with 4 hired and 5 old females with 2 hired
  // (both 40%).
  AddRows(&example.input, &example.strata, "male", "old", 1, 4);
  AddRows(&example.input, &example.strata, "male", "old", 0, 6);
  AddRows(&example.input, &example.strata, "female", "old", 1, 2);
  AddRows(&example.input, &example.strata, "female", "old", 0, 3);
  return example;
}

TEST(PaperExampleB, ThreeYoungFemalesHiredIsFair) {
  CspExample example = MakeCspExample(3);
  ConditionalReport report =
      ConditionalStatisticalParity(example.input, example.strata)
          .ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 0.0, 1e-12);
  ASSERT_EQ(report.strata.size(), 2u);
}

TEST(PaperExampleB, FewerYoungFemalesHiredIsUnfair) {
  CspExample example = MakeCspExample(1);
  ConditionalReport report =
      ConditionalStatisticalParity(example.input, example.strata)
          .ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  // Young stratum gap: 0.5 - 1/6.
  EXPECT_NEAR(report.max_gap, 0.5 - 1.0 / 6.0, 1e-12);
  // The old stratum individually is fine.
  for (const StratumReport& sr : report.strata) {
    if (sr.stratum == "old") {
      EXPECT_TRUE(sr.report.satisfied);
    }
    if (sr.stratum == "young") {
      EXPECT_FALSE(sr.report.satisfied);
    }
  }
}

TEST(PaperExampleB, MarginalParityCanHideStratumDisparity) {
  // Simpson-style: each stratum is biased but the marginal rates are
  // equal — conditioning is what reveals it (the reason §III-B exists).
  MetricInput input;
  std::vector<std::string> strata;
  // Stratum s1: males 8/10 hired, females 6/10 hired (male favored).
  AddRows(&input, &strata, "male", "s1", 1, 8);
  AddRows(&input, &strata, "male", "s1", 0, 2);
  AddRows(&input, &strata, "female", "s1", 1, 6);
  AddRows(&input, &strata, "female", "s1", 0, 4);
  // Stratum s2: males 2/10, females 4/10 (female favored) -> marginals
  // both 50%.
  AddRows(&input, &strata, "male", "s2", 1, 2);
  AddRows(&input, &strata, "male", "s2", 0, 8);
  AddRows(&input, &strata, "female", "s2", 1, 4);
  AddRows(&input, &strata, "female", "s2", 0, 6);

  MetricReport marginal = DemographicParity(input).ValueOrDie();
  EXPECT_TRUE(marginal.satisfied);  // marginals hide it
  ConditionalReport conditional =
      ConditionalStatisticalParity(input, strata).ValueOrDie();
  EXPECT_FALSE(conditional.satisfied);
  EXPECT_NEAR(conditional.max_gap, 0.2, 1e-12);
}

// ---- §III-F conditional demographic disparity: 100 females over 5
// jobs; 40 hired overall (unfair under plain DD) but jobs 1-4 hire all
// and job 5 rejects all: fair conditioned on jobs 1-4, unfair on job 5.

TEST(PaperExampleF, PerJobVerdictsMatchPaper) {
  MetricInput input;
  std::vector<std::string> strata;
  for (int job = 1; job <= 4; ++job) {
    AddRows(&input, &strata, "female", "job" + std::to_string(job), 1, 10);
  }
  AddRows(&input, &strata, "female", "job5", 0, 60);

  // Plain demographic disparity: 40 hires vs 60 rejections -> unfair.
  EXPECT_FALSE(DemographicDisparity(input).ValueOrDie().satisfied);

  ConditionalReport report =
      ConditionalDemographicDisparity(input, strata).ValueOrDie();
  EXPECT_FALSE(report.satisfied);  // job5 still fails
  ASSERT_EQ(report.strata.size(), 5u);
  for (const StratumReport& sr : report.strata) {
    if (sr.stratum == "job5") {
      EXPECT_FALSE(sr.report.satisfied);
    } else {
      EXPECT_TRUE(sr.report.satisfied);
    }
  }
}

// ---- structural behavior ----

TEST(ConditionalMetricsTest, SmallStrataAreSkippedNotFailed) {
  MetricInput input;
  std::vector<std::string> strata;
  AddRows(&input, &strata, "male", "big", 1, 30);
  AddRows(&input, &strata, "female", "big", 1, 30);
  // Tiny biased stratum below min size.
  AddRows(&input, &strata, "male", "tiny", 1, 2);
  AddRows(&input, &strata, "female", "tiny", 0, 2);
  ConditionalReport report =
      ConditionalStatisticalParity(input, strata, 0.0,
                                   /*min_stratum_size=*/10)
          .ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_EQ(report.strata.size(), 1u);
  EXPECT_NE(report.detail.find("tiny"), std::string::npos);
}

TEST(ConditionalMetricsTest, AllStrataSkippedIsAnError) {
  MetricInput input;
  std::vector<std::string> strata;
  AddRows(&input, &strata, "male", "s", 1, 2);
  AddRows(&input, &strata, "female", "s", 1, 2);
  EXPECT_FALSE(ConditionalStatisticalParity(input, strata, 0.0,
                                            /*min_stratum_size=*/100)
                   .ok());
}

TEST(ConditionalMetricsTest, StrataLengthMismatchRejected) {
  MetricInput input;
  std::vector<std::string> strata;
  AddRows(&input, &strata, "male", "s", 1, 4);
  strata.pop_back();
  EXPECT_FALSE(ConditionalStatisticalParity(input, strata).ok());
  EXPECT_FALSE(ConditionalDemographicDisparity(input, strata).ok());
}

TEST(ConditionalMetricsTest, RenderMentionsStrata) {
  CspExample example = MakeCspExample(1);
  ConditionalReport report =
      ConditionalStatisticalParity(example.input, example.strata)
          .ValueOrDie();
  std::string text = RenderConditionalReport(report);
  EXPECT_NE(text.find("young"), std::string::npos);
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
}

}  // namespace
}  // namespace fairlaw::metrics
