#include <gtest/gtest.h>

#include <cmath>

#include "metrics/inequality_indices.h"

namespace fairlaw::metrics {
namespace {

using V = std::vector<double>;

TEST(EntropyIndexTest, PerfectEqualityIsZero) {
  V equal = {2.0, 2.0, 2.0, 2.0};
  for (double alpha : {0.0, 0.5, 1.0, 2.0}) {
    EXPECT_NEAR(GeneralizedEntropyIndex(equal, alpha).ValueOrDie(), 0.0,
                1e-12)
        << "alpha=" << alpha;
  }
}

TEST(EntropyIndexTest, TheilKnownValue) {
  // Benefits {1, 3}: mu=2; T = 1/2[(1/2)ln(1/2) + (3/2)ln(3/2)].
  V benefits = {1.0, 3.0};
  double expected =
      0.5 * (0.5 * std::log(0.5) + 1.5 * std::log(1.5));
  EXPECT_NEAR(TheilIndex(benefits).ValueOrDie(), expected, 1e-12);
}

TEST(EntropyIndexTest, Alpha2KnownValue) {
  // GE(2) = 1/(2n) sum((b/mu)^2 - 1) = half squared coefficient of
  // variation. For {1,3}: mu=2, CV^2 = ((0.5-1)^2+(1.5-1)^2)/2/1 = 0.25.
  V benefits = {1.0, 3.0};
  EXPECT_NEAR(GeneralizedEntropyIndex(benefits, 2.0).ValueOrDie(), 0.125,
              1e-12);
}

TEST(EntropyIndexTest, MoreUnequalIsLarger) {
  V mild = {1.5, 2.5};
  V severe = {0.5, 3.5};
  for (double alpha : {0.5, 1.0, 2.0}) {
    EXPECT_GT(GeneralizedEntropyIndex(severe, alpha).ValueOrDie(),
              GeneralizedEntropyIndex(mild, alpha).ValueOrDie());
  }
}

TEST(EntropyIndexTest, ZerosAllowedForPositiveAlpha) {
  V benefits = {0.0, 2.0};
  EXPECT_TRUE(GeneralizedEntropyIndex(benefits, 1.0).ok());
  EXPECT_TRUE(GeneralizedEntropyIndex(benefits, 2.0).ok());
  EXPECT_FALSE(GeneralizedEntropyIndex(benefits, 0.0).ok());
  EXPECT_FALSE(GeneralizedEntropyIndex(benefits, -1.0).ok());
}

TEST(EntropyIndexTest, Validation) {
  EXPECT_FALSE(GeneralizedEntropyIndex(V{}, 1.0).ok());
  EXPECT_FALSE(GeneralizedEntropyIndex(V{-1.0, 2.0}, 1.0).ok());
  EXPECT_FALSE(GeneralizedEntropyIndex(V{0.0, 0.0}, 2.0).ok());
}

TEST(BinaryBenefitsTest, CanonicalCoding) {
  std::vector<int> labels = {1, 0, 1, 0};
  std::vector<int> preds = {1, 1, 0, 0};
  V benefits = BinaryBenefits(labels, preds).ValueOrDie();
  // correct pos: 1; unjustified advantage: 2; unjustified denial: 0;
  // correct neg: 1.
  EXPECT_EQ(benefits, (V{1.0, 2.0, 0.0, 1.0}));
  EXPECT_FALSE(BinaryBenefits(std::vector<int>{0, 2}, std::vector<int>{0, 1}).ok());
  EXPECT_FALSE(BinaryBenefits(std::vector<int>{0}, std::vector<int>{0, 1}).ok());
}

TEST(DecompositionTest, ComponentsSumToTotal) {
  V benefits = {1.0, 2.0, 3.0, 4.0};
  std::vector<std::string> groups = {"a", "a", "b", "b"};
  EntropyDecomposition decomposition =
      DecomposeEntropyIndex(benefits, groups, 2.0).ValueOrDie();
  EXPECT_NEAR(decomposition.between_groups + decomposition.within_groups,
              decomposition.total, 1e-12);
  EXPECT_GT(decomposition.between_groups, 0.0);  // group means 1.5 vs 3.5
  EXPECT_GT(decomposition.within_groups, 0.0);
}

TEST(DecompositionTest, NoBetweenComponentForEqualGroupMeans) {
  V benefits = {1.0, 3.0, 1.0, 3.0};
  std::vector<std::string> groups = {"a", "a", "b", "b"};
  EntropyDecomposition decomposition =
      DecomposeEntropyIndex(benefits, groups, 2.0).ValueOrDie();
  EXPECT_NEAR(decomposition.between_groups, 0.0, 1e-12);
  EXPECT_NEAR(decomposition.within_groups, decomposition.total, 1e-12);
}

TEST(DecompositionTest, AllInequalityBetweenGroups) {
  V benefits = {1.0, 1.0, 3.0, 3.0};
  std::vector<std::string> groups = {"a", "a", "b", "b"};
  EntropyDecomposition decomposition =
      DecomposeEntropyIndex(benefits, groups, 2.0).ValueOrDie();
  EXPECT_NEAR(decomposition.within_groups, 0.0, 1e-12);
  EXPECT_NEAR(decomposition.between_groups, decomposition.total, 1e-12);
}

TEST(DecompositionTest, Validation) {
  EXPECT_FALSE(
      DecomposeEntropyIndex(V{1.0}, {"a", "b"}, 2.0).ok());
}

}  // namespace
}  // namespace fairlaw::metrics
