#include <gtest/gtest.h>

#include "audit/subgroup.h"
#include "data/csv.h"
#include "stats/rng.h"

namespace fairlaw::audit {
namespace {

/// Gerrymandered table (§IV-C): marginal rates balanced, the cells
/// (male, non_caucasian) and (female, caucasian) heavily disfavored.
data::Table GerrymanderedTable() {
  std::string csv = "gender,race,pred\n";
  auto add = [&csv](const std::string& g, const std::string& r, int p,
                    int count) {
    for (int i = 0; i < count; ++i) {
      csv += g + "," + r + "," + std::to_string(p) + "\n";
    }
  };
  // Favored cells: 80% selected. Disfavored: 20%. 100 per cell.
  add("male", "caucasian", 1, 80);
  add("male", "caucasian", 0, 20);
  add("male", "non_caucasian", 1, 20);
  add("male", "non_caucasian", 0, 80);
  add("female", "caucasian", 1, 20);
  add("female", "caucasian", 0, 80);
  add("female", "non_caucasian", 1, 80);
  add("female", "non_caucasian", 0, 20);
  return data::ReadCsvString(csv).ValueOrDie();
}

TEST(SubgroupAuditTest, MarginalsPassButDepth2Fails) {
  data::Table table = GerrymanderedTable();
  SubgroupAuditOptions options;
  options.max_depth = 1;
  options.tolerance = 0.05;
  SubgroupAuditResult marginal =
      AuditSubgroups(table, {"gender", "race"}, "pred", options)
          .ValueOrDie();
  EXPECT_FALSE(marginal.any_violation);  // every marginal is exactly 50%

  options.max_depth = 2;
  SubgroupAuditResult deep =
      AuditSubgroups(table, {"gender", "race"}, "pred", options)
          .ValueOrDie();
  EXPECT_TRUE(deep.any_violation);
  auto violations = deep.Violations(0.05);
  EXPECT_EQ(violations.size(), 4u);  // all four depth-2 cells deviate 0.3
  EXPECT_NEAR(violations[0].gap, 0.3, 1e-12);
  EXPECT_EQ(violations[0].subgroup.conditions.size(), 2u);
}

TEST(SubgroupAuditTest, FindingsSortedByGap) {
  data::Table table = GerrymanderedTable();
  SubgroupAuditOptions options;
  options.max_depth = 2;
  SubgroupAuditResult result =
      AuditSubgroups(table, {"gender", "race"}, "pred", options)
          .ValueOrDie();
  for (size_t i = 1; i < result.findings.size(); ++i) {
    EXPECT_GE(result.findings[i - 1].gap, result.findings[i].gap);
  }
}

TEST(SubgroupAuditTest, WeightedGapDiscountsSmallGroups) {
  data::Table table = GerrymanderedTable();
  SubgroupAuditOptions options;
  options.max_depth = 2;
  SubgroupAuditResult result =
      AuditSubgroups(table, {"gender", "race"}, "pred", options)
          .ValueOrDie();
  for (const SubgroupFinding& finding : result.findings) {
    double expected = finding.gap * static_cast<double>(finding.count) /
                      static_cast<double>(table.num_rows());
    EXPECT_NEAR(finding.weighted_gap, expected, 1e-12);
  }
}

TEST(SubgroupAuditTest, MinSupportSkipsSmallCells) {
  data::Table table =
      data::ReadCsvString(
          "g,pred\n"
          "a,1\na,1\na,0\na,0\n"
          "b,1\n")  // group b has one member
          .ValueOrDie();
  SubgroupAuditOptions options;
  options.max_depth = 1;
  options.min_support = 2;
  SubgroupAuditResult result =
      AuditSubgroups(table, {"g"}, "pred", options).ValueOrDie();
  EXPECT_EQ(result.subgroups_skipped_small, 1u);
  EXPECT_EQ(result.findings.size(), 1u);
}

TEST(SubgroupAuditTest, Validation) {
  data::Table table = GerrymanderedTable();
  SubgroupAuditOptions options;
  EXPECT_FALSE(AuditSubgroups(table, {}, "pred", options).ok());
  options.max_depth = 0;
  EXPECT_FALSE(AuditSubgroups(table, {"gender"}, "pred", options).ok());
  options.max_depth = 1;
  EXPECT_FALSE(AuditSubgroups(table, {"gender"}, "race", options).ok());
  EXPECT_FALSE(AuditSubgroups(table, {"gender"}, "missing", options).ok());

  // Validate() mirrors AuditConfig::Validate and is what both audit
  // entry points call first.
  SubgroupAuditOptions bad_tolerance;
  bad_tolerance.tolerance = 1.5;
  EXPECT_FALSE(bad_tolerance.Validate().ok());
  bad_tolerance.tolerance = -0.1;
  EXPECT_FALSE(bad_tolerance.Validate().ok());
  EXPECT_TRUE(SubgroupAuditOptions{}.Validate().ok());
}

TEST(CountConjunctionsTest, MatchesExhaustiveEnumeration) {
  // Two attributes of arity 2: depth 1 -> 4; depth 2 -> 4 + 4 = 8.
  EXPECT_EQ(CountConjunctions({2, 2}, 1), 4u);
  EXPECT_EQ(CountConjunctions({2, 2}, 2), 8u);
  // Three attributes of arity 3: depth 2 -> 9 + 3*9 = 36.
  EXPECT_EQ(CountConjunctions({3, 3, 3}, 2), 36u);
  // Depth 3 adds 27.
  EXPECT_EQ(CountConjunctions({3, 3, 3}, 3), 63u);
}

TEST(CountConjunctionsTest, AgreesWithAuditExaminedCount) {
  data::Table table = GerrymanderedTable();
  SubgroupAuditOptions options;
  options.max_depth = 2;
  options.min_support = 0;
  SubgroupAuditResult result =
      AuditSubgroups(table, {"gender", "race"}, "pred", options)
          .ValueOrDie();
  EXPECT_EQ(result.subgroups_examined, CountConjunctions({2, 2}, 2));
}

/// Randomized table with enough attribute values to make the depth-3
/// lattice non-trivial (ties in gap included).
data::Table RandomizedTable(size_t rows) {
  stats::Rng rng(42);
  std::string csv = "a0,a1,a2,a3,pred\n";
  for (size_t i = 0; i < rows; ++i) {
    for (int a = 0; a < 4; ++a) {
      csv += "v" + std::to_string(rng.UniformInt(3)) + ",";
    }
    csv += std::to_string(rng.Bernoulli(0.4) ? 1 : 0) + "\n";
  }
  return data::ReadCsvString(csv).ValueOrDie();
}

/// Exact equality — the determinism contract is byte-identical output,
/// not approximate agreement.
void ExpectIdentical(const SubgroupAuditResult& a,
                     const SubgroupAuditResult& b) {
  EXPECT_EQ(a.subgroups_examined, b.subgroups_examined);
  EXPECT_EQ(a.subgroups_skipped_small, b.subgroups_skipped_small);
  EXPECT_EQ(a.any_violation, b.any_violation);
  ASSERT_EQ(a.findings.size(), b.findings.size());
  for (size_t i = 0; i < a.findings.size(); ++i) {
    EXPECT_EQ(a.findings[i].subgroup.conditions,
              b.findings[i].subgroup.conditions)
        << "finding " << i;
    EXPECT_EQ(a.findings[i].count, b.findings[i].count);
    // Bit-level equality on the doubles, not EXPECT_NEAR.
    EXPECT_EQ(a.findings[i].selection_rate, b.findings[i].selection_rate);
    EXPECT_EQ(a.findings[i].overall_rate, b.findings[i].overall_rate);
    EXPECT_EQ(a.findings[i].gap, b.findings[i].gap);
    EXPECT_EQ(a.findings[i].weighted_gap, b.findings[i].weighted_gap);
  }
}

TEST(SubgroupAuditTest, BitmapEnumeratorMatchesRowwiseReference) {
  data::Table table = RandomizedTable(2000);
  std::vector<std::string> attrs = {"a0", "a1", "a2", "a3"};
  SubgroupAuditOptions options;
  options.max_depth = 3;
  options.min_support = 5;
  SubgroupAuditResult bitmap =
      AuditSubgroups(table, attrs, "pred", options).ValueOrDie();
  SubgroupAuditResult rowwise =
      AuditSubgroupsRowwise(table, attrs, "pred", options).ValueOrDie();
  ExpectIdentical(bitmap, rowwise);
  EXPECT_GT(bitmap.findings.size(), 0u);
}

TEST(SubgroupAuditTest, FindingsIdenticalForEveryThreadCount) {
  data::Table table = RandomizedTable(2000);
  std::vector<std::string> attrs = {"a0", "a1", "a2", "a3"};
  SubgroupAuditOptions options;
  options.max_depth = 3;
  options.min_support = 5;
  options.num_threads = 1;
  SubgroupAuditResult serial =
      AuditSubgroups(table, attrs, "pred", options).ValueOrDie();
  for (size_t threads : {2u, 8u}) {
    options.num_threads = threads;
    SubgroupAuditResult parallel =
        AuditSubgroups(table, attrs, "pred", options).ValueOrDie();
    ExpectIdentical(serial, parallel);
  }
}

TEST(SubgroupDefinitionTest, ToStringFormat) {
  SubgroupDefinition definition;
  EXPECT_EQ(definition.ToString(), "(everyone)");
  definition.conditions = {{"gender", "female"}, {"race", "caucasian"}};
  EXPECT_EQ(definition.ToString(), "gender=female & race=caucasian");
}

}  // namespace
}  // namespace fairlaw::audit
