#include <gtest/gtest.h>

#include "data/csv.h"
#include "data/impute.h"

namespace fairlaw::data {
namespace {

Table TableWithNulls() {
  return ReadCsvString(
             "g,x,n,s\n"
             "a,1.0,10,red\n"
             "a,,20,red\n"
             "b,3.0,,blue\n"
             "b,5.0,40,\n"
             "b,,,red\n")
      .ValueOrDie();
}

TEST(ImputeTest, MeanFillsNumericNulls) {
  Table table = TableWithNulls();
  Table imputed =
      ImputeNulls(table, {{"x", ImputeStrategy::kMean}}).ValueOrDie();
  const Column* x = imputed.GetColumn("x").ValueOrDie();
  EXPECT_EQ(x->null_count(), 0u);
  // mean of {1, 3, 5} = 3.
  EXPECT_DOUBLE_EQ(x->GetDouble(1).ValueOrDie(), 3.0);
  EXPECT_DOUBLE_EQ(x->GetDouble(4).ValueOrDie(), 3.0);
  // Valid cells untouched.
  EXPECT_DOUBLE_EQ(x->GetDouble(0).ValueOrDie(), 1.0);
  // Original table untouched.
  EXPECT_GT(table.GetColumn("x").ValueOrDie()->null_count(), 0u);
}

TEST(ImputeTest, MedianOnIntColumnRoundsToInt) {
  Table table = TableWithNulls();
  Table imputed =
      ImputeNulls(table, {{"n", ImputeStrategy::kMedian}}).ValueOrDie();
  const Column* n = imputed.GetColumn("n").ValueOrDie();
  EXPECT_EQ(n->null_count(), 0u);
  EXPECT_EQ(n->type(), DataType::kInt64);
  EXPECT_EQ(n->GetInt64(2).ValueOrDie(), 20);  // median of {10,20,40}
}

TEST(ImputeTest, ModeFillsStringNulls) {
  Table table = TableWithNulls();
  Table imputed =
      ImputeNulls(table, {{"s", ImputeStrategy::kMode}}).ValueOrDie();
  const Column* s = imputed.GetColumn("s").ValueOrDie();
  EXPECT_EQ(s->null_count(), 0u);
  EXPECT_EQ(s->GetString(3).ValueOrDie(), "red");  // mode of {red x3, blue}
}

TEST(ImputeTest, ConstantFill) {
  Table table = TableWithNulls();
  ImputeSpec spec;
  spec.column = "x";
  spec.strategy = ImputeStrategy::kConstant;
  spec.constant = Cell(-1.0);
  Table imputed = ImputeNulls(table, {spec}).ValueOrDie();
  EXPECT_DOUBLE_EQ(
      imputed.GetColumn("x").ValueOrDie()->GetDouble(1).ValueOrDie(), -1.0);
}

TEST(ImputeTest, MultipleColumnsInOneCall) {
  Table table = TableWithNulls();
  Table imputed = ImputeNulls(table, {{"x", ImputeStrategy::kMean},
                                      {"n", ImputeStrategy::kMean},
                                      {"s", ImputeStrategy::kMode}})
                      .ValueOrDie();
  for (const char* name : {"x", "n", "s"}) {
    EXPECT_EQ(imputed.GetColumn(name).ValueOrDie()->null_count(), 0u)
        << name;
  }
}

TEST(ImputeTest, Validation) {
  Table table = TableWithNulls();
  EXPECT_FALSE(ImputeNulls(table, {}).ok());
  EXPECT_FALSE(
      ImputeNulls(table, {{"missing", ImputeStrategy::kMean}}).ok());
  // Numeric strategy on a string column.
  EXPECT_FALSE(ImputeNulls(table, {{"s", ImputeStrategy::kMean}}).ok());
  // Type-mismatched constant.
  ImputeSpec bad;
  bad.column = "x";
  bad.strategy = ImputeStrategy::kConstant;
  bad.constant = Cell(std::string("oops"));
  EXPECT_FALSE(ImputeNulls(table, {bad}).ok());
  // All-null column cannot be estimated.
  Table all_null = ReadCsvString("y\n\n1\n").ValueOrDie();
  Table only_null = ReadCsvString("a,y\n1,\n2,\n").ValueOrDie();
  EXPECT_FALSE(
      ImputeNulls(only_null, {{"y", ImputeStrategy::kMode}}).ok());
}

TEST(DropNullsTest, DropsAndAttributesPerGroup) {
  Table table = TableWithNulls();
  DropNullsReport report =
      DropNullRows(table, {"x", "n"}, "g").ValueOrDie();
  EXPECT_EQ(report.table.num_rows(), 2u);  // rows 0 and 3 survive
  EXPECT_EQ(report.rows_dropped, 3u);
  // One dropped row belongs to a, two to b.
  ASSERT_EQ(report.dropped_per_group.size(), 2u);
  EXPECT_EQ(report.dropped_per_group[0].first, "a");
  EXPECT_EQ(report.dropped_per_group[0].second, 1u);
  EXPECT_EQ(report.dropped_per_group[1].first, "b");
  EXPECT_EQ(report.dropped_per_group[1].second, 2u);
}

TEST(DropNullsTest, AllColumnsWhenUnspecified) {
  Table table = TableWithNulls();
  DropNullsReport report = DropNullRows(table, {}).ValueOrDie();
  EXPECT_EQ(report.table.num_rows(), 1u);  // only row 0 is fully non-null
  EXPECT_TRUE(report.dropped_per_group.empty());
}

TEST(DropNullsTest, Validation) {
  Table table = TableWithNulls();
  EXPECT_FALSE(DropNullRows(table, {"missing"}).ok());
  EXPECT_FALSE(DropNullRows(table, {}, "missing").ok());
}

}  // namespace
}  // namespace fairlaw::data
