#include <gtest/gtest.h>

#include "audit/representation.h"
#include "data/csv.h"

namespace fairlaw::audit {
namespace {

data::Table TableWithShares(int a, int b, int c) {
  std::string csv = "g\n";
  for (int i = 0; i < a; ++i) csv += "a\n";
  for (int i = 0; i < b; ++i) csv += "b\n";
  for (int i = 0; i < c; ++i) csv += "c\n";
  return data::ReadCsvString(csv).ValueOrDie();
}

TEST(RepresentationTest, MatchedCompositionPasses) {
  data::Table table = TableWithShares(500, 300, 200);
  RepresentationReport report =
      AuditRepresentation(table, "g",
                          {{"a", 0.5}, {"b", 0.3}, {"c", 0.2}})
          .ValueOrDie();
  EXPECT_TRUE(report.composition_ok);
  EXPECT_NEAR(report.total_variation, 0.0, 1e-12);
  EXPECT_NEAR(report.hellinger, 0.0, 1e-12);
  EXPECT_GT(report.chi_square_p_value, 0.9);
  for (const GroupRepresentation& rep : report.groups) {
    EXPECT_FALSE(rep.under_represented);
    EXPECT_NEAR(rep.representation_ratio, 1.0, 1e-12);
  }
}

TEST(RepresentationTest, UnderRepresentationFlagged) {
  // Group c should be 20% of the population but is 5% of the data.
  data::Table table = TableWithShares(600, 350, 50);
  RepresentationReport report =
      AuditRepresentation(table, "g",
                          {{"a", 0.5}, {"b", 0.3}, {"c", 0.2}})
          .ValueOrDie();
  EXPECT_FALSE(report.composition_ok);
  EXPECT_GT(report.total_variation, 0.1);
  EXPECT_LT(report.chi_square_p_value, 0.001);
  bool c_flagged = false;
  for (const GroupRepresentation& rep : report.groups) {
    if (rep.group == "c") {
      c_flagged = rep.under_represented;
      EXPECT_NEAR(rep.representation_ratio, 0.25, 1e-9);
    }
  }
  EXPECT_TRUE(c_flagged);
  EXPECT_NE(report.detail.find("c"), std::string::npos);
}

TEST(RepresentationTest, ReferenceSharesNormalized) {
  // Shares given as raw census counts rather than probabilities.
  data::Table table = TableWithShares(500, 500, 0);
  EXPECT_FALSE(AuditRepresentation(table, "g",
                                   {{"a", 5000.0}, {"b", 5000.0},
                                    {"c", 1.0}})
                   .ok());  // c in reference but not in data
  data::Table with_c = TableWithShares(495, 495, 10);
  RepresentationReport report =
      AuditRepresentation(with_c, "g",
                          {{"a", 4950.0}, {"b", 4950.0}, {"c", 100.0}})
          .ValueOrDie();
  EXPECT_TRUE(report.composition_ok);
}

TEST(RepresentationTest, CategoryMismatchesAreErrors) {
  data::Table table = TableWithShares(10, 10, 10);
  // Data group c missing from the reference.
  EXPECT_FALSE(
      AuditRepresentation(table, "g", {{"a", 0.5}, {"b", 0.5}}).ok());
  // Reference group d missing from the data.
  EXPECT_FALSE(AuditRepresentation(table, "g",
                                   {{"a", 0.25},
                                    {"b", 0.25},
                                    {"c", 0.25},
                                    {"d", 0.25}})
                   .ok());
}

TEST(RepresentationTest, Validation) {
  data::Table table = TableWithShares(10, 10, 0);
  EXPECT_FALSE(AuditRepresentation(table, "g", {{"a", 1.0}}).ok());
  EXPECT_FALSE(
      AuditRepresentation(table, "g", {{"a", -1.0}, {"b", 2.0}}).ok());
  RepresentationAuditOptions options;
  options.under_representation_threshold = 0.0;
  EXPECT_FALSE(AuditRepresentation(table, "g", {{"a", 0.5}, {"b", 0.5}},
                                   options)
                   .ok());
  EXPECT_FALSE(AuditRepresentation(table, "missing",
                                   {{"a", 0.5}, {"b", 0.5}})
                   .ok());
}

TEST(RequiredDatasetSizeTest, DrivenBySmallestGroup) {
  // Smallest share 10%: need 10x the per-group minimum.
  EXPECT_EQ(RequiredDatasetSize({{"a", 0.9}, {"b", 0.1}}, 30).ValueOrDie(),
            300u);
  EXPECT_EQ(RequiredDatasetSize({{"a", 0.5}, {"b", 0.5}}, 30).ValueOrDie(),
            60u);
  EXPECT_FALSE(RequiredDatasetSize({}, 30).ok());
  EXPECT_FALSE(RequiredDatasetSize({{"a", 1.0}}, 0).ok());
  EXPECT_FALSE(RequiredDatasetSize({{"a", 0.0}, {"b", 0.0}}, 10).ok());
}

}  // namespace
}  // namespace fairlaw::audit
