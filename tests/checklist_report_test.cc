// §IV selection-criteria checklist and the compliance report renderer.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "data/csv.h"
#include "legal/checklist.h"
#include "legal/report.h"

namespace fairlaw::legal {
namespace {

TEST(ChecklistTest, StructuralBiasYieldsOutcomeFamily) {
  UseCaseProfile profile;
  profile.use_case = "hiring";
  profile.structural_bias_recognized = true;
  profile.positive_action_mandated = true;
  ChecklistReport report = EvaluateChecklist(profile).ValueOrDie();
  bool has_dp = false;
  bool has_cdd = false;
  for (const Recommendation& rec : report.metrics) {
    if (rec.metric == "demographic_parity") has_dp = true;
    if (rec.metric == "conditional_demographic_disparity") has_cdd = true;
  }
  EXPECT_TRUE(has_dp);
  EXPECT_TRUE(has_cdd);
  // Quota mandate requires proportionality review.
  bool quota_audit = false;
  for (const std::string& audit : report.required_audits) {
    if (audit.find("quota") != std::string::npos) quota_audit = true;
  }
  EXPECT_TRUE(quota_audit);
}

TEST(ChecklistTest, UnreliableLabelsWarnAgainstEqualTreatmentMetrics) {
  UseCaseProfile profile;
  profile.labels_reliable = false;
  ChecklistReport report = EvaluateChecklist(profile).ValueOrDie();
  for (const Recommendation& rec : report.metrics) {
    EXPECT_NE(rec.metric, "equal_opportunity");
    EXPECT_NE(rec.metric, "equalized_odds");
  }
  bool warned = false;
  for (const std::string& warning : report.warnings) {
    if (warning.find("bias preservation") != std::string::npos) {
      warned = true;
    }
  }
  EXPECT_TRUE(warned);
}

TEST(ChecklistTest, ReliableLabelsEnableEqualTreatmentMetrics) {
  UseCaseProfile profile;
  profile.labels_reliable = true;
  ChecklistReport report = EvaluateChecklist(profile).ValueOrDie();
  bool has_eo = false;
  for (const Recommendation& rec : report.metrics) {
    if (rec.metric == "equal_opportunity") has_eo = true;
  }
  EXPECT_TRUE(has_eo);
}

TEST(ChecklistTest, CausalModelPutsCounterfactualFirst) {
  UseCaseProfile profile;
  profile.causal_model_available = true;
  profile.labels_reliable = true;
  ChecklistReport report = EvaluateChecklist(profile).ValueOrDie();
  ASSERT_FALSE(report.metrics.empty());
  EXPECT_EQ(report.metrics[0].metric, "counterfactual_fairness");
  EXPECT_EQ(report.metrics[0].priority, 1);
}

TEST(ChecklistTest, RiskFlagsMandateAudits) {
  UseCaseProfile profile;
  profile.proxies_suspected = true;
  profile.multiple_sensitive_attributes = true;
  profile.feedback_risk = true;
  profile.adversarial_risk = true;
  profile.sample_size = 1000;
  profile.smallest_group_size = 12;
  ChecklistReport report = EvaluateChecklist(profile).ValueOrDie();
  EXPECT_GE(report.required_audits.size(), 4u);
  bool sampling_warning = false;
  for (const std::string& warning : report.warnings) {
    if (warning.find("fewer than 30") != std::string::npos) {
      sampling_warning = true;
    }
  }
  EXPECT_TRUE(sampling_warning);
}

TEST(ChecklistTest, JurisdictionPicksTheLegalScreen) {
  UseCaseProfile us;
  us.jurisdiction = Jurisdiction::kUs;
  ChecklistReport us_report = EvaluateChecklist(us).ValueOrDie();
  bool has_di = false;
  for (const Recommendation& rec : us_report.metrics) {
    if (rec.metric == "disparate_impact_ratio") has_di = true;
  }
  EXPECT_TRUE(has_di);

  UseCaseProfile eu;
  eu.jurisdiction = Jurisdiction::kEu;
  ChecklistReport eu_report = EvaluateChecklist(eu).ValueOrDie();
  bool has_csp = false;
  for (const Recommendation& rec : eu_report.metrics) {
    if (rec.metric == "conditional_statistical_parity") has_csp = true;
  }
  EXPECT_TRUE(has_csp);
}

TEST(ChecklistTest, RenderListsEverything) {
  UseCaseProfile profile;
  profile.structural_bias_recognized = true;
  profile.proxies_suspected = true;
  ChecklistReport report = EvaluateChecklist(profile).ValueOrDie();
  std::string text = report.Render();
  EXPECT_NE(text.find("demographic_parity"), std::string::npos);
  EXPECT_NE(text.find("proxy audit"), std::string::npos);
}

TEST(ChecklistTest, Validation) {
  UseCaseProfile profile;
  profile.sample_size = 10;
  profile.smallest_group_size = 100;
  EXPECT_FALSE(EvaluateChecklist(profile).ok());
}

TEST(ComplianceReportTest, FullRender) {
  data::Table table = data::ReadCsvString(
                          "sex,pred,label\n"
                          "male,1,1\nmale,1,0\nmale,1,1\nmale,0,0\n"
                          "female,1,1\nfemale,0,1\nfemale,0,0\nfemale,0,0\n")
                          .ValueOrDie();
  audit::AuditConfig config;
  config.protected_column = "sex";
  config.prediction_column = "pred";
  config.label_column = "label";
  ComplianceReportInputs inputs;
  inputs.system_name = "acme-hiring";
  inputs.jurisdiction = Jurisdiction::kUs;
  inputs.protected_attribute = "sex";
  inputs.sector = "employment";
  inputs.audit = audit::RunAudit(table, config).ValueOrDie().ToLegalFindings();
  inputs.four_fifths =
      FourFifthsTest(audit::MetricInputFromTable(table, "sex", "pred", "")
                         .ValueOrDie())
          .ValueOrDie();
  UseCaseProfile profile;
  profile.jurisdiction = Jurisdiction::kUs;
  profile.structural_bias_recognized = true;
  inputs.checklist = EvaluateChecklist(profile).ValueOrDie();

  std::string report = RenderComplianceReport(inputs).ValueOrDie();
  EXPECT_NE(report.find("acme-hiring"), std::string::npos);
  EXPECT_NE(report.find("Title VII"), std::string::npos);  // statutory frame
  EXPECT_NE(report.find("equality concept"), std::string::npos);
  EXPECT_NE(report.find("four-fifths"), std::string::npos);
  EXPECT_NE(report.find("disparate impact"), std::string::npos);
}

TEST(ComplianceReportTest, Validation) {
  ComplianceReportInputs inputs;
  EXPECT_FALSE(RenderComplianceReport(inputs).ok());
}

}  // namespace
}  // namespace fairlaw::legal
