#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "data/bitmap.h"
#include "data/csv.h"
#include "data/group_index.h"
#include "stats/rng.h"

namespace fairlaw::data {
namespace {

using stats::Rng;

TEST(BitmapTest, EmptyBitmap) {
  Bitmap empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.Count(), 0u);
  EXPECT_EQ(empty.num_words(), 0u);
  EXPECT_TRUE(empty.ToIndices().empty());
  // Zero-size bitmaps are same-size, so kernels work (and return zero).
  Bitmap other;
  EXPECT_EQ(Bitmap::AndCount(empty, other), 0u);
  EXPECT_EQ(empty.And(other).ValueOrDie().size(), 0u);
  EXPECT_EQ(Bitmap::AllSet(0).Count(), 0u);
}

TEST(BitmapTest, ExactMultipleOf64Sizes) {
  for (size_t size : {64u, 128u, 256u}) {
    Bitmap all = Bitmap::AllSet(size);
    EXPECT_EQ(all.size(), size);
    EXPECT_EQ(all.num_words(), size / 64);
    EXPECT_EQ(all.Count(), size);
    // Every word must be fully set: no spurious tail word, no masking.
    for (uint64_t word : all.words()) {
      EXPECT_EQ(word, ~uint64_t{0});
    }
    Bitmap zero(size);
    EXPECT_EQ(zero.Count(), 0u);
    zero.Set(size - 1);
    EXPECT_TRUE(zero.Test(size - 1));
    EXPECT_EQ(zero.Count(), 1u);
  }
}

TEST(BitmapTest, TailWordBitsStayMasked) {
  // 70 bits: one full word plus a 6-bit tail.
  Bitmap all = Bitmap::AllSet(70);
  EXPECT_EQ(all.Count(), 70u);
  ASSERT_EQ(all.num_words(), 2u);
  EXPECT_EQ(all.words()[1], (uint64_t{1} << 6) - 1);

  Bitmap bits(70);
  bits.Set(69);
  bits.Set(0);
  EXPECT_EQ(bits.Count(), 2u);
  EXPECT_EQ(bits.ToIndices(), (std::vector<size_t>{0, 69}));

  // AndNot against all-ones must not leak bits past size().
  Bitmap complement = all.AndNot(bits).ValueOrDie();
  EXPECT_EQ(complement.Count(), 68u);
  EXPECT_FALSE(complement.Test(69));
  EXPECT_EQ(complement.words()[1] >> 6, 0u);

  bits.Reset(69);
  EXPECT_EQ(bits.Count(), 1u);
}

TEST(BitmapTest, MismatchedLengthsAreInvalid) {
  Bitmap a(64);
  Bitmap b(65);
  EXPECT_FALSE(a.And(b).ok());
  EXPECT_FALSE(a.AndNot(b).ok());
  EXPECT_TRUE(a.And(b).status().IsInvalid());
  EXPECT_TRUE(a.AndNot(b).status().IsInvalid());
}

TEST(BitmapTest, KernelsMatchScalarReferenceOnRandomInputs) {
  Rng rng(17);
  for (size_t trial = 0; trial < 20; ++trial) {
    const size_t size = 1 + static_cast<size_t>(rng.UniformInt(300));
    std::vector<uint8_t> raw_a(size);
    std::vector<uint8_t> raw_b(size);
    std::vector<uint8_t> raw_c(size);
    for (size_t i = 0; i < size; ++i) {
      raw_a[i] = rng.Bernoulli(0.5);
      raw_b[i] = rng.Bernoulli(0.3);
      raw_c[i] = rng.Bernoulli(0.7);
    }
    Bitmap a = Bitmap::FromBytes(raw_a);
    Bitmap b = Bitmap::FromBytes(raw_b);
    Bitmap c = Bitmap::FromBytes(raw_c);

    size_t count_a = 0;
    size_t and_ab = 0;
    size_t and_abc = 0;
    size_t andnot_ab = 0;
    size_t and_ab_not_c = 0;
    for (size_t i = 0; i < size; ++i) {
      count_a += raw_a[i];
      and_ab += raw_a[i] & raw_b[i];
      and_abc += raw_a[i] & raw_b[i] & raw_c[i];
      andnot_ab += raw_a[i] & (1 - raw_b[i]);
      and_ab_not_c += raw_a[i] & raw_b[i] & (1 - raw_c[i]);
    }
    EXPECT_EQ(a.Count(), count_a);
    EXPECT_EQ(Bitmap::AndCount(a, b), and_ab);
    EXPECT_EQ(Bitmap::AndCount3(a, b, c), and_abc);
    EXPECT_EQ(Bitmap::AndNotCount(a, b), andnot_ab);
    EXPECT_EQ(Bitmap::AndAndNotCount(a, b, c), and_ab_not_c);
    EXPECT_EQ(a.And(b).ValueOrDie().Count(), and_ab);

    Bitmap scratch;
    EXPECT_EQ(Bitmap::AndInto(a, b, &scratch), and_ab);
    EXPECT_EQ(scratch, a.And(b).ValueOrDie());

    Bitmap in_place = a;
    in_place.AndInPlace(b);
    EXPECT_EQ(in_place, scratch);

    // ToIndices returns exactly the set positions, ascending.
    std::vector<size_t> expected_indices;
    for (size_t i = 0; i < size; ++i) {
      if (raw_a[i] != 0) expected_indices.push_back(i);
    }
    EXPECT_EQ(a.ToIndices(), expected_indices);
  }
}

TEST(GroupIndexTest, BuildsDisjointCoveringBitmapsInFirstSeenOrder) {
  Table table = ReadCsvString(
                    "g,pred\n"
                    "b,1\na,0\nb,1\nc,0\na,1\n")
                    .ValueOrDie();
  GroupIndex index = GroupIndex::Build(table, {"g"}).ValueOrDie();
  EXPECT_EQ(index.num_rows(), 5u);
  const AttributeIndex* attribute =
      index.Attribute("g").ValueOrDie();
  // First-seen order, matching DistinctValues / GroupBy.
  EXPECT_EQ(attribute->values, (std::vector<std::string>{"b", "a", "c"}));
  EXPECT_EQ(attribute->bitmaps[0].ToIndices(),
            (std::vector<size_t>{0, 2}));
  EXPECT_EQ(attribute->bitmaps[1].ToIndices(),
            (std::vector<size_t>{1, 4}));
  EXPECT_EQ(attribute->bitmaps[2].ToIndices(), (std::vector<size_t>{3}));
  EXPECT_EQ(attribute->IndexOf("c").ValueOrDie(), 2u);
  EXPECT_FALSE(attribute->IndexOf("zzz").ok());
  EXPECT_FALSE(index.Attribute("missing").ok());
}

TEST(GroupIndexTest, BinaryColumnBitmapPacksAndValidates) {
  Table table = ReadCsvString(
                    "g,pred,score\n"
                    "a,1,0.25\nb,0,0.5\na,1,0.75\n")
                    .ValueOrDie();
  Bitmap predictions =
      GroupIndex::BinaryColumnBitmap(table, "pred").ValueOrDie();
  EXPECT_EQ(predictions.ToIndices(), (std::vector<size_t>{0, 2}));
  // A non-binary column must be rejected, not truncated.
  EXPECT_FALSE(GroupIndex::BinaryColumnBitmap(table, "score").ok());
  EXPECT_FALSE(GroupIndex::BinaryColumnBitmap(table, "missing").ok());
}

}  // namespace
}  // namespace fairlaw::data
