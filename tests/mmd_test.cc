#include <gtest/gtest.h>

#include <cmath>

#include "stats/mmd.h"
#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

std::vector<double> Draw(Rng* rng, size_t n, double mean, double stddev) {
  std::vector<double> values(n);
  for (double& v : values) v = rng->Normal(mean, stddev);
  return values;
}

TEST(RbfKernelTest, KnownValues) {
  Point x = {0.0};
  Point y = {1.0};
  EXPECT_DOUBLE_EQ(RbfKernel(x, x, 1.0), 1.0);
  EXPECT_NEAR(RbfKernel(x, y, 1.0), std::exp(-0.5), 1e-12);
  // Larger bandwidth -> larger similarity.
  EXPECT_GT(RbfKernel(x, y, 2.0), RbfKernel(x, y, 1.0));
}

TEST(MedianHeuristicTest, TwoPointsGivesTheirDistance) {
  std::vector<Point> x = {{0.0}};
  std::vector<Point> y = {{3.0}};
  EXPECT_NEAR(MedianHeuristicBandwidth(x, y), 3.0, 1e-12);
}

TEST(MedianHeuristicTest, DegenerateFallsBackToOne) {
  std::vector<Point> x = {{1.0}, {1.0}};
  std::vector<Point> y = {{1.0}};
  EXPECT_DOUBLE_EQ(MedianHeuristicBandwidth(x, y), 1.0);
  EXPECT_DOUBLE_EQ(MedianHeuristicBandwidth({}, {}), 1.0);
}

TEST(MmdTest, IdenticalDistributionsNearZero) {
  Rng rng(5);
  std::vector<double> x = Draw(&rng, 300, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 300, 0.0, 1.0);
  double mmd2 = MmdSquaredUnbiased1d(x, y, 1.0).ValueOrDie();
  EXPECT_NEAR(mmd2, 0.0, 0.02);
}

TEST(MmdTest, SeparatedDistributionsPositive) {
  Rng rng(7);
  std::vector<double> x = Draw(&rng, 300, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 300, 3.0, 1.0);
  double mmd2 = MmdSquaredUnbiased1d(x, y, 1.0).ValueOrDie();
  EXPECT_GT(mmd2, 0.3);
}

TEST(MmdTest, BiasedEstimatorNonNegative) {
  Rng rng(9);
  std::vector<double> x = Draw(&rng, 100, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 100, 0.0, 1.0);
  EXPECT_GE(MmdSquaredBiased1d(x, y, 1.0).ValueOrDie(), 0.0);
}

TEST(MmdTest, MonotoneInSeparation) {
  Rng rng(11);
  std::vector<double> x = Draw(&rng, 200, 0.0, 1.0);
  std::vector<double> near = Draw(&rng, 200, 0.5, 1.0);
  std::vector<double> far = Draw(&rng, 200, 2.0, 1.0);
  double mmd_near = MmdSquaredBiased1d(x, near, 1.0).ValueOrDie();
  double mmd_far = MmdSquaredBiased1d(x, far, 1.0).ValueOrDie();
  EXPECT_LT(mmd_near, mmd_far);
}

TEST(MmdTest, MultivariatePoints) {
  Rng rng(13);
  std::vector<Point> x(100);
  std::vector<Point> y(100);
  for (auto& p : x) p = {rng.Normal(), rng.Normal()};
  for (auto& p : y) p = {rng.Normal(2.0, 1.0), rng.Normal(2.0, 1.0)};
  double sigma = MedianHeuristicBandwidth(x, y);
  EXPECT_GT(sigma, 0.0);
  EXPECT_GT(MmdSquaredUnbiased(x, y, sigma).ValueOrDie(), 0.1);
}

TEST(MmdTest, InputValidation) {
  std::vector<double> one = {1.0};
  std::vector<double> two = {1.0, 2.0};
  EXPECT_FALSE(MmdSquaredUnbiased1d(one, two, 1.0).ok());  // needs >= 2
  EXPECT_FALSE(MmdSquaredUnbiased1d(two, two, 0.0).ok());  // bad sigma
  EXPECT_FALSE(MmdSquaredBiased1d({}, two, 1.0).ok());
}

// The tiled exact path promises bit-identical results for every thread
// count: per-block partial sums merged in block order, never a shared
// accumulator.
TEST(MmdTest, ExactEstimatorsThreadDeterministic) {
  Rng rng(17);
  std::vector<double> x = Draw(&rng, 700, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 500, 1.0, 1.0);
  const double serial_unbiased =
      MmdSquaredUnbiased1d(x, y, 0.8).ValueOrDie();
  const double serial_biased = MmdSquaredBiased1d(x, y, 0.8).ValueOrDie();
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    MmdExactOptions options;
    options.num_threads = threads;
    EXPECT_EQ(MmdSquaredUnbiased1d(x, y, 0.8, options).ValueOrDie(),
              serial_unbiased)
        << "threads=" << threads;
    EXPECT_EQ(MmdSquaredBiased1d(x, y, 0.8, options).ValueOrDie(),
              serial_biased)
        << "threads=" << threads;
  }
}

// RFF features draw from counter-based streams keyed by feature index,
// so the estimate is a pure function of (inputs, sigma, D, seed) — the
// thread count and feature-block schedule must not show through.
TEST(MmdRffTest, ThreadDeterministic) {
  Rng rng(19);
  std::vector<double> x = Draw(&rng, 400, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 300, 1.0, 1.0);
  MmdRffOptions serial;
  serial.num_features = 96;  // not a multiple of the feature block
  const double reference = MmdSquaredRff1d(x, y, 1.0, serial).ValueOrDie();
  for (const size_t threads : {size_t{2}, size_t{8}}) {
    MmdRffOptions options = serial;
    options.num_threads = threads;
    EXPECT_EQ(MmdSquaredRff1d(x, y, 1.0, options).ValueOrDie(), reference)
        << "threads=" << threads;
  }
}

TEST(MmdRffTest, NonNegativeAndSeedSensitive) {
  Rng rng(21);
  std::vector<double> x = Draw(&rng, 200, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 200, 0.0, 1.0);
  MmdRffOptions options;
  options.num_features = 64;
  const double estimate = MmdSquaredRff1d(x, y, 1.0, options).ValueOrDie();
  EXPECT_GE(estimate, 0.0);
  MmdRffOptions reseeded = options;
  reseeded.seed = 0x9999;
  // A different seed draws different features; on close distributions
  // the small-D estimates differ.
  EXPECT_NE(MmdSquaredRff1d(x, y, 1.0, reseeded).ValueOrDie(), estimate);
}

// Convergence to the exact oracle: error decays as O(1/sqrt(D)), so the
// D = 2048 estimate must land much closer than the D = 32 one, and
// within a calibrated absolute band.
TEST(MmdRffTest, ConvergesToExactBiasedEstimator) {
  Rng rng(23);
  std::vector<double> x = Draw(&rng, 500, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 500, 1.0, 1.0);
  const double exact = MmdSquaredBiased1d(x, y, 1.0).ValueOrDie();

  MmdRffOptions small;
  small.num_features = 32;
  MmdRffOptions large;
  large.num_features = 2048;
  const double err_small =
      std::abs(MmdSquaredRff1d(x, y, 1.0, small).ValueOrDie() - exact);
  const double err_large =
      std::abs(MmdSquaredRff1d(x, y, 1.0, large).ValueOrDie() - exact);
  EXPECT_LT(err_large, 0.02);
  EXPECT_LT(err_large, err_small + 1e-12);
}

TEST(MmdRffTest, MultivariateAgreesWithExact) {
  Rng rng(29);
  std::vector<Point> x(300);
  std::vector<Point> y(300);
  for (auto& p : x) p = {rng.Normal(), rng.Normal()};
  for (auto& p : y) p = {rng.Normal(1.0, 1.0), rng.Normal(1.0, 1.0)};
  const double sigma = MedianHeuristicBandwidth(x, y);
  const double exact = MmdSquaredBiased(x, y, sigma).ValueOrDie();
  MmdRffOptions options;
  options.num_features = 2048;
  const double rff = MmdSquaredRff(x, y, sigma, options).ValueOrDie();
  EXPECT_NEAR(rff, exact, 0.02);
}

TEST(MmdRffTest, RffInputValidation) {
  std::vector<double> two = {1.0, 2.0};
  MmdRffOptions no_features;
  no_features.num_features = 0;
  EXPECT_FALSE(MmdSquaredRff1d(two, two, 1.0, no_features).ok());
  EXPECT_FALSE(MmdSquaredRff1d(two, two, 0.0).ok());
  EXPECT_FALSE(MmdSquaredRff1d({}, two, 1.0).ok());
  // Dimension mismatch across points.
  std::vector<Point> ragged = {{1.0, 2.0}, {3.0}};
  std::vector<Point> fine = {{0.0, 0.0}, {1.0, 1.0}};
  EXPECT_FALSE(MmdSquaredRff(ragged, fine, 1.0).ok());
}

// The sampled median heuristic draws pairs from counter-based streams:
// repeated calls agree exactly, and the subsampled estimate lands near
// the all-pairs median.
TEST(MedianHeuristicTest, SampledPathDeterministicAndClose) {
  Rng rng(31);
  std::vector<Point> x(120);
  std::vector<Point> y(120);
  for (auto& p : x) p = {rng.Normal()};
  for (auto& p : y) p = {rng.Normal(1.0, 1.0)};
  const double exact = MedianHeuristicBandwidth(x, y);  // all pairs
  const double sampled = MedianHeuristicBandwidth(x, y, /*max_pairs=*/2000);
  EXPECT_EQ(MedianHeuristicBandwidth(x, y, 2000), sampled);
  EXPECT_GT(sampled, 0.0);
  EXPECT_NEAR(sampled, exact, 0.25 * exact);
}

TEST(MedianHeuristicTest, ZeroPairBudgetStillPositive) {
  std::vector<Point> x = {{0.0}, {1.0}};
  std::vector<Point> y = {{2.0}};
  EXPECT_GT(MedianHeuristicBandwidth(x, y, /*max_pairs=*/0), 0.0);
}

}  // namespace
}  // namespace fairlaw::stats
