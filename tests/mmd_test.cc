#include <gtest/gtest.h>

#include <cmath>

#include "stats/mmd.h"
#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

std::vector<double> Draw(Rng* rng, size_t n, double mean, double stddev) {
  std::vector<double> values(n);
  for (double& v : values) v = rng->Normal(mean, stddev);
  return values;
}

TEST(RbfKernelTest, KnownValues) {
  Point x = {0.0};
  Point y = {1.0};
  EXPECT_DOUBLE_EQ(RbfKernel(x, x, 1.0), 1.0);
  EXPECT_NEAR(RbfKernel(x, y, 1.0), std::exp(-0.5), 1e-12);
  // Larger bandwidth -> larger similarity.
  EXPECT_GT(RbfKernel(x, y, 2.0), RbfKernel(x, y, 1.0));
}

TEST(MedianHeuristicTest, TwoPointsGivesTheirDistance) {
  std::vector<Point> x = {{0.0}};
  std::vector<Point> y = {{3.0}};
  EXPECT_NEAR(MedianHeuristicBandwidth(x, y), 3.0, 1e-12);
}

TEST(MedianHeuristicTest, DegenerateFallsBackToOne) {
  std::vector<Point> x = {{1.0}, {1.0}};
  std::vector<Point> y = {{1.0}};
  EXPECT_DOUBLE_EQ(MedianHeuristicBandwidth(x, y), 1.0);
  EXPECT_DOUBLE_EQ(MedianHeuristicBandwidth({}, {}), 1.0);
}

TEST(MmdTest, IdenticalDistributionsNearZero) {
  Rng rng(5);
  std::vector<double> x = Draw(&rng, 300, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 300, 0.0, 1.0);
  double mmd2 = MmdSquaredUnbiased1d(x, y, 1.0).ValueOrDie();
  EXPECT_NEAR(mmd2, 0.0, 0.02);
}

TEST(MmdTest, SeparatedDistributionsPositive) {
  Rng rng(7);
  std::vector<double> x = Draw(&rng, 300, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 300, 3.0, 1.0);
  double mmd2 = MmdSquaredUnbiased1d(x, y, 1.0).ValueOrDie();
  EXPECT_GT(mmd2, 0.3);
}

TEST(MmdTest, BiasedEstimatorNonNegative) {
  Rng rng(9);
  std::vector<double> x = Draw(&rng, 100, 0.0, 1.0);
  std::vector<double> y = Draw(&rng, 100, 0.0, 1.0);
  EXPECT_GE(MmdSquaredBiased1d(x, y, 1.0).ValueOrDie(), 0.0);
}

TEST(MmdTest, MonotoneInSeparation) {
  Rng rng(11);
  std::vector<double> x = Draw(&rng, 200, 0.0, 1.0);
  std::vector<double> near = Draw(&rng, 200, 0.5, 1.0);
  std::vector<double> far = Draw(&rng, 200, 2.0, 1.0);
  double mmd_near = MmdSquaredBiased1d(x, near, 1.0).ValueOrDie();
  double mmd_far = MmdSquaredBiased1d(x, far, 1.0).ValueOrDie();
  EXPECT_LT(mmd_near, mmd_far);
}

TEST(MmdTest, MultivariatePoints) {
  Rng rng(13);
  std::vector<Point> x(100);
  std::vector<Point> y(100);
  for (auto& p : x) p = {rng.Normal(), rng.Normal()};
  for (auto& p : y) p = {rng.Normal(2.0, 1.0), rng.Normal(2.0, 1.0)};
  double sigma = MedianHeuristicBandwidth(x, y);
  EXPECT_GT(sigma, 0.0);
  EXPECT_GT(MmdSquaredUnbiased(x, y, sigma).ValueOrDie(), 0.1);
}

TEST(MmdTest, InputValidation) {
  std::vector<double> one = {1.0};
  std::vector<double> two = {1.0, 2.0};
  EXPECT_FALSE(MmdSquaredUnbiased1d(one, two, 1.0).ok());  // needs >= 2
  EXPECT_FALSE(MmdSquaredUnbiased1d(two, two, 0.0).ok());  // bad sigma
  EXPECT_FALSE(MmdSquaredBiased1d({}, two, 1.0).ok());
}

}  // namespace
}  // namespace fairlaw::stats
