#include <gtest/gtest.h>

#include <cmath>

#include "audit/manipulation.h"
#include "ml/feature_importance.h"
#include "ml/model_eval.h"
#include "simulation/adversary.h"
#include "simulation/scenarios.h"

namespace fairlaw::sim {
namespace {

using fairlaw::stats::Rng;

/// Training data WITH the gender indicator as feature 0, plus proxies.
struct AdversaryData {
  ml::Dataset data;              // features: [gender, university, experience]
  std::vector<std::string> genders;
};

AdversaryData MakeData(size_t n) {
  Rng rng(23);
  HiringOptions options;
  options.n = n;
  options.label_bias = 1.5;
  options.proxy_strength = 1.5;
  ScenarioData scenario = MakeHiringScenario(options, &rng).ValueOrDie();
  AdversaryData out;
  out.data.feature_names = {"gender", "university", "experience"};
  auto features =
      ml::FeaturesFromTable(scenario.table,
                            {"university", "experience"})
          .ValueOrDie();
  const data::Column* gender =
      scenario.table.GetColumn("gender").ValueOrDie();
  const data::Column* hired =
      scenario.table.GetColumn("hired").ValueOrDie();
  for (size_t i = 0; i < n; ++i) {
    std::string g = gender->GetString(i).ValueOrDie();
    out.genders.push_back(g);
    out.data.features.push_back(
        {g == "female" ? 1.0 : 0.0, features[i][0], features[i][1]});
    out.data.labels.push_back(
        static_cast<int>(hired->GetInt64(i).ValueOrDie()));
  }
  return out;
}

TEST(AdversaryTest, MaskingSuppressesSensitiveCoefficient) {
  AdversaryData adversary = MakeData(4000);

  MaskingOptions honest_options;
  honest_options.masking_penalty = 0.0;
  ml::LogisticRegression honest =
      TrainMaskedModel(adversary.data, 0, honest_options).ValueOrDie();

  MaskingOptions masked_options;
  masked_options.masking_penalty = 1000.0;
  ml::LogisticRegression masked =
      TrainMaskedModel(adversary.data, 0, masked_options).ValueOrDie();

  // The sensitive coefficient collapses under masking.
  EXPECT_GT(std::fabs(honest.weights()[0]), 0.2);
  EXPECT_LT(std::fabs(masked.weights()[0]), 0.02);

  // Accuracy barely moves (the proxies re-absorb the signal).
  auto accuracy = [&](const ml::Classifier& model) {
    auto preds = model.PredictBatch(adversary.data.features).ValueOrDie();
    return ml::Accuracy(adversary.data.labels, preds).ValueOrDie();
  };
  EXPECT_NEAR(accuracy(masked), accuracy(honest), 0.03);
}

TEST(AdversaryTest, OutcomeAuditStillCatchesMaskedModel) {
  AdversaryData adversary = MakeData(4000);
  MaskingOptions options;
  options.masking_penalty = 1000.0;
  ml::LogisticRegression masked =
      TrainMaskedModel(adversary.data, 0, options).ValueOrDie();

  auto importances =
      ml::LinearAttribution(masked.weights(), adversary.data).ValueOrDie();
  metrics::MetricInput outcomes;
  outcomes.groups = adversary.genders;
  outcomes.predictions =
      masked.PredictBatch(adversary.data.features).ValueOrDie();

  audit::ManipulationAuditReport report =
      audit::AuditManipulation(importances, "gender", outcomes)
          .ValueOrDie();
  EXPECT_TRUE(report.attribution_says_fair);   // explanation audit fooled
  EXPECT_FALSE(report.outcome_says_fair);      // outcome audit is not
  EXPECT_TRUE(report.masking_suspected);
}

TEST(AdversaryTest, Validation) {
  AdversaryData adversary = MakeData(100);
  EXPECT_FALSE(TrainMaskedModel(adversary.data, 99, {}).ok());
  MaskingOptions options;
  options.masking_penalty = -1.0;
  EXPECT_FALSE(TrainMaskedModel(adversary.data, 0, options).ok());
}

}  // namespace
}  // namespace fairlaw::sim
