#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double u = rng.Uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.UniformInt(10)];
  }
  for (int count : counts) {
    EXPECT_NEAR(count, 10000, 500);
  }
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    double z = rng.Normal();
    sum += z;
    sum_sq += z * z;
  }
  double mean = sum / n;
  double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, NormalWithParameters) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, BernoulliRate) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(19);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_FALSE(rng.Bernoulli(-1.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
  EXPECT_TRUE(rng.Bernoulli(2.0));
}

TEST(RngTest, BinomialMean) {
  Rng rng(23);
  double total = 0.0;
  for (int i = 0; i < 2000; ++i) total += rng.Binomial(20, 0.25);
  EXPECT_NEAR(total / 2000.0, 5.0, 0.2);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(29);
  double total = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) total += rng.Exponential(2.0);
  EXPECT_NEAR(total / n, 0.5, 0.01);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(31);
  std::vector<double> weights = {1.0, 3.0, 0.0};
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 40000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(static_cast<double>(counts[1]) / counts[0], 3.0, 0.2);
}

TEST(RngTest, CategoricalAllZeroWeightsIsUniform) {
  Rng rng(37);
  std::vector<double> weights = {0.0, 0.0};
  std::vector<int> counts(2, 0);
  for (int i = 0; i < 10000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_NEAR(counts[0], 5000, 300);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, SampleWithoutReplacementIsDistinct) {
  Rng rng(43);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 30u);
  for (size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(RngTest, SampleWithoutReplacementFull) {
  Rng rng(47);
  std::vector<size_t> sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> distinct(sample.begin(), sample.end());
  EXPECT_EQ(distinct.size(), 5u);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(53);
  Rng child = parent.Fork();
  // The child continues differently from the parent.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace fairlaw::stats
