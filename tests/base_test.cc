#include <gtest/gtest.h>

#include "base/check.h"
#include "base/result.h"
#include "base/status.h"
#include "base/string_util.h"

namespace fairlaw {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.message(), "");
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::Invalid("bad input");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalid());
  EXPECT_EQ(status.message(), "bad input");
  EXPECT_EQ(status.ToString(), "invalid argument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySemantics) {
  Status original = Status::NotFound("missing");
  Status copy = original;
  EXPECT_TRUE(copy.IsNotFound());
  EXPECT_EQ(copy.message(), "missing");
  EXPECT_TRUE(original.IsNotFound());  // source unchanged
  copy = Status::OK();
  EXPECT_TRUE(copy.ok());
  EXPECT_TRUE(original.IsNotFound());
}

TEST(StatusTest, MoveLeavesSourceReusable) {
  Status original = Status::IOError("disk");
  Status moved = std::move(original);
  EXPECT_TRUE(moved.IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_EQ(result.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::Invalid("nope");
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
  EXPECT_EQ(result.ValueOr(7), 7);
}

TEST(ResultTest, MoveExtractsValue) {
  Result<std::string> result = std::string("payload");
  std::string value = std::move(result).ValueOrDie();
  EXPECT_EQ(value, "payload");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::Invalid("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  FAIRLAW_ASSIGN_OR_RETURN(int half, Half(x));
  FAIRLAW_ASSIGN_OR_RETURN(int quarter, Half(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_TRUE(Quarter(6).status().IsInvalid());  // 6/2=3 is odd
  EXPECT_TRUE(Quarter(7).status().IsInvalid());
}

TEST(StringUtilTest, Split) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("abc", ','), (std::vector<std::string>{"abc"}));
}

TEST(StringUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, ParseDouble) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").ValueOrDie(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble(" -2.25 ").ValueOrDie(), -2.25);
  EXPECT_FALSE(ParseDouble("abc").ok());
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.5x").ok());
}

TEST(StringUtilTest, ParseInt64) {
  EXPECT_EQ(ParseInt64("42").ValueOrDie(), 42);
  EXPECT_EQ(ParseInt64("-7").ValueOrDie(), -7);
  EXPECT_FALSE(ParseInt64("3.5").ok());
  EXPECT_FALSE(ParseInt64("").ok());
}

TEST(StringUtilTest, ParseBool) {
  EXPECT_TRUE(ParseBool("true").ValueOrDie());
  EXPECT_TRUE(ParseBool("TRUE").ValueOrDie());
  EXPECT_TRUE(ParseBool("1").ValueOrDie());
  EXPECT_FALSE(ParseBool("false").ValueOrDie());
  EXPECT_FALSE(ParseBool("0").ValueOrDie());
  EXPECT_FALSE(ParseBool("yes").ok());
}

TEST(StringUtilTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
}

TEST(StringUtilTest, AsciiToLower) {
  EXPECT_EQ(AsciiToLower("AbC"), "abc");
}

TEST(CheckDeathTest, CheckMsgAbortsWithMessage) {
  EXPECT_DEATH(FAIRLAW_CHECK_MSG(1 == 2, "one is not two"),
               "one is not two");
}

TEST(CheckDeathTest, CheckOkAbortsWithStatusText) {
  EXPECT_DEATH(FAIRLAW_CHECK_OK(Status::Invalid("bad denominator")),
               "bad denominator");
}

TEST(CheckDeathTest, NotReachedAborts) {
  EXPECT_DEATH(FAIRLAW_NOTREACHED("unhandled enum value"),
               "unhandled enum value");
}

TEST(CheckDeathTest, BoundsCheckAbortsOnOutOfRange) {
  EXPECT_DEATH(FAIRLAW_BOUNDS_CHECK(5, 3), "index 5 out of range for size 3");
}

TEST(CheckTest, PassingChecksAreSilent) {
  FAIRLAW_CHECK_MSG(1 + 1 == 2, "arithmetic holds");
  FAIRLAW_CHECK_OK(Status::OK());
  FAIRLAW_BOUNDS_CHECK(2, 3);
  FAIRLAW_DCHECK(true, "never fires");
}

}  // namespace
}  // namespace fairlaw
