// Cross-cutting property tests over randomized inputs (TEST_P sweeps):
// invariants every fairness metric and mitigator must satisfy regardless
// of the data.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "metrics/group_metrics.h"
#include "mitigation/di_remover.h"
#include "mitigation/reweighing.h"
#include "mitigation/threshold_optimizer.h"
#include "stats/distance.h"
#include "stats/rng.h"

namespace fairlaw {
namespace {

using metrics::MetricInput;
using stats::Rng;

MetricInput RandomInput(Rng* rng, size_t n, double bias) {
  MetricInput input;
  for (size_t i = 0; i < n; ++i) {
    bool b = rng->Bernoulli(0.4);
    input.groups.push_back(b ? "b" : "a");
    input.labels.push_back(rng->Bernoulli(0.5) ? 1 : 0);
    double p = input.labels.back() == 1 ? 0.8 : 0.2;
    if (b) p -= bias;
    input.predictions.push_back(rng->Bernoulli(p) ? 1 : 0);
  }
  // Guarantee every (group,label) cell is non-empty so all metrics are
  // defined.
  input.groups.insert(input.groups.end(), {"a", "a", "b", "b"});
  input.labels.insert(input.labels.end(), {0, 1, 0, 1});
  input.predictions.insert(input.predictions.end(), {0, 1, 0, 1});
  return input;
}

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, ConstantClassifierSatisfiesDemographicParity) {
  Rng rng(GetParam());
  MetricInput input = RandomInput(&rng, 300, 0.3);
  for (int constant : {0, 1}) {
    MetricInput degenerate = input;
    std::fill(degenerate.predictions.begin(), degenerate.predictions.end(),
              constant);
    metrics::MetricReport report =
        metrics::DemographicParity(degenerate).ValueOrDie();
    EXPECT_TRUE(report.satisfied);
    EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
  }
}

TEST_P(MetricPropertyTest, PerfectClassifierSatisfiesEqualizedOdds) {
  Rng rng(GetParam());
  MetricInput input = RandomInput(&rng, 300, 0.3);
  input.predictions = input.labels;  // oracle
  metrics::MetricReport report =
      metrics::EqualizedOdds(input).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
  // And equal opportunity, being weaker, holds too.
  EXPECT_TRUE(metrics::EqualOpportunity(input).ValueOrDie().satisfied);
}

TEST_P(MetricPropertyTest, GroupRelabelingLeavesGapsInvariant) {
  Rng rng(GetParam());
  MetricInput input = RandomInput(&rng, 300, 0.2);
  MetricInput renamed = input;
  for (std::string& group : renamed.groups) {
    group = group == "a" ? "zeta" : "alpha";
  }
  EXPECT_DOUBLE_EQ(metrics::DemographicParity(input).ValueOrDie().max_gap,
                   metrics::DemographicParity(renamed).ValueOrDie().max_gap);
  EXPECT_DOUBLE_EQ(metrics::EqualizedOdds(input).ValueOrDie().max_gap,
                   metrics::EqualizedOdds(renamed).ValueOrDie().max_gap);
}

TEST_P(MetricPropertyTest, GapBoundsAndRatioConsistency) {
  Rng rng(GetParam());
  MetricInput input = RandomInput(&rng, 300, rng.Uniform(0.0, 0.5));
  // The metrics are overloaded on (MetricInput) and (GroupPartition), so
  // spell out the function-pointer type to pick the MetricInput form.
  using MetricFn = Result<metrics::MetricReport> (*)(
      const metrics::MetricInput&, double);
  for (MetricFn metric : {
           static_cast<MetricFn>(&metrics::DemographicParity),
           static_cast<MetricFn>(&metrics::EqualOpportunity)}) {
    metrics::MetricReport report = (*metric)(input, 0.0).ValueOrDie();
    EXPECT_GE(report.max_gap, 0.0);
    EXPECT_LE(report.max_gap, 1.0);
    EXPECT_GE(report.min_ratio, 0.0);
    EXPECT_LE(report.min_ratio, 1.0 + 1e-12);
    // Zero gap implies ratio 1, and satisfied at zero tolerance.
    if (report.max_gap == 0.0) {
      EXPECT_TRUE(report.satisfied);
    }
  }
}

TEST_P(MetricPropertyTest, DuplicatingEveryRowLeavesRatesInvariant) {
  Rng rng(GetParam());
  MetricInput input = RandomInput(&rng, 200, 0.25);
  MetricInput doubled = input;
  doubled.groups.insert(doubled.groups.end(), input.groups.begin(),
                        input.groups.end());
  doubled.predictions.insert(doubled.predictions.end(),
                             input.predictions.begin(),
                             input.predictions.end());
  doubled.labels.insert(doubled.labels.end(), input.labels.begin(),
                        input.labels.end());
  EXPECT_NEAR(metrics::DemographicParity(input).ValueOrDie().max_gap,
              metrics::DemographicParity(doubled).ValueOrDie().max_gap,
              1e-12);
}

TEST_P(MetricPropertyTest, ReweighingAlwaysRestoresIndependence) {
  Rng rng(GetParam());
  MetricInput input = RandomInput(&rng, 400, rng.Uniform(0.0, 0.5));
  std::vector<double> weights =
      mitigation::ReweighingWeights(input.groups, input.labels)
          .ValueOrDie();
  std::map<std::string, double> positive;
  std::map<std::string, double> total;
  double grand_positive = 0.0;
  double grand_total = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    EXPECT_GT(weights[i], 0.0);
    total[input.groups[i]] += weights[i];
    grand_total += weights[i];
    if (input.labels[i] == 1) {
      positive[input.groups[i]] += weights[i];
      grand_positive += weights[i];
    }
  }
  double overall = grand_positive / grand_total;
  for (const auto& [group, group_total] : total) {
    EXPECT_NEAR(positive[group] / group_total, overall, 1e-9)
        << "group " << group;
  }
}

TEST_P(MetricPropertyTest, FullRepairShrinksGroupKsDistance) {
  Rng rng(GetParam());
  size_t n = 600;
  std::vector<std::string> groups(n);
  std::vector<double> values(n);
  double shift = rng.Uniform(1.0, 3.0);
  for (size_t i = 0; i < n; ++i) {
    bool b = rng.Bernoulli(0.5);
    groups[i] = b ? "b" : "a";
    values[i] = rng.Normal(b ? shift : 0.0, 1.0);
  }
  auto ks_between_groups = [&](const std::vector<double>& column) {
    std::vector<double> a;
    std::vector<double> b;
    for (size_t i = 0; i < n; ++i) {
      (groups[i] == "a" ? a : b).push_back(column[i]);
    }
    return stats::KolmogorovSmirnov(a, b).ValueOrDie();
  };
  std::vector<double> repaired =
      mitigation::RepairFeature(groups, values, 1.0).ValueOrDie();
  EXPECT_LT(ks_between_groups(repaired), ks_between_groups(values) * 0.5);
}

TEST_P(MetricPropertyTest, DpThresholdsHitTargetRateOnRandomScores) {
  Rng rng(GetParam());
  size_t n = 2000;
  std::vector<std::string> groups(n);
  std::vector<double> scores(n);
  double shift = rng.Uniform(0.0, 2.0);
  for (size_t i = 0; i < n; ++i) {
    bool b = rng.Bernoulli(0.5);
    groups[i] = b ? "b" : "a";
    scores[i] = rng.Normal(b ? -shift : 0.0, 1.0);
  }
  double target = rng.Uniform(0.1, 0.9);
  mitigation::ThresholdOptimizerOptions options;
  options.target_rate = target;
  mitigation::GroupThresholds thresholds =
      mitigation::OptimizeThresholds(
          groups, scores, {},
          mitigation::ThresholdCriterion::kDemographicParity, options)
          .ValueOrDie();
  std::vector<int> predictions =
      thresholds.Apply(groups, scores).ValueOrDie();
  std::map<std::string, std::pair<double, double>> rates;
  for (size_t i = 0; i < n; ++i) {
    rates[groups[i]].first += predictions[i];
    rates[groups[i]].second += 1.0;
  }
  for (const auto& [group, pair] : rates) {
    EXPECT_NEAR(pair.first / pair.second, target, 0.06) << group;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

}  // namespace
}  // namespace fairlaw
