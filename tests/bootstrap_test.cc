#include <gtest/gtest.h>

#include "stats/bootstrap.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

Statistic MeanStatistic() {
  return [](std::span<const double> sample) {
    return Mean(sample).ValueOrDie();
  };
}

TEST(BootstrapTest, MeanCiCoversTruth) {
  Rng rng(3);
  std::vector<double> sample(200);
  for (double& v : sample) v = rng.Normal(5.0, 2.0);
  ConfidenceInterval ci =
      BootstrapCi(sample, MeanStatistic(), 500, 0.95, &rng).ValueOrDie();
  EXPECT_LT(ci.lower, 5.0);
  EXPECT_GT(ci.upper, 5.0);
  EXPECT_LT(ci.lower, ci.estimate);
  EXPECT_GT(ci.upper, ci.estimate);
  EXPECT_DOUBLE_EQ(ci.level, 0.95);
}

TEST(BootstrapTest, WiderLevelGivesWiderInterval) {
  Rng rng(5);
  std::vector<double> sample(100);
  for (double& v : sample) v = rng.Normal(0.0, 1.0);
  Rng rng_a(7);
  Rng rng_b(7);
  ConfidenceInterval narrow =
      BootstrapCi(sample, MeanStatistic(), 400, 0.80, &rng_a).ValueOrDie();
  ConfidenceInterval wide =
      BootstrapCi(sample, MeanStatistic(), 400, 0.99, &rng_b).ValueOrDie();
  EXPECT_GT(wide.upper - wide.lower, narrow.upper - narrow.lower);
}

TEST(BootstrapTest, IntervalShrinksWithSampleSize) {
  Rng rng(9);
  std::vector<double> small(50);
  std::vector<double> large(5000);
  for (double& v : small) v = rng.Normal(0.0, 1.0);
  for (double& v : large) v = rng.Normal(0.0, 1.0);
  ConfidenceInterval ci_small =
      BootstrapCi(small, MeanStatistic(), 300, 0.95, &rng).ValueOrDie();
  ConfidenceInterval ci_large =
      BootstrapCi(large, MeanStatistic(), 300, 0.95, &rng).ValueOrDie();
  EXPECT_GT(ci_small.upper - ci_small.lower,
            ci_large.upper - ci_large.lower);
}

TEST(BootstrapTest, Validation) {
  Rng rng(1);
  std::vector<double> sample = {1.0, 2.0};
  EXPECT_FALSE(BootstrapCi({}, MeanStatistic(), 100, 0.95, &rng).ok());
  EXPECT_FALSE(BootstrapCi(sample, MeanStatistic(), 1, 0.95, &rng).ok());
  EXPECT_FALSE(BootstrapCi(sample, MeanStatistic(), 100, 1.0, &rng).ok());
  EXPECT_FALSE(BootstrapCi(sample, MeanStatistic(), 100, 0.95, nullptr).ok());
}

TEST(BootstrapTest, ParameterChecksPrecedeSampleChecks) {
  // A bad replicate count or level must be reported even when the sample
  // is also bad: the cheap argument checks run before any allocation or
  // sample inspection.
  Rng rng(1);
  Status status =
      BootstrapCi({}, MeanStatistic(), 1, 0.95, &rng).status();
  EXPECT_NE(status.message().find("replicates"), std::string::npos)
      << status.message();
  status = BootstrapCi({}, MeanStatistic(), 100, 2.0, &rng).status();
  EXPECT_NE(status.message().find("level"), std::string::npos)
      << status.message();
}

TEST(BootstrapTest, SizeOneSampleIsRejected) {
  // A single observation resamples to itself; a zero-width interval would
  // masquerade as certainty, so it is a Status, not a silent degenerate.
  Rng rng(1);
  std::vector<double> one = {3.0};
  Result<ConfidenceInterval> result =
      BootstrapCi(one, MeanStatistic(), 100, 0.95, &rng);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalid());
}

TEST(BootstrapTest, CiIdenticalForEveryThreadCount) {
  std::vector<double> sample(300);
  {
    Rng fill(21);
    for (double& v : sample) v = fill.Normal(1.0, 2.0);
  }
  Rng rng_serial(77);
  ConfidenceInterval serial =
      BootstrapCi(sample, MeanStatistic(), 400, 0.95, &rng_serial,
                  /*num_threads=*/1)
          .ValueOrDie();
  for (size_t threads : {2u, 8u, 0u}) {
    Rng rng_parallel(77);
    ConfidenceInterval parallel =
        BootstrapCi(sample, MeanStatistic(), 400, 0.95, &rng_parallel,
                    threads)
            .ValueOrDie();
    // Bit-identical, not just close: the replicate streams are functions
    // of (base, replicate index), never of thread scheduling.
    EXPECT_EQ(serial.lower, parallel.lower);
    EXPECT_EQ(serial.upper, parallel.upper);
    EXPECT_EQ(serial.estimate, parallel.estimate);
  }
}

TEST(BootstrapTwoSampleTest, RateGapCi) {
  // Group A has selection rate 0.8, group B 0.4: the CI of the gap should
  // cover 0.4 and exclude 0.
  Rng rng(11);
  std::vector<double> a(500);
  std::vector<double> b(500);
  for (double& v : a) v = rng.Bernoulli(0.8) ? 1.0 : 0.0;
  for (double& v : b) v = rng.Bernoulli(0.4) ? 1.0 : 0.0;
  TwoSampleStatistic gap = [](std::span<const double> x,
                              std::span<const double> y) {
    return Mean(x).ValueOrDie() - Mean(y).ValueOrDie();
  };
  ConfidenceInterval ci =
      BootstrapCiTwoSample(a, b, gap, 500, 0.95, &rng).ValueOrDie();
  EXPECT_GT(ci.lower, 0.25);
  EXPECT_LT(ci.upper, 0.55);
  EXPECT_NEAR(ci.estimate, 0.4, 0.08);
}

TEST(BootstrapTwoSampleTest, Validation) {
  Rng rng(1);
  std::vector<double> sample = {1.0, 2.0};
  TwoSampleStatistic gap = [](std::span<const double>,
                              std::span<const double>) { return 0.0; };
  EXPECT_FALSE(BootstrapCiTwoSample({}, sample, gap, 100, 0.95, &rng).ok());
  EXPECT_FALSE(
      BootstrapCiTwoSample(sample, sample, gap, 100, 0.0, &rng).ok());
}

TEST(BootstrapTwoSampleTest, BothSamplesSizeOneIsRejected) {
  Rng rng(1);
  std::vector<double> one_a = {1.0};
  std::vector<double> one_b = {2.0};
  std::vector<double> pair = {1.0, 2.0};
  TwoSampleStatistic gap = [](std::span<const double> x,
                              std::span<const double> y) {
    return Mean(x).ValueOrDie() - Mean(y).ValueOrDie();
  };
  Result<ConfidenceInterval> degenerate =
      BootstrapCiTwoSample(one_a, one_b, gap, 100, 0.95, &rng);
  EXPECT_FALSE(degenerate.ok());
  EXPECT_TRUE(degenerate.status().IsInvalid());
  // One singleton side is fine as long as the other side resamples.
  EXPECT_TRUE(
      BootstrapCiTwoSample(one_a, pair, gap, 100, 0.95, &rng).ok());
}

TEST(BootstrapTwoSampleTest, CiIdenticalForEveryThreadCount) {
  std::vector<double> a(200);
  std::vector<double> b(150);
  {
    Rng fill(33);
    for (double& v : a) v = fill.Bernoulli(0.7) ? 1.0 : 0.0;
    for (double& v : b) v = fill.Bernoulli(0.4) ? 1.0 : 0.0;
  }
  TwoSampleStatistic gap = [](std::span<const double> x,
                              std::span<const double> y) {
    return Mean(x).ValueOrDie() - Mean(y).ValueOrDie();
  };
  Rng rng_serial(55);
  ConfidenceInterval serial =
      BootstrapCiTwoSample(a, b, gap, 400, 0.95, &rng_serial,
                           /*num_threads=*/1)
          .ValueOrDie();
  for (size_t threads : {2u, 8u, 0u}) {
    Rng rng_parallel(55);
    ConfidenceInterval parallel =
        BootstrapCiTwoSample(a, b, gap, 400, 0.95, &rng_parallel, threads)
            .ValueOrDie();
    EXPECT_EQ(serial.lower, parallel.lower);
    EXPECT_EQ(serial.upper, parallel.upper);
    EXPECT_EQ(serial.estimate, parallel.estimate);
  }
}

}  // namespace
}  // namespace fairlaw::stats
