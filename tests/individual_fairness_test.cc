// Individual fairness (Dwork et al. [4]): kNN consistency and Lipschitz
// audits.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/individual_fairness.h"
#include "stats/rng.h"

namespace fairlaw::metrics {
namespace {

using fairlaw::stats::Rng;

TEST(EuclideanDistanceTest, Basics) {
  EXPECT_DOUBLE_EQ(EuclideanDistance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(EuclideanDistance({1.0}, {1.0}), 0.0);
}

TEST(KnnConsistencyTest, SmoothScoresAreConsistent) {
  // Score = smooth function of the feature: neighbors agree.
  std::vector<std::vector<double>> features;
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) {
    double x = static_cast<double>(i) / 200.0;
    features.push_back({x});
    scores.push_back(0.5 * x);
  }
  ConsistencyReport report =
      KnnConsistency(features, scores, 5).ValueOrDie();
  EXPECT_GT(report.consistency, 0.99);
}

TEST(KnnConsistencyTest, ArbitraryScoresAreInconsistent) {
  Rng rng(7);
  std::vector<std::vector<double>> features;
  std::vector<double> scores;
  for (int i = 0; i < 200; ++i) {
    features.push_back({rng.Uniform(0.0, 1.0)});
    scores.push_back(rng.Bernoulli(0.5) ? 1.0 : 0.0);  // ignores features
  }
  ConsistencyReport report =
      KnnConsistency(features, scores, 5).ValueOrDie();
  EXPECT_LT(report.consistency, 0.75);
}

TEST(KnnConsistencyTest, FlagsTheOutlierIndividual) {
  std::vector<std::vector<double>> features;
  std::vector<double> scores;
  for (int i = 0; i < 50; ++i) {
    features.push_back({static_cast<double>(i)});
    scores.push_back(0.5);
  }
  scores[25] = 1.0;  // one individual treated unlike identical peers
  ConsistencyReport report =
      KnnConsistency(features, scores, 3, /*worst=*/1).ValueOrDie();
  ASSERT_EQ(report.least_consistent.size(), 1u);
  EXPECT_EQ(report.least_consistent[0], 25u);
}

TEST(KnnConsistencyTest, Validation) {
  std::vector<std::vector<double>> features = {{1.0}, {2.0}};
  std::vector<double> scores = {0.5, 0.6};
  EXPECT_FALSE(KnnConsistency({}, {}, 1).ok());
  EXPECT_FALSE(KnnConsistency(features, {0.5}, 1).ok());
  EXPECT_FALSE(KnnConsistency(features, scores, 0).ok());
  EXPECT_FALSE(KnnConsistency(features, scores, 2).ok());  // k >= n
}

TEST(LipschitzTest, SmoothFunctionSatisfiesItsConstant) {
  std::vector<std::vector<double>> features;
  std::vector<double> scores;
  for (int i = 0; i < 100; ++i) {
    double x = static_cast<double>(i) / 100.0;
    features.push_back({x});
    scores.push_back(0.8 * x);  // true Lipschitz constant 0.8
  }
  LipschitzReport report =
      AuditLipschitz(features, scores, /*bound=*/1.0, /*epsilon=*/0.2)
          .ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_NEAR(report.empirical_constant, 0.8, 1e-9);
  EXPECT_GT(report.pairs_checked, 0u);
}

TEST(LipschitzTest, JumpViolates) {
  std::vector<std::vector<double>> features = {{0.0}, {0.01}, {1.0}};
  std::vector<double> scores = {0.1, 0.9, 0.9};  // jump across 0.01
  LipschitzReport report =
      AuditLipschitz(features, scores, /*bound=*/1.0, /*epsilon=*/0.5)
          .ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  ASSERT_FALSE(report.violations.empty());
  EXPECT_EQ(report.violations[0].i, 0u);
  EXPECT_EQ(report.violations[0].j, 1u);
  EXPECT_NEAR(report.violations[0].score_gap, 0.8, 1e-12);
  EXPECT_GT(report.empirical_constant, 10.0);
}

TEST(LipschitzTest, IdenticalIndividualsDifferentScoresIsInfinite) {
  std::vector<std::vector<double>> features = {{1.0}, {1.0}};
  std::vector<double> scores = {0.0, 1.0};
  LipschitzReport report =
      AuditLipschitz(features, scores, 1.0, 0.5).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_TRUE(std::isinf(report.empirical_constant));
}

TEST(LipschitzTest, Validation) {
  std::vector<std::vector<double>> features = {{1.0}, {2.0}};
  std::vector<double> scores = {0.5, 0.6};
  EXPECT_FALSE(AuditLipschitz(features, scores, 0.0, 1.0).ok());
  EXPECT_FALSE(AuditLipschitz(features, scores, 1.0, 0.0).ok());
  std::vector<std::vector<double>> ragged = {{1.0}, {2.0, 3.0}};
  EXPECT_FALSE(AuditLipschitz(ragged, scores, 1.0, 1.0).ok());
}

}  // namespace
}  // namespace fairlaw::metrics
