#include <gtest/gtest.h>

#include <cmath>

#include "stats/distance.h"
#include "stats/ot.h"
#include "stats/rng.h"

namespace fairlaw::stats {
namespace {

using V = std::vector<double>;

std::vector<std::vector<double>> AbsCost(const std::vector<double>& xs,
                                         const std::vector<double>& ys) {
  std::vector<std::vector<double>> cost(xs.size(),
                                        std::vector<double>(ys.size()));
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < ys.size(); ++j) {
      cost[i][j] = std::fabs(xs[i] - ys[j]);
    }
  }
  return cost;
}

TEST(ExactTransportTest, IdentityCostZero) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<std::vector<double>> cost = {{0.0, 1.0}, {1.0, 0.0}};
  TransportPlan plan = ExactTransport(p, p, cost).ValueOrDie();
  EXPECT_NEAR(plan.cost, 0.0, 1e-9);
  EXPECT_NEAR(plan.plan[0][0], 0.5, 1e-9);
  EXPECT_NEAR(plan.plan[1][1], 0.5, 1e-9);
}

TEST(ExactTransportTest, SimpleSwap) {
  // All mass at atom 0 must move to atom 1.
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.0, 1.0};
  std::vector<std::vector<double>> cost = {{0.0, 2.0}, {2.0, 0.0}};
  TransportPlan plan = ExactTransport(p, q, cost).ValueOrDie();
  EXPECT_NEAR(plan.cost, 2.0, 1e-9);
  EXPECT_NEAR(plan.plan[0][1], 1.0, 1e-9);
}

TEST(ExactTransportTest, MatchesWasserstein1OnTheLine) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    size_t n = 3 + rng.UniformInt(4);
    size_t m = 3 + rng.UniformInt(4);
    std::vector<double> xs(n);
    std::vector<double> ys(m);
    for (double& v : xs) v = rng.Uniform(0.0, 10.0);
    for (double& v : ys) v = rng.Uniform(0.0, 10.0);
    std::sort(xs.begin(), xs.end());
    std::sort(ys.begin(), ys.end());
    // Strictly increasing supports (dedupe).
    xs.erase(std::unique(xs.begin(), xs.end()), xs.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());
    std::vector<double> p(xs.size(), 1.0 / static_cast<double>(xs.size()));
    std::vector<double> q(ys.size(), 1.0 / static_cast<double>(ys.size()));

    TransportPlan plan = ExactTransport(p, q, AbsCost(xs, ys)).ValueOrDie();
    double w1 = Wasserstein1Discrete(xs, p, ys, q).ValueOrDie();
    EXPECT_NEAR(plan.cost, w1, 1e-6);
  }
}

TEST(ExactTransportTest, PlanMarginalsMatch) {
  std::vector<double> p = {0.2, 0.3, 0.5};
  std::vector<double> q = {0.6, 0.4};
  std::vector<std::vector<double>> cost = {{1.0, 4.0}, {2.0, 1.0},
                                           {3.0, 2.0}};
  TransportPlan plan = ExactTransport(p, q, cost).ValueOrDie();
  for (size_t i = 0; i < p.size(); ++i) {
    double row = 0.0;
    for (size_t j = 0; j < q.size(); ++j) row += plan.plan[i][j];
    EXPECT_NEAR(row, p[i], 1e-9);
  }
  for (size_t j = 0; j < q.size(); ++j) {
    double col = 0.0;
    for (size_t i = 0; i < p.size(); ++i) col += plan.plan[i][j];
    EXPECT_NEAR(col, q[j], 1e-9);
  }
}

TEST(ExactTransportTest, RejectsBadInput) {
  EXPECT_FALSE(ExactTransport(V{1.0}, V{0.5}, {{1.0}}).ok());  // unbalanced
  EXPECT_FALSE(ExactTransport(V{1.0}, V{1.0}, {{-1.0}}).ok());
  EXPECT_FALSE(ExactTransport(V{}, V{}, {}).ok());
  EXPECT_FALSE(ExactTransport(V{1.0}, V{1.0}, {{1.0, 2.0}}).ok());
}

TEST(SinkhornTest, ApproximatesExactCost) {
  std::vector<double> p = {0.3, 0.7};
  std::vector<double> q = {0.5, 0.5};
  std::vector<std::vector<double>> cost = {{0.0, 1.0}, {1.0, 0.0}};
  TransportPlan exact = ExactTransport(p, q, cost).ValueOrDie();
  TransportPlan entropic =
      SinkhornTransport(p, q, cost, /*epsilon=*/0.01, 5000).ValueOrDie();
  EXPECT_NEAR(entropic.cost, exact.cost, 0.02);
  // Marginals approximately satisfied.
  double row0 = entropic.plan[0][0] + entropic.plan[0][1];
  EXPECT_NEAR(row0, 0.3, 1e-6);
}

TEST(SinkhornTest, RejectsBadEpsilon) {
  EXPECT_FALSE(
      SinkhornTransport(V{1.0}, V{1.0}, {{0.0}}, /*epsilon=*/0.0).ok());
}

TEST(BarycentricProjectionTest, ProjectsOntoTargets) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.5, 0.5};
  std::vector<double> source = {0.0, 10.0};
  std::vector<double> target = {1.0, 11.0};
  TransportPlan plan = ExactTransport(p, q, AbsCost(source, target))
                           .ValueOrDie();
  std::vector<double> projected =
      BarycentricProjection(plan, source, target).ValueOrDie();
  EXPECT_NEAR(projected[0], 1.0, 1e-9);
  EXPECT_NEAR(projected[1], 11.0, 1e-9);
}

TEST(BarycentricProjectionTest, KeepsLocationWithoutMass) {
  TransportPlan plan;
  plan.plan = {{0.0, 0.0}, {0.5, 0.5}};
  std::vector<double> source = {42.0, 0.0};
  std::vector<double> target = {1.0, 3.0};
  std::vector<double> projected =
      BarycentricProjection(plan, source, target).ValueOrDie();
  EXPECT_DOUBLE_EQ(projected[0], 42.0);  // no outgoing mass: unchanged
  EXPECT_DOUBLE_EQ(projected[1], 2.0);
}

}  // namespace
}  // namespace fairlaw::stats
