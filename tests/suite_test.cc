// Integration: the one-call fairness suite over a full synthetic
// pipeline (generate -> train -> predict -> audit everything).
#include <gtest/gtest.h>

#include "core/suite.h"
#include "ml/logistic_regression.h"
#include "simulation/scenarios.h"

namespace fairlaw {
namespace {

using fairlaw::stats::Rng;

/// Generates biased hiring data, trains an unaware model on it, and
/// appends the model's predictions as a "pred" column.
data::Table PipelineTable(double label_bias, double proxy_strength,
                          uint64_t seed) {
  Rng rng(seed);
  sim::HiringOptions options;
  options.n = 5000;
  options.label_bias = label_bias;
  options.proxy_strength = proxy_strength;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  ml::Dataset dataset =
      ml::DatasetFromTable(scenario.table, scenario.feature_columns,
                           scenario.label_column)
          .ValueOrDie();
  ml::LogisticRegression model;
  EXPECT_TRUE(model.Fit(dataset).ok());
  std::vector<int> predictions =
      model.PredictBatch(dataset.features).ValueOrDie();
  std::vector<int64_t> prediction_column(predictions.begin(),
                                         predictions.end());
  return scenario.table
      .AddColumn("pred", data::Column::FromInt64s(prediction_column))
      .ValueOrDie();
}

SuiteConfig FullConfig() {
  SuiteConfig config;
  config.audit.protected_column = "gender";
  config.audit.prediction_column = "pred";
  config.audit.label_column = "merit";  // audit against gender-blind merit
  config.audit.tolerance = 0.05;
  config.proxy_candidates = {"university", "experience", "test_score"};
  config.subgroup_columns = {"gender"};
  config.subgroup_options.max_depth = 1;
  return config;
}

TEST(SuiteTest, BiasedPipelineFailsAcrossTheBoard) {
  data::Table table = PipelineTable(1.5, 1.5, 3);
  SuiteReport report = RunFairnessSuite(table, FullConfig()).ValueOrDie();
  EXPECT_FALSE(report.all_clear);
  EXPECT_FALSE(report.audit.all_satisfied);
  // The university proxy is flagged.
  bool proxy_flagged = false;
  for (const audit::ProxyFinding& finding : report.proxies) {
    if (finding.feature == "university" && finding.flagged) {
      proxy_flagged = true;
    }
  }
  EXPECT_TRUE(proxy_flagged);
  ASSERT_TRUE(report.four_fifths.has_value());
  EXPECT_FALSE(report.four_fifths->passed);
  ASSERT_TRUE(report.sampling.has_value());
  EXPECT_TRUE(report.sampling->all_adequate);  // 5000 rows is plenty

  std::string text = report.Render();
  EXPECT_NE(text.find("issues found"), std::string::npos);
  EXPECT_NE(text.find("PROXY"), std::string::npos);
}

TEST(SuiteTest, UnbiasedPipelineMostlyClear) {
  data::Table table = PipelineTable(0.0, 0.0, 5);
  SuiteConfig config = FullConfig();
  SuiteReport report = RunFairnessSuite(table, config).ValueOrDie();
  // Demographic parity against merit-fair predictions.
  const metrics::MetricReport* dp =
      report.audit.Find("demographic_parity").ValueOrDie();
  EXPECT_TRUE(dp->satisfied);
  for (const audit::ProxyFinding& finding : report.proxies) {
    EXPECT_FALSE(finding.flagged) << finding.feature;
  }
  ASSERT_TRUE(report.four_fifths.has_value());
  EXPECT_TRUE(report.four_fifths->passed);
}

TEST(SuiteTest, OptionalStagesCanBeDisabled) {
  data::Table table = PipelineTable(1.0, 1.0, 7);
  SuiteConfig config = FullConfig();
  config.proxy_candidates.clear();
  config.subgroup_columns.clear();
  config.check_sampling = false;
  config.check_four_fifths = false;
  SuiteReport report = RunFairnessSuite(table, config).ValueOrDie();
  EXPECT_TRUE(report.proxies.empty());
  EXPECT_FALSE(report.subgroups.has_value());
  EXPECT_FALSE(report.sampling.has_value());
  EXPECT_FALSE(report.four_fifths.has_value());
}

TEST(SuiteTest, RepresentationAuditFlagsSkewedComposition) {
  data::Table table = PipelineTable(0.5, 0.5, 11);
  SuiteConfig config = FullConfig();
  // Population is 50/50 but the hiring pool is ~1/3 female: flagged.
  config.population_shares = {{"female", 0.5}, {"male", 0.5}};
  SuiteReport report = RunFairnessSuite(table, config).ValueOrDie();
  ASSERT_TRUE(report.representation.has_value());
  EXPECT_FALSE(report.representation->composition_ok);
  EXPECT_FALSE(report.all_clear);
  EXPECT_NE(report.Render().find("UNDER-REPRESENTED"), std::string::npos);

  // Matching reference passes.
  config.population_shares = {{"female", 1.0 / 3.0}, {"male", 2.0 / 3.0}};
  SuiteReport matched = RunFairnessSuite(table, config).ValueOrDie();
  ASSERT_TRUE(matched.representation.has_value());
  EXPECT_TRUE(matched.representation->composition_ok);
}

TEST(SuiteTest, BadConfigSurfacesError) {
  data::Table table = PipelineTable(1.0, 1.0, 9);
  SuiteConfig config = FullConfig();
  config.audit.protected_column = "missing";
  EXPECT_FALSE(RunFairnessSuite(table, config).ok());
}

}  // namespace
}  // namespace fairlaw
