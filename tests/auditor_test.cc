#include <gtest/gtest.h>

#include <string_view>

#include "audit/auditor.h"
#include "data/csv.h"

namespace fairlaw::audit {
namespace {

data::Table BiasedTable() {
  // Male selection rate 0.75, female 0.25; labels mirror predictions for
  // half the rows so label metrics are well defined.
  std::string csv = "gender,dept,pred,label\n";
  auto add = [&csv](const std::string& g, const std::string& d, int p,
                    int y, int count) {
    for (int i = 0; i < count; ++i) {
      csv += g + "," + d + "," + std::to_string(p) + "," +
             std::to_string(y) + "\n";
    }
  };
  add("male", "eng", 1, 1, 30);
  add("male", "eng", 0, 1, 5);
  add("male", "sales", 1, 0, 15);
  add("male", "sales", 0, 0, 10);
  add("female", "eng", 1, 1, 10);
  add("female", "eng", 0, 1, 20);
  add("female", "sales", 1, 0, 5);
  add("female", "sales", 0, 0, 25);
  return data::ReadCsvString(csv).ValueOrDie();
}

TEST(MetricInputFromTableTest, ExtractsColumns) {
  data::Table table = BiasedTable();
  metrics::MetricInput input =
      MetricInputFromTable(table, "gender", "pred", "label").ValueOrDie();
  EXPECT_EQ(input.size(), table.num_rows());
  EXPECT_EQ(input.labels.size(), table.num_rows());
  // Label column optional.
  metrics::MetricInput no_labels =
      MetricInputFromTable(table, "gender", "pred", "").ValueOrDie();
  EXPECT_TRUE(no_labels.labels.empty());
  // Non-binary prediction column rejected.
  EXPECT_FALSE(MetricInputFromTable(table, "gender", "dept", "").ok());
  EXPECT_FALSE(MetricInputFromTable(table, "missing", "pred", "").ok());
}

TEST(StrataFromTableTest, CombinesColumns) {
  data::Table table = BiasedTable();
  std::vector<std::string> strata =
      StrataFromTable(table, {"dept", "gender"}).ValueOrDie();
  EXPECT_EQ(strata.size(), table.num_rows());
  EXPECT_EQ(strata[0], "eng|male");
  EXPECT_FALSE(StrataFromTable(table, {}).ok());
}

TEST(RunAuditTest, FullSuiteOnBiasedData) {
  data::Table table = BiasedTable();
  AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  config.label_column = "label";
  config.strata_columns = {"dept"};
  config.tolerance = 0.05;
  AuditResult result = RunAudit(table, config).ValueOrDie();
  EXPECT_FALSE(result.all_satisfied);
  // All seven group metrics plus two conditional reports.
  EXPECT_EQ(result.reports.size(), 7u);
  EXPECT_EQ(result.conditional_reports.size(), 2u);

  const metrics::MetricReport* dp =
      result.Find("demographic_parity").ValueOrDie();
  EXPECT_NEAR(dp->max_gap, 0.5, 1e-12);  // 0.75 vs 0.25
  EXPECT_FALSE(dp->satisfied);
  const metrics::MetricReport* di =
      result.Find("disparate_impact_ratio").ValueOrDie();
  EXPECT_NEAR(di->min_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_FALSE(result.Find("nonexistent").ok());
}

TEST(RunAuditTest, LabelMetricsSkippedWithoutLabels) {
  data::Table table = BiasedTable();
  AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  AuditResult result = RunAudit(table, config).ValueOrDie();
  EXPECT_EQ(result.reports.size(), 3u);  // DP, DD, DI only
  EXPECT_TRUE(result.conditional_reports.empty());
}

TEST(RunAuditTest, FairDataPasses) {
  std::string csv = "g,pred\n";
  for (int i = 0; i < 50; ++i) csv += "a," + std::to_string(i % 2) + "\n";
  for (int i = 0; i < 50; ++i) csv += "b," + std::to_string(i % 2) + "\n";
  data::Table table = data::ReadCsvString(csv).ValueOrDie();
  AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "pred";
  AuditResult result = RunAudit(table, config).ValueOrDie();
  // DP/DI pass; demographic disparity fails at exactly 0.5 selection
  // (strict inequality) so the overall verdict reflects that nuance.
  EXPECT_TRUE(result.Find("demographic_parity").ValueOrDie()->satisfied);
  EXPECT_TRUE(
      result.Find("disparate_impact_ratio").ValueOrDie()->satisfied);
}

TEST(RunAuditTest, RenderContainsAllMetrics) {
  data::Table table = BiasedTable();
  AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  config.label_column = "label";
  AuditResult result = RunAudit(table, config).ValueOrDie();
  std::string text = result.Render();
  EXPECT_NE(text.find("demographic_parity"), std::string::npos);
  EXPECT_NE(text.find("equalized_odds"), std::string::npos);
  EXPECT_NE(text.find("VIOLATIONS FOUND"), std::string::npos);
}

TEST(RunAuditTest, NullsInProtectedColumnRejected) {
  data::Table table =
      data::ReadCsvString("g,pred\na,1\n,0\nb,1\nb,0\n").ValueOrDie();
  AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "pred";
  EXPECT_FALSE(RunAudit(table, config).ok());
}

TEST(MetricInputMultiTest, CombinesProtectedColumns) {
  data::Table table = BiasedTable();
  metrics::MetricInput input =
      MetricInputFromTableMulti(table, {"gender", "dept"}, "pred", "label")
          .ValueOrDie();
  EXPECT_EQ(input.size(), table.num_rows());
  // Four intersectional groups: male|eng, male|sales, female|eng,
  // female|sales.
  auto stats =
      metrics::ComputeGroupStats(input, /*with_labels=*/true).ValueOrDie();
  EXPECT_EQ(stats.size(), 4u);
  bool found = false;
  for (const metrics::GroupStats& gs : stats) {
    if (gs.group == "male|eng") {
      found = true;
      EXPECT_EQ(gs.count, 35);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_FALSE(MetricInputFromTableMulti(table, {}, "pred", "").ok());
}

TEST(AuditConfigTest, ValidateAcceptsDefaults) {
  AuditConfig config;
  config.protected_column = "g";
  config.prediction_column = "pred";
  EXPECT_TRUE(config.Validate().ok());
}

TEST(AuditConfigTest, ValidateRejectsBadFields) {
  AuditConfig valid;
  valid.protected_column = "g";
  valid.prediction_column = "pred";

  AuditConfig config = valid;
  config.protected_column = "";
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.prediction_column = "";
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.strata_columns = {"dept", ""};
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.tolerance = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config.tolerance = 1.5;
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.di_threshold = 0.0;
  EXPECT_FALSE(config.Validate().ok());
  config.di_threshold = 1.2;
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.calibration_bins = 0;
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.calibration_tolerance = -0.5;
  EXPECT_FALSE(config.Validate().ok());

  // Calibration needs both a score and a label column.
  config = valid;
  config.score_column = "score";
  config.label_column = "";
  EXPECT_FALSE(config.Validate().ok());

  config = valid;
  config.min_stratum_size = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AuditConfigTest, RunAuditRejectsInvalidConfig) {
  data::Table table = BiasedTable();
  AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  config.tolerance = 2.0;
  EXPECT_FALSE(RunAudit(table, config).ok());
}

// Score table with a deliberate per-group score shift: male scores
// cluster high, female scores cluster low, so the distribution-drift
// audit has a real gap to find.
data::Table ScoredTable(bool shifted) {
  std::string csv = "gender,pred,label,score\n";
  auto add = [&csv](const std::string& g, int p, int y, double score,
                    int count) {
    for (int i = 0; i < count; ++i) {
      csv += g + "," + std::to_string(p) + "," + std::to_string(y) + "," +
             std::to_string(score) + "\n";
    }
  };
  const double offset = shifted ? 0.4 : 0.0;
  for (int step = 0; step < 10; ++step) {
    const double base = 0.05 * step;
    add("male", step >= 5 ? 1 : 0, step >= 5 ? 1 : 0, base + offset, 4);
    add("female", step >= 5 ? 1 : 0, step >= 5 ? 1 : 0, base, 4);
  }
  return data::ReadCsvString(csv).ValueOrDie();
}

AuditConfig ScoreDistConfig() {
  AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  config.label_column = "label";
  config.score_column = "score";
  config.audit_score_distribution = true;
  return config;
}

TEST(ScoreDistributionTest, DriftDetectedAndReported) {
  data::Table table = ScoredTable(/*shifted=*/true);
  AuditConfig config = ScoreDistConfig();
  config.score_distribution_tolerance = 0.1;
  AuditResult result = RunAudit(table, config).ValueOrDie();
  ASSERT_TRUE(result.score_distribution.has_value());
  const ScoreDistributionReport& report = *result.score_distribution;
  ASSERT_EQ(report.groups.size(), 2u);
  EXPECT_EQ(report.groups[0].group, "male");
  EXPECT_EQ(report.groups[0].count, 40u);
  // Each group is compared against everyone else, so the two KS values
  // coincide and reflect the 0.4 shift.
  EXPECT_GT(report.max_ks, 0.1);
  EXPECT_GT(report.max_wasserstein1, 0.1);
  EXPECT_FALSE(report.satisfied);
  EXPECT_FALSE(result.all_satisfied);
  // The rendered report names the new section.
  EXPECT_NE(result.Render().find("score_distribution_drift"),
            std::string::npos);
}

TEST(ScoreDistributionTest, MatchedDistributionsSatisfied) {
  data::Table table = ScoredTable(/*shifted=*/false);
  AuditConfig config = ScoreDistConfig();
  config.score_distribution_tolerance = 0.05;
  AuditResult result = RunAudit(table, config).ValueOrDie();
  ASSERT_TRUE(result.score_distribution.has_value());
  EXPECT_TRUE(result.score_distribution->satisfied);
  EXPECT_NEAR(result.score_distribution->max_ks, 0.0, 1e-12);
  EXPECT_NEAR(result.score_distribution->max_wasserstein1, 0.0, 1e-12);
}

TEST(ScoreDistributionTest, BinnedPathAgreesWithExact) {
  data::Table table = ScoredTable(/*shifted=*/true);
  AuditConfig exact_config = ScoreDistConfig();
  AuditConfig binned_config = ScoreDistConfig();
  binned_config.score_distribution_bins = 128;
  const AuditResult exact = RunAudit(table, exact_config).ValueOrDie();
  const AuditResult binned = RunAudit(table, binned_config).ValueOrDie();
  ASSERT_TRUE(exact.score_distribution.has_value());
  ASSERT_TRUE(binned.score_distribution.has_value());
  EXPECT_NEAR(binned.score_distribution->max_ks,
              exact.score_distribution->max_ks, 0.1);
  EXPECT_NEAR(binned.score_distribution->max_wasserstein1,
              exact.score_distribution->max_wasserstein1, 0.05);
}

TEST(ScoreDistributionTest, ThreadCountDoesNotChangeReport) {
  data::Table table = ScoredTable(/*shifted=*/true);
  AuditConfig config = ScoreDistConfig();
  AuditResult serial = RunAudit(table, config).ValueOrDie();
  config.num_threads = 4;
  AuditResult parallel = RunAudit(table, config).ValueOrDie();
  EXPECT_EQ(serial.Render(), parallel.Render());
}

TEST(ScoreDistributionTest, OffByDefaultAndValidated) {
  data::Table table = ScoredTable(/*shifted=*/true);
  AuditConfig config = ScoreDistConfig();
  config.audit_score_distribution = false;
  AuditResult result = RunAudit(table, config).ValueOrDie();
  EXPECT_FALSE(result.score_distribution.has_value());

  // The drift audit needs a score column.
  config = ScoreDistConfig();
  config.score_column = "";
  config.label_column = "";
  EXPECT_FALSE(config.Validate().ok());

  config = ScoreDistConfig();
  config.score_distribution_tolerance = 1.5;
  EXPECT_FALSE(config.Validate().ok());
  config.score_distribution_tolerance = -0.1;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(AuditResultFindTest, AcceptsStringView) {
  data::Table table = BiasedTable();
  AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  AuditResult result = RunAudit(table, config).ValueOrDie();
  const std::string_view name = "demographic_parity";
  EXPECT_TRUE(result.Find(name).ok());
  EXPECT_FALSE(result.Find("no_such_metric").ok());
}

}  // namespace
}  // namespace fairlaw::audit
