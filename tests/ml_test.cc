#include <gtest/gtest.h>

#include "ml/decision_tree.h"
#include "ml/knn.h"
#include "ml/logistic_regression.h"
#include "ml/naive_bayes.h"
#include "ml/split.h"
#include "ml/standardizer.h"
#include "stats/rng.h"

namespace fairlaw::ml {
namespace {

using fairlaw::stats::Rng;

/// Linearly separable blobs: class 1 around (+2,+2), class 0 around
/// (-2,-2).
Dataset MakeBlobs(size_t n, Rng* rng, double separation = 2.0) {
  Dataset data;
  data.feature_names = {"x0", "x1"};
  data.features.reserve(n);
  data.labels.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    int label = rng->Bernoulli(0.5) ? 1 : 0;
    double center = label == 1 ? separation : -separation;
    data.features.push_back(
        {rng->Normal(center, 1.0), rng->Normal(center, 1.0)});
    data.labels.push_back(label);
  }
  return data;
}

double AccuracyOn(const Classifier& model, const Dataset& data) {
  std::vector<int> predictions =
      model.PredictBatch(data.features).ValueOrDie();
  size_t correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    if (predictions[i] == data.labels[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

TEST(DatasetTest, Validation) {
  Dataset data;
  EXPECT_FALSE(data.Validate().ok());  // empty
  data.features = {{1.0}, {2.0}};
  data.labels = {0, 1};
  EXPECT_TRUE(data.Validate().ok());
  data.labels = {0, 2};
  EXPECT_FALSE(data.Validate().ok());  // non-binary label
  data.labels = {0, 1};
  data.weights = {1.0};
  EXPECT_FALSE(data.Validate().ok());  // weight length
  data.weights = {1.0, -1.0};
  EXPECT_FALSE(data.Validate().ok());  // negative weight
  data.weights = {1.0, 2.0};
  EXPECT_TRUE(data.Validate().ok());
  data.features = {{1.0}, {2.0, 3.0}};
  EXPECT_FALSE(data.Validate().ok());  // ragged
}

TEST(DatasetTest, TakeSubset) {
  Dataset data;
  data.features = {{1.0}, {2.0}, {3.0}};
  data.labels = {0, 1, 0};
  data.weights = {1.0, 2.0, 3.0};
  std::vector<size_t> indices = {2, 0};
  Dataset subset = data.Take(indices).ValueOrDie();
  EXPECT_EQ(subset.size(), 2u);
  EXPECT_DOUBLE_EQ(subset.features[0][0], 3.0);
  EXPECT_DOUBLE_EQ(subset.weights[1], 1.0);
  std::vector<size_t> bad = {9};
  EXPECT_FALSE(data.Take(bad).ok());
}

TEST(LogisticRegressionTest, LearnsSeparableData) {
  Rng rng(3);
  Dataset data = MakeBlobs(600, &rng);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(AccuracyOn(model, data), 0.95);
  // Both weights positive (class 1 lives in the positive quadrant).
  EXPECT_GT(model.weights()[0], 0.0);
  EXPECT_GT(model.weights()[1], 0.0);
}

TEST(LogisticRegressionTest, ProbabilitiesBoundedAndMonotone) {
  Rng rng(5);
  Dataset data = MakeBlobs(400, &rng);
  LogisticRegression model;
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> low = {-5.0, -5.0};
  std::vector<double> high = {5.0, 5.0};
  double p_low = model.PredictProba(low).ValueOrDie();
  double p_high = model.PredictProba(high).ValueOrDie();
  EXPECT_LT(p_low, 0.05);
  EXPECT_GT(p_high, 0.95);
}

TEST(LogisticRegressionTest, WeightsShiftDecision) {
  // Upweighting one class moves predictions toward it.
  Rng rng(7);
  Dataset data = MakeBlobs(400, &rng, /*separation=*/0.3);
  Dataset weighted = data;
  weighted.weights.assign(weighted.size(), 1.0);
  for (size_t i = 0; i < weighted.size(); ++i) {
    if (weighted.labels[i] == 1) weighted.weights[i] = 10.0;
  }
  LogisticRegression plain;
  LogisticRegression skewed;
  ASSERT_TRUE(plain.Fit(data).ok());
  ASSERT_TRUE(skewed.Fit(weighted).ok());
  std::vector<double> origin = {0.0, 0.0};
  EXPECT_GT(skewed.PredictProba(origin).ValueOrDie(),
            plain.PredictProba(origin).ValueOrDie());
}

TEST(LogisticRegressionTest, ErrorsBeforeFitAndOnBadWidth) {
  LogisticRegression model;
  std::vector<double> x = {1.0, 2.0};
  EXPECT_TRUE(model.PredictProba(x).status().IsFailedPrecondition());
  Rng rng(9);
  Dataset data = MakeBlobs(50, &rng);
  ASSERT_TRUE(model.Fit(data).ok());
  std::vector<double> narrow = {1.0};
  EXPECT_FALSE(model.PredictProba(narrow).ok());
}

TEST(SigmoidTest, StableAtExtremes) {
  EXPECT_NEAR(Sigmoid(0.0), 0.5, 1e-12);
  EXPECT_NEAR(Sigmoid(100.0), 1.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-100.0), 0.0, 1e-12);
  EXPECT_NEAR(Sigmoid(-1000.0), 0.0, 1e-12);  // no overflow
}

TEST(GaussianNaiveBayesTest, LearnsSeparableData) {
  Rng rng(11);
  Dataset data = MakeBlobs(600, &rng);
  GaussianNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(AccuracyOn(model, data), 0.95);
}

TEST(GaussianNaiveBayesTest, RequiresBothClasses) {
  Dataset data;
  data.features = {{1.0}, {2.0}};
  data.labels = {1, 1};
  GaussianNaiveBayes model;
  EXPECT_FALSE(model.Fit(data).ok());
}

TEST(BernoulliNaiveBayesTest, LearnsBinaryFeatures) {
  Rng rng(13);
  Dataset data;
  for (int i = 0; i < 400; ++i) {
    int label = rng.Bernoulli(0.5) ? 1 : 0;
    double f0 = rng.Bernoulli(label == 1 ? 0.9 : 0.1) ? 1.0 : 0.0;
    double f1 = rng.Bernoulli(0.5) ? 1.0 : 0.0;  // uninformative
    data.features.push_back({f0, f1});
    data.labels.push_back(label);
  }
  BernoulliNaiveBayes model;
  ASSERT_TRUE(model.Fit(data).ok());
  EXPECT_GT(AccuracyOn(model, data), 0.85);
  // Rejects non-binary features.
  Dataset continuous;
  continuous.features = {{0.5}, {1.0}};
  continuous.labels = {0, 1};
  BernoulliNaiveBayes second;
  EXPECT_FALSE(second.Fit(continuous).ok());
}

TEST(DecisionTreeTest, LearnsXorThatLinearModelsCannot) {
  Rng rng(17);
  Dataset data;
  for (int i = 0; i < 800; ++i) {
    double x0 = rng.Uniform(-1.0, 1.0);
    double x1 = rng.Uniform(-1.0, 1.0);
    data.features.push_back({x0, x1});
    data.labels.push_back((x0 > 0.0) != (x1 > 0.0) ? 1 : 0);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  EXPECT_GT(AccuracyOn(tree, data), 0.9);
  EXPECT_GT(tree.num_nodes(), 3u);

  LogisticRegression linear;
  ASSERT_TRUE(linear.Fit(data).ok());
  EXPECT_LT(AccuracyOn(linear, data), 0.65);  // XOR defeats linear models
}

TEST(DecisionTreeTest, DepthLimitRespected) {
  Rng rng(19);
  Dataset data = MakeBlobs(300, &rng);
  DecisionTreeOptions options;
  options.max_depth = 1;
  DecisionTree stump(options);
  ASSERT_TRUE(stump.Fit(data).ok());
  EXPECT_LE(stump.depth(), 1);
  EXPECT_LE(stump.num_nodes(), 3u);
}

TEST(DecisionTreeTest, PureLeafForConstantLabels) {
  Dataset data;
  data.features = {{1.0}, {2.0}, {3.0}};
  data.labels = {1, 1, 1};
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(data).ok());
  std::vector<double> x = {2.0};
  EXPECT_DOUBLE_EQ(tree.PredictProba(x).ValueOrDie(), 1.0);
  EXPECT_EQ(tree.num_nodes(), 1u);
}

TEST(KnnTest, LearnsSeparableData) {
  Rng rng(23);
  Dataset data = MakeBlobs(400, &rng);
  KnnClassifier knn(5);
  ASSERT_TRUE(knn.Fit(data).ok());
  EXPECT_GT(AccuracyOn(knn, data), 0.93);
}

TEST(KnnTest, KOneMemorizesTraining) {
  Rng rng(29);
  Dataset data = MakeBlobs(100, &rng);
  KnnClassifier knn(1);
  ASSERT_TRUE(knn.Fit(data).ok());
  EXPECT_DOUBLE_EQ(AccuracyOn(knn, data), 1.0);
}

TEST(StandardizerTest, ZeroMeanUnitVariance) {
  std::vector<std::vector<double>> rows = {{1.0, 10.0}, {3.0, 20.0},
                                           {5.0, 30.0}};
  Standardizer standardizer;
  ASSERT_TRUE(standardizer.Fit(rows).ok());
  ASSERT_TRUE(standardizer.Transform(&rows).ok());
  for (size_t j = 0; j < 2; ++j) {
    double mean = 0.0;
    for (const auto& row : rows) mean += row[j];
    EXPECT_NEAR(mean / 3.0, 0.0, 1e-12);
  }
  EXPECT_NEAR(rows[2][0], -rows[0][0], 1e-12);
}

TEST(StandardizerTest, ConstantFeaturePassesThrough) {
  std::vector<std::vector<double>> rows = {{7.0}, {7.0}};
  Standardizer standardizer;
  ASSERT_TRUE(standardizer.Fit(rows).ok());
  ASSERT_TRUE(standardizer.Transform(&rows).ok());
  EXPECT_DOUBLE_EQ(rows[0][0], 0.0);  // (7-7)/1
}

TEST(StandardizerTest, Validation) {
  Standardizer standardizer;
  std::vector<std::vector<double>> rows = {{1.0}};
  EXPECT_FALSE(standardizer.Transform(&rows).ok());  // before fit
  EXPECT_FALSE(standardizer.Fit({}).ok());
}

TEST(SplitTest, PartitionIsExact) {
  Rng rng(31);
  Dataset data = MakeBlobs(100, &rng);
  TrainTestSplit split = SplitTrainTest(data, 0.25, &rng).ValueOrDie();
  EXPECT_EQ(split.test.size(), 25u);
  EXPECT_EQ(split.train.size(), 75u);
  // Indices partition [0,100).
  std::vector<uint8_t> seen(100, 0);
  for (size_t index : split.train_indices) seen[index] = true;
  for (size_t index : split.test_indices) {
    EXPECT_FALSE(seen[index]);  // disjoint
    seen[index] = true;
  }
  for (bool flag : seen) EXPECT_TRUE(flag);  // exhaustive
}

TEST(SplitTest, Validation) {
  Rng rng(37);
  Dataset data = MakeBlobs(10, &rng);
  EXPECT_FALSE(SplitTrainTest(data, 0.0, &rng).ok());
  EXPECT_FALSE(SplitTrainTest(data, 1.0, &rng).ok());
  EXPECT_FALSE(SplitTrainTest(data, 0.5, nullptr).ok());
}

TEST(KFoldTest, FoldsPartition) {
  Rng rng(41);
  auto folds = KFoldIndices(10, 3, &rng).ValueOrDie();
  EXPECT_EQ(folds.size(), 3u);
  std::vector<uint8_t> seen(10, 0);
  for (const auto& fold : folds) {
    for (size_t index : fold) {
      EXPECT_FALSE(seen[index]);
      seen[index] = true;
    }
  }
  for (bool flag : seen) EXPECT_TRUE(flag);
  EXPECT_FALSE(KFoldIndices(10, 1, &rng).ok());
  EXPECT_FALSE(KFoldIndices(2, 3, &rng).ok());
}

}  // namespace
}  // namespace fairlaw::ml
