#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "audit/proxy.h"
#include "audit/subgroup.h"
#include "simulation/scenarios.h"

namespace fairlaw::sim {
namespace {

using fairlaw::stats::Rng;

TEST(HiringScenarioTest, ShapeAndShares) {
  Rng rng(3);
  HiringOptions options;
  options.n = 6000;
  ScenarioData scenario = MakeHiringScenario(options, &rng).ValueOrDie();
  EXPECT_EQ(scenario.table.num_rows(), 6000u);
  EXPECT_EQ(scenario.protected_columns,
            (std::vector<std::string>{"gender"}));
  // Female share near 1/3.
  auto rows = scenario.table.RowsWhereEquals("gender", "female")
                  .ValueOrDie();
  EXPECT_NEAR(static_cast<double>(rows.size()) / 6000.0, 1.0 / 3.0, 0.03);
}

TEST(HiringScenarioTest, LabelBiasShowsUpInHistoricalDecisions) {
  Rng rng(5);
  HiringOptions biased;
  biased.n = 8000;
  biased.label_bias = 1.5;
  ScenarioData scenario = MakeHiringScenario(biased, &rng).ValueOrDie();
  audit::AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "hired";  // audit the historical labels
  audit::AuditResult result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  const metrics::MetricReport* dp =
      result.Find("demographic_parity").ValueOrDie();
  EXPECT_GT(dp->max_gap, 0.15);  // women hired far less

  // Merit is gender-blind by construction.
  config.prediction_column = "merit";
  audit::AuditResult merit_result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  EXPECT_LT(merit_result.Find("demographic_parity").ValueOrDie()->max_gap,
            0.05);
}

TEST(HiringScenarioTest, NoBiasKnobsNoBias) {
  Rng rng(7);
  HiringOptions fair;
  fair.n = 8000;
  fair.label_bias = 0.0;
  fair.proxy_strength = 0.0;
  ScenarioData scenario = MakeHiringScenario(fair, &rng).ValueOrDie();
  audit::AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "hired";
  audit::AuditResult result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  EXPECT_LT(result.Find("demographic_parity").ValueOrDie()->max_gap, 0.04);
}

TEST(HiringScenarioTest, ProxyStrengthControlsUniversityAssociation) {
  Rng rng(9);
  HiringOptions strong;
  strong.n = 6000;
  strong.proxy_strength = 2.0;
  ScenarioData with_proxy = MakeHiringScenario(strong, &rng).ValueOrDie();
  auto findings = audit::DetectProxies(with_proxy.table, "gender",
                                       {"university", "experience"})
                      .ValueOrDie();
  EXPECT_EQ(findings[0].feature, "university");
  EXPECT_TRUE(findings[0].flagged);

  HiringOptions none;
  none.n = 6000;
  none.proxy_strength = 0.0;
  ScenarioData without_proxy = MakeHiringScenario(none, &rng).ValueOrDie();
  auto clean = audit::DetectProxies(without_proxy.table, "gender",
                                    {"university", "experience"})
                   .ValueOrDie();
  for (const auto& finding : clean) EXPECT_FALSE(finding.flagged);
}

TEST(LendingScenarioTest, BiasKnobDrivesApprovalGap) {
  Rng rng(11);
  LendingOptions options;
  options.n = 8000;
  options.label_bias = 1.5;
  ScenarioData scenario = MakeLendingScenario(options, &rng).ValueOrDie();
  audit::AuditConfig config;
  config.protected_column = "group";
  config.prediction_column = "approved";
  audit::AuditResult result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  EXPECT_GT(result.Find("demographic_parity").ValueOrDie()->max_gap, 0.2);
}

TEST(PromotionScenarioTest, GerrymanderedBiasInvisibleToMarginals) {
  Rng rng(13);
  PromotionOptions options;
  options.n = 20000;
  options.subgroup_bias = 1.5;
  ScenarioData scenario = MakePromotionScenario(options, &rng).ValueOrDie();

  // Marginal audits on each protected attribute look fine.
  for (const char* attribute : {"gender", "race"}) {
    audit::AuditConfig config;
    config.protected_column = attribute;
    config.prediction_column = "promoted";
    audit::AuditResult result =
        audit::RunAudit(scenario.table, config).ValueOrDie();
    EXPECT_LT(result.Find("demographic_parity").ValueOrDie()->max_gap,
              0.05)
        << attribute;
  }

  // The depth-2 subgroup audit exposes it.
  audit::SubgroupAuditOptions subgroup_options;
  subgroup_options.max_depth = 2;
  subgroup_options.tolerance = 0.05;
  audit::SubgroupAuditResult subgroups =
      audit::AuditSubgroups(scenario.table, {"gender", "race"}, "promoted",
                            subgroup_options)
          .ValueOrDie();
  EXPECT_TRUE(subgroups.any_violation);
  ASSERT_FALSE(subgroups.findings.empty());
  EXPECT_GT(subgroups.findings[0].gap, 0.1);
  EXPECT_EQ(subgroups.findings[0].subgroup.conditions.size(), 2u);
}

TEST(ScenarioValidationTest, BadOptionsRejected) {
  Rng rng(1);
  HiringOptions hiring;
  hiring.n = 2;
  EXPECT_FALSE(MakeHiringScenario(hiring, &rng).ok());
  hiring.n = 100;
  hiring.female_share = 1.0;
  EXPECT_FALSE(MakeHiringScenario(hiring, &rng).ok());
  LendingOptions lending;
  lending.minority_share = 0.0;
  EXPECT_FALSE(MakeLendingScenario(lending, &rng).ok());
  PromotionOptions promotion;
  promotion.caucasian_share = -0.1;
  EXPECT_FALSE(MakePromotionScenario(promotion, &rng).ok());
}

}  // namespace
}  // namespace fairlaw::sim
