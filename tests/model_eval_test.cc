#include <gtest/gtest.h>

#include "ml/model_eval.h"

namespace fairlaw::ml {
namespace {

TEST(ConfusionMatrixTest, CountsAndRates) {
  std::vector<int> labels = {1, 1, 1, 0, 0, 0, 0, 1};
  std::vector<int> preds = {1, 1, 0, 0, 0, 1, 0, 1};
  ConfusionMatrix cm = MakeConfusionMatrix(labels, preds).ValueOrDie();
  EXPECT_EQ(cm.tp, 3);
  EXPECT_EQ(cm.fn, 1);
  EXPECT_EQ(cm.fp, 1);
  EXPECT_EQ(cm.tn, 3);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(cm.precision(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 3.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.false_positive_rate(), 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(cm.selection_rate(), 4.0 / 8.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.75);
}

TEST(ConfusionMatrixTest, DegenerateRatesAreZero) {
  std::vector<int> labels = {0, 0};
  std::vector<int> preds = {0, 0};
  ConfusionMatrix cm = MakeConfusionMatrix(labels, preds).ValueOrDie();
  EXPECT_DOUBLE_EQ(cm.precision(), 0.0);
  EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
  EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
  EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(ConfusionMatrixTest, Validation) {
  std::vector<int> labels = {0, 1};
  std::vector<int> bad_length = {0};
  std::vector<int> bad_values = {0, 2};
  EXPECT_FALSE(MakeConfusionMatrix(labels, bad_length).ok());
  EXPECT_FALSE(MakeConfusionMatrix(labels, bad_values).ok());
  EXPECT_FALSE(MakeConfusionMatrix({}, {}).ok());
}

TEST(AucTest, PerfectAndInvertedRankings) {
  std::vector<int> labels = {0, 0, 1, 1};
  std::vector<double> ascending = {0.1, 0.2, 0.8, 0.9};
  EXPECT_DOUBLE_EQ(AucRoc(labels, ascending).ValueOrDie(), 1.0);
  std::vector<double> inverted = {0.9, 0.8, 0.2, 0.1};
  EXPECT_DOUBLE_EQ(AucRoc(labels, inverted).ValueOrDie(), 0.0);
}

TEST(AucTest, RandomScoresNearHalf) {
  std::vector<int> labels;
  std::vector<double> scores;
  // Deterministic interleaving: equal mass of positives/negatives at the
  // same score values -> AUC exactly 0.5 under the tie convention.
  for (int i = 0; i < 50; ++i) {
    labels.push_back(1);
    scores.push_back(static_cast<double>(i));
    labels.push_back(0);
    scores.push_back(static_cast<double>(i));
  }
  EXPECT_NEAR(AucRoc(labels, scores).ValueOrDie(), 0.5, 1e-12);
}

TEST(AucTest, TiesGetMidrank) {
  std::vector<int> labels = {0, 1, 0, 1};
  std::vector<double> scores = {0.5, 0.5, 0.2, 0.9};
  // Hand computation: pairs (neg,pos): (0.5 vs 0.5)=0.5, (0.5 vs 0.9)=1,
  // (0.2 vs 0.5)=1, (0.2 vs 0.9)=1 -> AUC = 3.5/4.
  EXPECT_NEAR(AucRoc(labels, scores).ValueOrDie(), 3.5 / 4.0, 1e-12);
}

TEST(AucTest, RequiresBothClasses) {
  std::vector<int> labels = {1, 1};
  std::vector<double> scores = {0.5, 0.6};
  EXPECT_FALSE(AucRoc(labels, scores).ok());
}

TEST(AccuracyTest, Matches) {
  std::vector<int> labels = {1, 0, 1};
  std::vector<int> preds = {1, 1, 1};
  EXPECT_NEAR(Accuracy(labels, preds).ValueOrDie(), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace fairlaw::ml
