// Chouldechova/Kleinberg impossibility checker.
#include <gtest/gtest.h>

#include "metrics/impossibility.h"
#include "stats/rng.h"

namespace fairlaw::metrics {
namespace {

using fairlaw::stats::Rng;

struct Decisions {
  std::vector<std::string> groups;
  std::vector<int> labels;
  std::vector<int> predictions;
};

/// Threshold classifier on a noisy score; group base rates configurable.
Decisions Make(double base_a, double base_b, uint64_t seed) {
  Rng rng(seed);
  Decisions data;
  for (int i = 0; i < 20000; ++i) {
    bool b = rng.Bernoulli(0.5);
    double base = b ? base_b : base_a;
    int label = rng.Bernoulli(base) ? 1 : 0;
    double score = (label == 1 ? 1.0 : -1.0) + rng.Normal(0.0, 1.0);
    data.groups.push_back(b ? "b" : "a");
    data.labels.push_back(label);
    data.predictions.push_back(score > 0.0 ? 1 : 0);
  }
  return data;
}

TEST(ImpossibilityTest, IdentityResidualIsZeroForAnyConfusionMatrix) {
  Decisions data = Make(0.3, 0.6, 3);
  ImpossibilityReport report =
      CheckImpossibility(data.groups, data.labels, data.predictions)
          .ValueOrDie();
  for (const ImpossibilityGroupStats& row : report.groups) {
    EXPECT_NEAR(row.identity_residual, 0.0, 1e-9) << row.group;
  }
}

TEST(ImpossibilityTest, DifferentBaseRatesForceATradeoff) {
  // Same score->decision rule for both groups: TPR/FPR are ~equal, so
  // PPV must differ (the theorem's bite).
  Decisions data = Make(0.2, 0.6, 5);
  ImpossibilityReport report =
      CheckImpossibility(data.groups, data.labels, data.predictions, 0.05)
          .ValueOrDie();
  EXPECT_GT(report.base_rate_gap, 0.3);
  EXPECT_TRUE(report.equalized_odds_satisfied);
  EXPECT_FALSE(report.predictive_parity_satisfied);
  EXPECT_FALSE(report.theorem_boundary_case);
  EXPECT_NE(report.verdict.find("cannot both hold"), std::string::npos);
}

TEST(ImpossibilityTest, EqualBaseRatesAreCompatible) {
  Decisions data = Make(0.4, 0.4, 7);
  ImpossibilityReport report =
      CheckImpossibility(data.groups, data.labels, data.predictions, 0.05)
          .ValueOrDie();
  EXPECT_LT(report.base_rate_gap, 0.05);
  EXPECT_TRUE(report.equalized_odds_satisfied);
  EXPECT_TRUE(report.predictive_parity_satisfied);
  EXPECT_NE(report.verdict.find("jointly attainable"), std::string::npos);
}

TEST(ImpossibilityTest, PerfectClassifierIsTheBoundaryCase) {
  // Oracle decisions: everything holds despite different base rates.
  Decisions data = Make(0.2, 0.6, 9);
  data.predictions = data.labels;
  ImpossibilityReport report =
      CheckImpossibility(data.groups, data.labels, data.predictions, 0.05)
          .ValueOrDie();
  EXPECT_TRUE(report.theorem_boundary_case);
  EXPECT_NE(report.verdict.find("perfect"), std::string::npos);
}

TEST(ImpossibilityTest, Validation) {
  Decisions data = Make(0.3, 0.5, 11);
  EXPECT_FALSE(CheckImpossibility(data.groups, data.labels,
                                  data.predictions, -0.1)
                   .ok());
  std::vector<std::string> one_group(data.groups.size(), "a");
  EXPECT_FALSE(
      CheckImpossibility(one_group, data.labels, data.predictions).ok());
  // Group with no positive predictions.
  std::vector<int> all_negative(data.predictions.size(), 0);
  EXPECT_FALSE(
      CheckImpossibility(data.groups, data.labels, all_negative).ok());
}

}  // namespace
}  // namespace fairlaw::metrics
