// Parameterized sweeps over scenario bias knobs and robustness of the
// CSV reader to adversarial input: properties that must hold for any
// knob setting / any input.
#include <gtest/gtest.h>

#include "audit/auditor.h"
#include "data/csv.h"
#include "simulation/scenarios.h"
#include "stats/rng.h"

namespace fairlaw {
namespace {

using fairlaw::stats::Rng;

double HistoricalDpGap(double label_bias, uint64_t seed) {
  Rng rng(seed);
  sim::HiringOptions options;
  options.n = 8000;
  options.label_bias = label_bias;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  audit::AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "hired";
  audit::AuditResult result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  return result.Find("demographic_parity").ValueOrDie()->max_gap;
}

class ScenarioSweepTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ScenarioSweepTest, DpGapMonotoneInLabelBias) {
  uint64_t seed = GetParam();
  double previous = -1.0;
  for (double bias : {0.0, 0.75, 1.5, 2.25}) {
    double gap = HistoricalDpGap(bias, seed);
    EXPECT_GT(gap, previous - 0.03)  // monotone up to sampling noise
        << "bias " << bias;
    previous = gap;
  }
  // Ends clearly above where it started.
  EXPECT_GT(HistoricalDpGap(2.25, seed), HistoricalDpGap(0.0, seed) + 0.1);
}

TEST_P(ScenarioSweepTest, MeritStaysBlindAcrossAllKnobs) {
  uint64_t seed = GetParam();
  Rng rng(seed);
  sim::HiringOptions options;
  options.n = 8000;
  options.label_bias = 2.0;
  options.proxy_strength = 2.0;  // crank everything
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  audit::AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "merit";
  audit::AuditResult result =
      audit::RunAudit(scenario.table, config).ValueOrDie();
  EXPECT_LT(result.Find("demographic_parity").ValueOrDie()->max_gap, 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ScenarioSweepTest,
                         ::testing::Values(101, 202, 303));

// --- CSV robustness: arbitrary byte soup must never crash the reader;
// it either parses or returns a Status. ---

class CsvFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CsvFuzzTest, RandomInputNeverCrashes) {
  Rng rng(GetParam());
  const char alphabet[] = "abc,\"\n\r0129.|;- \t";
  for (int trial = 0; trial < 200; ++trial) {
    size_t length = rng.UniformInt(120);
    std::string text;
    for (size_t i = 0; i < length; ++i) {
      text += alphabet[rng.UniformInt(sizeof(alphabet) - 1)];
    }
    Result<data::Table> table = data::ReadCsvString(text);
    if (table.ok()) {
      // Whatever parsed must round-trip through the writer.
      Result<std::string> rewritten = data::WriteCsvString(*table);
      EXPECT_TRUE(rewritten.ok());
    }
  }
}

TEST_P(CsvFuzzTest, ParsedTablesAreStructurallySound) {
  Rng rng(GetParam() + 7777);
  for (int trial = 0; trial < 100; ++trial) {
    // Structured-ish random CSV: consistent column count, random cells.
    size_t cols = 1 + rng.UniformInt(4);
    size_t rows = 1 + rng.UniformInt(6);
    std::string text;
    for (size_t c = 0; c < cols; ++c) {
      if (c > 0) text += ',';
      text += "col" + std::to_string(c);
    }
    text += '\n';
    size_t expected_rows = 0;
    for (size_t r = 0; r < rows; ++r) {
      bool any_content = false;
      for (size_t c = 0; c < cols; ++c) {
        if (c > 0) {
          text += ',';
          any_content = true;  // the delimiter marks the line non-blank
        }
        switch (rng.UniformInt(4)) {
          case 0:
            text += std::to_string(rng.UniformInt(100));
            any_content = true;
            break;
          case 1:
            text += "1.5";
            any_content = true;
            break;
          case 2:
            text += "text";
            any_content = true;
            break;
          case 3:
            break;  // null cell
        }
      }
      text += '\n';
      // A line with no content at all (possible only for single-column
      // tables) is skipped as a blank line by the reader.
      if (any_content) ++expected_rows;
    }
    if (expected_rows == 0) {
      EXPECT_FALSE(data::ReadCsvString(text).ok() &&
                   data::ReadCsvString(text)->num_rows() > 0);
      continue;
    }
    data::Table table = data::ReadCsvString(text).ValueOrDie();
    EXPECT_EQ(table.num_columns(), cols);
    EXPECT_EQ(table.num_rows(), expected_rows);
    for (size_t c = 0; c < cols; ++c) {
      EXPECT_EQ(table.column(c).size(), expected_rows);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvFuzzTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace fairlaw
