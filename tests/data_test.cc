#include <gtest/gtest.h>

#include "data/column.h"
#include "data/schema.h"
#include "data/table.h"

namespace fairlaw::data {
namespace {

TEST(SchemaTest, MakeAndLookup) {
  Schema schema = Schema::Make({{"a", DataType::kDouble},
                                {"b", DataType::kString}})
                      .ValueOrDie();
  EXPECT_EQ(schema.num_fields(), 2u);
  EXPECT_EQ(schema.FieldIndex("b").ValueOrDie(), 1u);
  EXPECT_TRUE(schema.HasField("a"));
  EXPECT_FALSE(schema.HasField("c"));
  EXPECT_TRUE(schema.FieldIndex("c").status().IsNotFound());
  EXPECT_EQ(schema.ToString(), "a:double, b:string");
}

TEST(SchemaTest, RejectsDuplicatesAndEmptyNames) {
  EXPECT_FALSE(Schema::Make({{"a", DataType::kDouble},
                             {"a", DataType::kInt64}})
                   .ok());
  EXPECT_FALSE(Schema::Make({{"", DataType::kDouble}}).ok());
}

TEST(SchemaTest, AddRemoveField) {
  Schema schema = Schema::Make({{"a", DataType::kDouble}}).ValueOrDie();
  Schema extended =
      schema.AddField({"b", DataType::kBool}).ValueOrDie();
  EXPECT_EQ(extended.num_fields(), 2u);
  EXPECT_FALSE(schema.HasField("b"));  // original untouched
  Schema removed = extended.RemoveField("a").ValueOrDie();
  EXPECT_EQ(removed.num_fields(), 1u);
  EXPECT_TRUE(removed.HasField("b"));
  EXPECT_FALSE(extended.AddField({"a", DataType::kInt64}).ok());
  EXPECT_FALSE(extended.RemoveField("zzz").ok());
}

TEST(ColumnTest, TypedAppendAndGet) {
  Column column(DataType::kDouble);
  column.AppendDouble(1.5);
  column.AppendNull();
  column.AppendDouble(2.5);
  EXPECT_EQ(column.size(), 3u);
  EXPECT_EQ(column.null_count(), 1u);
  EXPECT_DOUBLE_EQ(column.GetDouble(0).ValueOrDie(), 1.5);
  EXPECT_FALSE(column.GetDouble(1).ok());  // null
  EXPECT_TRUE(column.GetDouble(5).status().IsOutOfRange());
  EXPECT_FALSE(column.GetInt64(0).ok());  // type mismatch
}

TEST(ColumnTest, Factories) {
  Column doubles = Column::FromDoubles({1.0, 2.0});
  Column ints = Column::FromInt64s({1, 2, 3});
  Column strings = Column::FromStrings({"x"});
  Column bools = Column::FromBools({true, false});
  EXPECT_EQ(doubles.size(), 2u);
  EXPECT_EQ(ints.size(), 3u);
  EXPECT_EQ(strings.GetString(0).ValueOrDie(), "x");
  EXPECT_TRUE(bools.GetBool(0).ValueOrDie());
}

TEST(ColumnTest, DenseViewsRequireNoNulls) {
  Column column = Column::FromDoubles({1.0, 2.0});
  EXPECT_TRUE(column.Doubles().ok());
  column.AppendNull();
  EXPECT_FALSE(column.Doubles().ok());
}

TEST(ColumnTest, ToDoublesWidens) {
  EXPECT_EQ(Column::FromInt64s({3, 4}).ToDoubles().ValueOrDie(),
            (std::vector<double>{3.0, 4.0}));
  EXPECT_EQ(Column::FromBools({true, false}).ToDoubles().ValueOrDie(),
            (std::vector<double>{1.0, 0.0}));
  EXPECT_FALSE(Column::FromStrings({"x"}).ToDoubles().ok());
}

TEST(ColumnTest, TakePreservesNulls) {
  Column column(DataType::kInt64);
  column.AppendInt64(10);
  column.AppendNull();
  column.AppendInt64(30);
  std::vector<size_t> indices = {2, 1};
  Column taken = column.Take(indices).ValueOrDie();
  EXPECT_EQ(taken.GetInt64(0).ValueOrDie(), 30);
  EXPECT_FALSE(taken.IsValid(1));
  std::vector<size_t> bad = {9};
  EXPECT_TRUE(column.Take(bad).status().IsOutOfRange());
}

TEST(ColumnTest, AppendCellTypeChecked) {
  Column column(DataType::kString);
  EXPECT_TRUE(column.AppendCell(Cell(std::string("hi"))).ok());
  EXPECT_FALSE(column.AppendCell(Cell(1.0)).ok());
}

Table MakeTestTable() {
  Schema schema = Schema::Make({{"name", DataType::kString},
                                {"score", DataType::kDouble},
                                {"hired", DataType::kInt64}})
                      .ValueOrDie();
  return Table::Make(schema,
                     {Column::FromStrings({"ann", "bob", "cat", "dan"}),
                      Column::FromDoubles({3.0, 1.0, 4.0, 1.5}),
                      Column::FromInt64s({1, 0, 1, 0})})
      .ValueOrDie();
}

TEST(TableTest, BasicAccess) {
  Table table = MakeTestTable();
  EXPECT_EQ(table.num_rows(), 4u);
  EXPECT_EQ(table.num_columns(), 3u);
  const Column* score = table.GetColumn("score").ValueOrDie();
  EXPECT_DOUBLE_EQ(score->GetDouble(2).ValueOrDie(), 4.0);
  EXPECT_FALSE(table.GetColumn("missing").ok());
}

TEST(TableTest, MakeValidatesShape) {
  Schema schema = Schema::Make({{"a", DataType::kDouble}}).ValueOrDie();
  // Wrong column count.
  EXPECT_FALSE(Table::Make(schema, {}).ok());
  // Wrong type.
  EXPECT_FALSE(Table::Make(schema, {Column::FromInt64s({1})}).ok());
  // Ragged lengths.
  Schema two = Schema::Make({{"a", DataType::kDouble},
                             {"b", DataType::kDouble}})
                   .ValueOrDie();
  EXPECT_FALSE(Table::Make(two, {Column::FromDoubles({1.0}),
                                 Column::FromDoubles({1.0, 2.0})})
                   .ok());
}

TEST(TableTest, AddRemoveReplaceColumn) {
  Table table = MakeTestTable();
  Table extended =
      table.AddColumn("age", Column::FromInt64s({30, 40, 50, 60}))
          .ValueOrDie();
  EXPECT_EQ(extended.num_columns(), 4u);
  EXPECT_EQ(table.num_columns(), 3u);  // original immutable
  EXPECT_FALSE(table.AddColumn("age", Column::FromInt64s({1})).ok());
  EXPECT_FALSE(table.AddColumn("score", Column::FromInt64s({1, 2, 3, 4}))
                   .ok());  // duplicate

  Table removed = extended.RemoveColumn("age").ValueOrDie();
  EXPECT_EQ(removed.num_columns(), 3u);

  Table replaced =
      table.ReplaceColumn("hired", Column::FromBools({true, false, true,
                                                      false}))
          .ValueOrDie();
  EXPECT_EQ(replaced.GetColumn("hired").ValueOrDie()->type(),
            DataType::kBool);
}

TEST(TableTest, TakeFilterSlice) {
  Table table = MakeTestTable();
  std::vector<size_t> indices = {3, 0};
  Table taken = table.Take(indices).ValueOrDie();
  EXPECT_EQ(taken.num_rows(), 2u);
  EXPECT_EQ(taken.GetColumn("name").ValueOrDie()->GetString(0).ValueOrDie(),
            "dan");

  const Column* score = table.GetColumn("score").ValueOrDie();
  Table filtered = table.Filter([&](size_t row) {
                          return score->GetDouble(row).ValueOrDie() > 2.0;
                        })
                       .ValueOrDie();
  EXPECT_EQ(filtered.num_rows(), 2u);

  Table sliced = table.Slice(1, 2).ValueOrDie();
  EXPECT_EQ(sliced.num_rows(), 2u);
  EXPECT_EQ(sliced.GetColumn("name").ValueOrDie()->GetString(0).ValueOrDie(),
            "bob");
  EXPECT_TRUE(table.Slice(3, 5).status().IsOutOfRange());
}

TEST(TableTest, RowsWhereEquals) {
  Table table = MakeTestTable();
  std::vector<size_t> rows =
      table.RowsWhereEquals("name", "cat").ValueOrDie();
  EXPECT_EQ(rows, (std::vector<size_t>{2}));
  EXPECT_FALSE(table.RowsWhereEquals("score", "3").ok());  // not string
}

TEST(TableTest, PreviewRendersHeaderAndRows) {
  Table table = MakeTestTable();
  std::string preview = table.Preview(2);
  EXPECT_NE(preview.find("name"), std::string::npos);
  EXPECT_NE(preview.find("ann"), std::string::npos);
  EXPECT_NE(preview.find("2 more rows"), std::string::npos);
}

TEST(TableBuilderTest, AppendRowsAndFinish) {
  Schema schema = Schema::Make({{"x", DataType::kDouble},
                                {"label", DataType::kInt64}})
                      .ValueOrDie();
  TableBuilder builder(schema);
  EXPECT_TRUE(builder.AppendRow({Cell(1.0), Cell(int64_t{1})}).ok());
  EXPECT_TRUE(builder.AppendRow({Cell(2.0), Cell(int64_t{0})}).ok());
  // Arity and type mismatches rejected without corrupting the builder.
  EXPECT_FALSE(builder.AppendRow({Cell(1.0)}).ok());
  EXPECT_FALSE(builder.AppendRow({Cell(int64_t{1}), Cell(int64_t{1})}).ok());
  Table table = builder.Finish().ValueOrDie();
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableBuilderTest, NullHandling) {
  Schema schema = Schema::Make({{"x", DataType::kDouble}}).ValueOrDie();
  TableBuilder builder(schema);
  EXPECT_TRUE(builder.AppendRowWithNulls({std::nullopt}).ok());
  EXPECT_TRUE(builder.AppendRowWithNulls({Cell(3.0)}).ok());
  Table table = builder.Finish().ValueOrDie();
  EXPECT_EQ(table.column(0).null_count(), 1u);
  EXPECT_DOUBLE_EQ(table.column(0).GetDouble(1).ValueOrDie(), 3.0);
}

}  // namespace
}  // namespace fairlaw::data
