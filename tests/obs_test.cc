// fairlaw::obs — probe math, span nesting, export schema stability, and
// the determinism contract (byte-identical export for any thread count).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>

#include "audit/auditor.h"
#include "data/csv.h"
#include "data/table.h"
#include "obs/obs.h"

namespace fairlaw::obs {
namespace {

#ifdef FAIRLAW_OBS_DISABLED

// -DFAIRLAW_OBS=OFF compiles every probe to a no-op; the only contract
// left to test is that nothing records anything.
TEST(ObsCompiledOutTest, ProbesAreInert) {
  EXPECT_FALSE(Enabled());
  SetEnabled(true);  // the compile switch wins over the runtime one
  EXPECT_FALSE(Enabled());
  Counter* counter = GetCounter("test.compiled_out");
  counter->Increment(7);
  EXPECT_EQ(counter->Value(), 0u);
  { TraceSpan span("compiled_out"); }
  EXPECT_EQ(ExportJson().find("compiled_out_span"), std::string::npos);
}

#else

std::string ReadGoldenFile(const std::string& name) {
  std::ifstream in(std::string(FAIRLAW_TEST_GOLDEN_DIR) + "/" + name);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

// Declared first on purpose: the golden comparison needs a registry that
// holds only the probes this test creates, and gtest runs tests in
// declaration order. Later tests register extra counters that would
// (harmlessly, at value 0) show up in the export.
TEST(ObsExportTest, MatchesGoldenFile) {
  ResetAll();
  GetCounter("golden.a")->Increment(3);
  GetCounter("golden.b")->Increment();
  Histogram* histogram = GetHistogram("golden.h");
  histogram->Record(0);
  histogram->Record(1);
  histogram->Record(5);
  {
    TraceSpan outer("outer");
    TraceSpan inner("inner");
  }
  {
    TraceSpan outer("outer");
  }
  Registry::Global().MergeSpan("outer/inner", 1, 0);
  EXPECT_EQ(ExportJson(), ReadGoldenFile("obs_export.json"));
  ResetAll();
}

TEST(ObsExportTest, SchemaKeysAreStable) {
  ResetAll();
  GetCounter("schema.counter")->Increment();
  GetHistogram("schema.histogram")->Record(2);
  { TraceSpan span("schema_span"); }
  const std::string json = ExportJson();
  // Top-level key order is part of the schema: version, enabled,
  // counters, histograms, spans.
  const size_t version_pos = json.find("\"fairlaw_obs_version\":1");
  const size_t enabled_pos = json.find("\"enabled\":true");
  const size_t counters_pos = json.find("\"counters\":[");
  const size_t histograms_pos = json.find("\"histograms\":[");
  const size_t spans_pos = json.find("\"spans\":[");
  ASSERT_NE(version_pos, std::string::npos);
  ASSERT_NE(enabled_pos, std::string::npos);
  ASSERT_NE(counters_pos, std::string::npos);
  ASSERT_NE(histograms_pos, std::string::npos);
  ASSERT_NE(spans_pos, std::string::npos);
  EXPECT_LT(version_pos, enabled_pos);
  EXPECT_LT(enabled_pos, counters_pos);
  EXPECT_LT(counters_pos, histograms_pos);
  EXPECT_LT(histograms_pos, spans_pos);
  // Default export excludes wall-clock totals (determinism contract).
  EXPECT_EQ(json.find("total_ns"), std::string::npos);
  ExportOptions timings;
  timings.include_timings = true;
  EXPECT_NE(ExportJson(timings).find("total_ns"), std::string::npos);
  ResetAll();
}

TEST(ObsCounterTest, IncrementAndReset) {
  Counter* counter = GetCounter("test.counter");
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->Value(), 42u);
  // Same name, same probe: the registry hands out stable pointers.
  EXPECT_EQ(GetCounter("test.counter"), counter);
  counter->Reset();
  EXPECT_EQ(counter->Value(), 0u);
}

TEST(ObsHistogramTest, BucketMath) {
  EXPECT_EQ(Histogram::BucketOf(0), 0u);
  EXPECT_EQ(Histogram::BucketOf(1), 1u);
  EXPECT_EQ(Histogram::BucketOf(2), 2u);
  EXPECT_EQ(Histogram::BucketOf(3), 2u);
  EXPECT_EQ(Histogram::BucketOf(4), 3u);
  EXPECT_EQ(Histogram::BucketOf(7), 3u);
  EXPECT_EQ(Histogram::BucketOf(8), 4u);
  EXPECT_EQ(Histogram::BucketOf(~uint64_t{0}), 64u);

  EXPECT_EQ(Histogram::BucketUpperBound(0), 0u);
  EXPECT_EQ(Histogram::BucketUpperBound(1), 1u);
  EXPECT_EQ(Histogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(Histogram::BucketUpperBound(3), 7u);
  EXPECT_EQ(Histogram::BucketUpperBound(10), 1023u);
  EXPECT_EQ(Histogram::BucketUpperBound(64), ~uint64_t{0});
  // Every value lands in the bucket whose upper bound admits it.
  for (uint64_t value : {0ull, 1ull, 2ull, 100ull, 65535ull, 65536ull}) {
    const size_t bucket = Histogram::BucketOf(value);
    EXPECT_LE(value, Histogram::BucketUpperBound(bucket)) << value;
    if (bucket > 0) {
      EXPECT_GT(value, Histogram::BucketUpperBound(bucket - 1)) << value;
    }
  }
}

TEST(ObsHistogramTest, RecordAggregates) {
  Histogram* histogram = GetHistogram("test.histogram");
  histogram->Reset();
  histogram->Record(0);
  histogram->Record(1);
  histogram->Record(5);
  histogram->Record(5);
  EXPECT_EQ(histogram->Count(), 4u);
  EXPECT_EQ(histogram->Sum(), 11u);
  EXPECT_EQ(histogram->BucketCount(0), 1u);
  EXPECT_EQ(histogram->BucketCount(1), 1u);
  EXPECT_EQ(histogram->BucketCount(3), 2u);
  EXPECT_EQ(histogram->BucketCount(2), 0u);
  EXPECT_EQ(histogram->BucketCount(Histogram::kNumBuckets), 0u);
  histogram->Reset();
  EXPECT_EQ(histogram->Count(), 0u);
}

TEST(ObsSpanTest, NestedSpansJoinPaths) {
  ResetAll();
  EXPECT_EQ(CurrentPath(), "");
  {
    TraceSpan outer("outer");
    EXPECT_EQ(CurrentPath(), "outer");
    {
      TraceSpan inner("inner");
      EXPECT_EQ(CurrentPath(), "outer/inner");
    }
    EXPECT_EQ(CurrentPath(), "outer");
  }
  EXPECT_EQ(CurrentPath(), "");
  const std::string json = ExportJson();
  EXPECT_NE(json.find("{\"path\":\"outer\",\"count\":1}"), std::string::npos)
      << json;
  EXPECT_NE(json.find("{\"path\":\"outer/inner\",\"count\":1}"),
            std::string::npos)
      << json;
  ResetAll();
}

TEST(ObsSpanTest, ExplicitParentReproducesSerialNesting) {
  ResetAll();
  std::string parent;
  {
    TraceSpan root("root");
    parent = CurrentPath();
  }
  // A worker thread would open the span with the captured parent path;
  // doing it here (after `root` closed) models exactly that.
  { TraceSpan worker("job", parent); }
  const std::string json = ExportJson();
  EXPECT_NE(json.find("{\"path\":\"root/job\",\"count\":1}"),
            std::string::npos)
      << json;
  ResetAll();
}

TEST(ObsKillSwitchTest, DisabledProbesAreNoOps) {
  Counter* counter = GetCounter("test.disabled");
  Histogram* histogram = GetHistogram("test.disabled_h");
  counter->Reset();
  histogram->Reset();
  SetEnabled(false);
  EXPECT_FALSE(Enabled());
  counter->Increment(100);
  histogram->Record(100);
  {
    TraceSpan span("disabled_span");
    EXPECT_EQ(CurrentPath(), "");
  }
  SetEnabled(true);
  EXPECT_TRUE(Enabled());
  EXPECT_EQ(counter->Value(), 0u);
  EXPECT_EQ(histogram->Count(), 0u);
  EXPECT_EQ(ExportJson().find("disabled_span"), std::string::npos);
}

// The tentpole acceptance criterion: the export after a full audit is
// byte-identical whatever the thread count, because counts commute and
// span paths rebuild the serial nesting on workers.
TEST(ObsDeterminismTest, AuditExportIdenticalAcrossThreadCounts) {
  std::ostringstream csv;
  csv << "sex,pred,label,score,dept\n";
  for (int i = 0; i < 240; ++i) {
    const bool male = i % 2 == 0;
    const int pred = (i % 3 == 0) ? 1 : 0;
    const int label = (i % 5 == 0) ? 1 - pred : pred;
    const double score = (pred == 1) ? 0.55 + 0.3 * ((i % 7) / 7.0)
                                     : 0.10 + 0.3 * ((i % 7) / 7.0);
    csv << (male ? "male" : "female") << ',' << pred << ',' << label << ','
        << score << ',' << (i % 4 < 2 ? "eng" : "sales") << '\n';
  }
  const data::Table table = data::ReadCsvString(csv.str()).ValueOrDie();

  auto export_for_threads = [&](size_t num_threads) {
    ResetAll();
    audit::AuditConfig config;
    config.protected_column = "sex";
    config.prediction_column = "pred";
    config.label_column = "label";
    config.score_column = "score";
    config.strata_columns = {"dept"};
    config.num_threads = num_threads;
    EXPECT_TRUE(audit::RunAudit(table, config).ok());
    return ExportJson();
  };

  const std::string serial = export_for_threads(1);
  EXPECT_NE(serial.find("\"path\":\"run_audit\",\"count\":1"),
            std::string::npos)
      << serial;
  EXPECT_NE(serial.find("run_audit/metric/demographic_parity"),
            std::string::npos)
      << serial;
  EXPECT_NE(serial.find("\"name\":\"audit.rows_audited\",\"value\":240"),
            std::string::npos)
      << serial;
  for (const size_t threads : {2u, 8u, 0u}) {
    EXPECT_EQ(export_for_threads(threads), serial) << "threads=" << threads;
  }
  ResetAll();
}

#endif  // FAIRLAW_OBS_DISABLED

}  // namespace
}  // namespace fairlaw::obs
