// Pre-/in-processing mitigators: reweighing, disparate-impact remover,
// group-blind OT repair, fairness-regularized logistic regression.
#include <gtest/gtest.h>

#include <cmath>

#include <map>

#include "metrics/group_metrics.h"
#include "mitigation/di_remover.h"
#include "mitigation/group_blind_repair.h"
#include "mitigation/regularized_lr.h"
#include "mitigation/reweighing.h"
#include "ml/logistic_regression.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace fairlaw::mitigation {
namespace {

using fairlaw::stats::Rng;

TEST(ReweighingTest, WeightsRestoreIndependence) {
  // 80 male (60 hired), 20 female (5 hired): strong association.
  std::vector<std::string> groups;
  std::vector<int> labels;
  auto add = [&](const std::string& g, int y, int count) {
    for (int i = 0; i < count; ++i) {
      groups.push_back(g);
      labels.push_back(y);
    }
  };
  add("male", 1, 60);
  add("male", 0, 20);
  add("female", 1, 5);
  add("female", 0, 15);
  std::vector<double> weights =
      ReweighingWeights(groups, labels).ValueOrDie();

  // In the weighted data the positive rate must be identical per group.
  std::map<std::string, double> positive;
  std::map<std::string, double> total;
  for (size_t i = 0; i < groups.size(); ++i) {
    total[groups[i]] += weights[i];
    if (labels[i] == 1) positive[groups[i]] += weights[i];
  }
  double male_rate = positive["male"] / total["male"];
  double female_rate = positive["female"] / total["female"];
  EXPECT_NEAR(male_rate, female_rate, 1e-9);
  // Overall weighted label rate equals the unweighted one (65/100).
  double all_positive = positive["male"] + positive["female"];
  double all_total = total["male"] + total["female"];
  EXPECT_NEAR(all_positive / all_total, 0.65, 1e-9);
  // Disadvantaged-favorable cell weighted up.
  size_t female_hired_index = 80;  // first female hired row
  EXPECT_GT(weights[female_hired_index], 1.0);
}

TEST(ReweighingTest, IndependentDataGetsUnitWeights) {
  std::vector<std::string> groups;
  std::vector<int> labels;
  for (int i = 0; i < 40; ++i) {
    groups.push_back(i % 2 == 0 ? "a" : "b");
    labels.push_back(i % 4 < 2 ? 1 : 0);
  }
  std::vector<double> weights =
      ReweighingWeights(groups, labels).ValueOrDie();
  for (double w : weights) EXPECT_NEAR(w, 1.0, 1e-9);
}

TEST(ReweighingTest, ApplyMultipliesIntoDataset) {
  ml::Dataset data;
  data.features = {{1.0}, {2.0}, {3.0}, {4.0}};
  data.labels = {1, 0, 1, 0};
  data.weights = {2.0, 2.0, 2.0, 2.0};
  std::vector<std::string> groups = {"a", "a", "b", "b"};
  ASSERT_TRUE(ApplyReweighing(groups, &data).ok());
  for (double w : data.weights) EXPECT_NEAR(w, 2.0, 1e-9);  // independent
}

TEST(ReweighingTest, Validation) {
  EXPECT_FALSE(ReweighingWeights({}, {}).ok());
  EXPECT_FALSE(ReweighingWeights({"a"}, {1, 0}).ok());
  EXPECT_FALSE(ReweighingWeights({"a"}, {2}).ok());
}

TEST(DiRemoverTest, FullRepairEqualizesGroupDistributions) {
  Rng rng(7);
  std::vector<std::string> groups;
  std::vector<double> values;
  std::vector<double> group_a;
  std::vector<double> group_b;
  for (int i = 0; i < 2000; ++i) {
    bool a = i % 2 == 0;
    double v = a ? rng.Normal(0.0, 1.0) : rng.Normal(2.0, 1.0);
    groups.push_back(a ? "a" : "b");
    values.push_back(v);
  }
  std::vector<double> repaired =
      RepairFeature(groups, values, 1.0).ValueOrDie();
  for (size_t i = 0; i < repaired.size(); ++i) {
    (groups[i] == "a" ? group_a : group_b).push_back(repaired[i]);
  }
  double mean_a = stats::Mean(group_a).ValueOrDie();
  double mean_b = stats::Mean(group_b).ValueOrDie();
  EXPECT_NEAR(mean_a, mean_b, 0.1);
  // And the medians coincide too (full distributional repair).
  EXPECT_NEAR(stats::Median(group_a).ValueOrDie(),
              stats::Median(group_b).ValueOrDie(), 0.15);
}

TEST(DiRemoverTest, ZeroRepairIsIdentity) {
  std::vector<std::string> groups = {"a", "a", "b", "b"};
  std::vector<double> values = {1.0, 2.0, 3.0, 4.0};
  std::vector<double> repaired =
      RepairFeature(groups, values, 0.0).ValueOrDie();
  EXPECT_EQ(repaired, values);
}

TEST(DiRemoverTest, WithinGroupOrderPreserved) {
  Rng rng(11);
  std::vector<std::string> groups;
  std::vector<double> values;
  for (int i = 0; i < 500; ++i) {
    groups.push_back(i % 2 == 0 ? "a" : "b");
    values.push_back(rng.Normal(i % 2 == 0 ? 0.0 : 3.0, 1.0));
  }
  std::vector<double> repaired =
      RepairFeature(groups, values, 1.0).ValueOrDie();
  // Rank order within each group must be preserved.
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      if (groups[i] != groups[j]) continue;
      if (values[i] < values[j]) {
        EXPECT_LE(repaired[i], repaired[j] + 1e-9);
      }
    }
  }
}

TEST(DiRemoverTest, PartialRepairInterpolates) {
  std::vector<std::string> groups = {"a", "a", "b", "b"};
  std::vector<double> values = {0.0, 1.0, 10.0, 11.0};
  std::vector<double> half = RepairFeature(groups, values, 0.5).ValueOrDie();
  std::vector<double> full = RepairFeature(groups, values, 1.0).ValueOrDie();
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_NEAR(half[i], 0.5 * (values[i] + full[i]), 1e-9);
  }
}

TEST(DiRemoverTest, RepairFeaturesInPlace) {
  std::vector<std::string> groups = {"a", "b", "a", "b"};
  std::vector<std::vector<double>> features = {
      {0.0, 5.0}, {10.0, 5.0}, {1.0, 5.0}, {11.0, 5.0}};
  ASSERT_TRUE(RepairFeatures(groups, &features, {0}, 1.0).ok());
  // Column 1 untouched.
  for (const auto& row : features) EXPECT_DOUBLE_EQ(row[1], 5.0);
  // Column 0 group gap narrowed.
  EXPECT_LT(std::fabs(features[1][0] - features[0][0]), 10.0);
  EXPECT_FALSE(RepairFeatures(groups, &features, {7}, 1.0).ok());
}

TEST(DiRemoverTest, Validation) {
  std::vector<std::string> groups = {"a", "b"};
  std::vector<double> values = {1.0, 2.0};
  EXPECT_FALSE(RepairFeature(groups, values, -0.1).ok());
  EXPECT_FALSE(RepairFeature(groups, values, 1.1).ok());
  EXPECT_FALSE(RepairFeature({"a"}, values, 0.5).ok());
}

TEST(GroupBlindRepairTest, CompensatesMostOfTheGapWithoutGroupLabels) {
  // Reference research data: group a scores ~ N(0,1), group b ~ N(-1.5,1)
  // (disadvantaged). Operational pool mixes them 50/50 WITHOUT labels.
  Rng rng(13);
  std::vector<double> ref_a(500);
  std::vector<double> ref_b(500);
  for (double& v : ref_a) v = rng.Normal(0.0, 1.0);
  for (double& v : ref_b) v = rng.Normal(-1.5, 1.0);
  GroupBlindRepair repair =
      GroupBlindRepair::Fit({ref_a, ref_b}, {0.5, 0.5}).ValueOrDie();

  const size_t n = 6000;
  std::vector<double> pooled(n);
  std::vector<uint8_t> is_b(n);
  for (size_t i = 0; i < n; ++i) {
    is_b[i] = rng.Bernoulli(0.5);
    pooled[i] = is_b[i] ? rng.Normal(-1.5, 1.0) : rng.Normal(0.0, 1.0);
  }
  std::vector<double> repaired = repair.Apply(pooled, 1.0).ValueOrDie();

  auto group_means = [&](const std::vector<double>& scores) {
    double sum[2] = {0.0, 0.0};
    double cnt[2] = {0.0, 0.0};
    for (size_t i = 0; i < n; ++i) {
      int g = is_b[i] ? 1 : 0;
      sum[g] += scores[i];
      cnt[g] += 1.0;
    }
    return std::pair<double, double>(sum[0] / cnt[0], sum[1] / cnt[1]);
  };
  auto [mean_a_before, mean_b_before] = group_means(pooled);
  auto [mean_a_after, mean_b_after] = group_means(repaired);
  double gap_before = std::fabs(mean_a_before - mean_b_before);
  double gap_after = std::fabs(mean_a_after - mean_b_after);
  // The posterior-expected deficit compensates a large share of the mean
  // gap; the remainder is the group-overlap limit documented in the
  // header.
  EXPECT_GT(gap_before, 1.3);
  EXPECT_LT(gap_after, gap_before * 0.6);

  // Selection-rate gap at the pooled median also shrinks: the map is
  // non-monotone, so rankings genuinely change.
  auto gap_at_median = [&](const std::vector<double>& scores) {
    double threshold = stats::Median(scores).ValueOrDie();
    double sel[2] = {0.0, 0.0};
    double cnt[2] = {0.0, 0.0};
    for (size_t i = 0; i < n; ++i) {
      int g = is_b[i] ? 1 : 0;
      cnt[g] += 1.0;
      if (scores[i] >= threshold) sel[g] += 1.0;
    }
    return std::fabs(sel[0] / cnt[0] - sel[1] / cnt[1]);
  };
  double rate_gap_before = gap_at_median(pooled);
  double rate_gap_after = gap_at_median(repaired);
  EXPECT_GT(rate_gap_before, 0.4);
  EXPECT_LT(rate_gap_after, rate_gap_before * 0.75);
}

TEST(GroupBlindRepairTest, StrengthZeroIsIdentity) {
  std::vector<double> ref_a = {0.0, 1.0, 2.0};
  std::vector<double> ref_b = {5.0, 6.0, 7.0};
  GroupBlindRepair repair =
      GroupBlindRepair::Fit({ref_a, ref_b}, {0.5, 0.5}).ValueOrDie();
  std::vector<double> pooled = {0.5, 5.5, 6.5, 1.5};
  std::vector<double> repaired = repair.Apply(pooled, 0.0).ValueOrDie();
  EXPECT_EQ(repaired, pooled);
}

TEST(GroupBlindRepairTest, PosteriorIdentifiesTheLikelyGroup) {
  std::vector<double> ref_a = {-0.5, 0.0, 0.5, 0.2, -0.2};
  std::vector<double> ref_b = {9.5, 10.0, 10.5, 10.2, 9.8};
  GroupBlindRepair repair =
      GroupBlindRepair::Fit({ref_a, ref_b}, {0.5, 0.5}).ValueOrDie();
  std::vector<double> at_a = repair.PosteriorGroupProbabilities(0.0);
  EXPECT_GT(at_a[0], 0.99);
  std::vector<double> at_b = repair.PosteriorGroupProbabilities(10.0);
  EXPECT_GT(at_b[1], 0.99);
  // Posterior sums to one everywhere.
  std::vector<double> mid = repair.PosteriorGroupProbabilities(5.0);
  EXPECT_NEAR(mid[0] + mid[1], 1.0, 1e-12);
}

TEST(GroupBlindRepairTest, BarycenterMeanIsMarginalWeighted) {
  std::vector<double> ref_a = {-0.1, 0.1};
  std::vector<double> ref_b = {9.9, 10.1};
  GroupBlindRepair repair =
      GroupBlindRepair::Fit({ref_a, ref_b}, {0.3, 0.7}).ValueOrDie();
  EXPECT_NEAR(repair.BarycenterMean(), 7.0, 1e-9);
  // A clear group-b score moves toward the barycenter (down by ~3).
  std::vector<double> pooled = {10.0, 0.0};
  std::vector<double> repaired = repair.Apply(pooled, 1.0).ValueOrDie();
  EXPECT_NEAR(repaired[0], 7.0, 0.1);
  EXPECT_NEAR(repaired[1], 7.0, 0.1);
}

TEST(GroupBlindRepairTest, Validation) {
  std::vector<double> ref = {1.0, 2.0};
  EXPECT_FALSE(GroupBlindRepair::Fit({ref}, {1.0}).ok());
  EXPECT_FALSE(GroupBlindRepair::Fit({ref, ref}, {1.0}).ok());
  EXPECT_FALSE(GroupBlindRepair::Fit({ref, ref}, {-1.0, 2.0}).ok());
  EXPECT_FALSE(GroupBlindRepair::Fit({ref, {}}, {0.5, 0.5}).ok());
  EXPECT_FALSE(GroupBlindRepair::Fit({ref, {1.0}}, {0.5, 0.5}).ok());
  GroupBlindRepair repair =
      GroupBlindRepair::Fit({ref, ref}, {0.5, 0.5}).ValueOrDie();
  std::vector<double> pooled = {1.0};
  EXPECT_FALSE(repair.Apply(pooled, 1.5).ok());
  EXPECT_FALSE(repair.Apply(std::vector<double>{}, 0.5).ok());
}

TEST(FairLogisticRegressionTest, PenaltyShrinksParityGap) {
  // Biased hiring data with gender-correlated feature.
  Rng rng(19);
  ml::Dataset data;
  std::vector<int> group(1200);
  for (int i = 0; i < 1200; ++i) {
    bool female = rng.Bernoulli(0.5);
    group[i] = female ? 1 : 0;
    double skill = rng.Normal(0.0, 1.0);
    double proxy = skill + (female ? -1.5 : 1.5) + rng.Normal(0.0, 0.5);
    data.features.push_back({skill, proxy});
    double latent = skill + proxy * 0.8 + rng.Normal(0.0, 0.5);
    data.labels.push_back(latent > 0.0 ? 1 : 0);
  }

  auto dp_gap = [&](const ml::Classifier& model) {
    metrics::MetricInput input;
    std::vector<int> predictions =
        model.PredictBatch(data.features).ValueOrDie();
    for (size_t i = 0; i < data.size(); ++i) {
      input.groups.push_back(group[i] == 1 ? "f" : "m");
      input.predictions.push_back(predictions[i]);
    }
    return metrics::DemographicParity(input).ValueOrDie().max_gap;
  };

  FairLrOptions plain_options;
  plain_options.fairness_weight = 0.0;
  FairLogisticRegression plain(group, plain_options);
  ASSERT_TRUE(plain.Fit(data).ok());

  FairLrOptions fair_options;
  fair_options.fairness_weight = 20.0;
  FairLogisticRegression fair(group, fair_options);
  ASSERT_TRUE(fair.Fit(data).ok());

  EXPECT_LT(dp_gap(fair), dp_gap(plain) * 0.6);
}

TEST(FairLogisticRegressionTest, Validation) {
  ml::Dataset data;
  data.features = {{1.0}, {2.0}};
  data.labels = {0, 1};
  FairLogisticRegression wrong_size({0}, {});
  EXPECT_FALSE(wrong_size.Fit(data).ok());
  FairLogisticRegression bad_group({0, 2}, {});
  EXPECT_FALSE(bad_group.Fit(data).ok());
  FairLogisticRegression one_group({0, 0}, {});
  EXPECT_FALSE(one_group.Fit(data).ok());
  FairLogisticRegression ok_model({0, 1}, {});
  std::vector<double> x = {1.0};
  EXPECT_TRUE(ok_model.PredictProba(x).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace fairlaw::mitigation
