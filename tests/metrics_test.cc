// Reproduces the worked examples of paper §III exactly: each TEST below
// builds the literal population the paper describes and checks that the
// metric reaches the paper's verdict.
#include <gtest/gtest.h>

#include "metrics/group_metrics.h"

namespace fairlaw::metrics {
namespace {

/// Appends `count` rows with the given group/prediction/label.
void AddRows(MetricInput* input, const std::string& group, int prediction,
             int label, int count) {
  for (int i = 0; i < count; ++i) {
    input->groups.push_back(group);
    input->predictions.push_back(prediction);
    if (label >= 0) input->labels.push_back(label);
  }
}

// ---- §III-A demographic parity: 10 female / 20 male applicants; 10
// males hired (50%); fair iff exactly 5 females hired. ----

MetricInput HiringExample(int females_hired) {
  MetricInput input;
  AddRows(&input, "male", 1, -1, 10);
  AddRows(&input, "male", 0, -1, 10);
  AddRows(&input, "female", 1, -1, females_hired);
  AddRows(&input, "female", 0, -1, 10 - females_hired);
  return input;
}

TEST(PaperExampleA, FiveFemalesHiredIsFair) {
  MetricReport report = DemographicParity(HiringExample(5)).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
  // Both groups at exactly 50%.
  for (const GroupStats& gs : report.groups) {
    EXPECT_DOUBLE_EQ(gs.selection_rate, 0.5);
  }
}

TEST(PaperExampleA, FewerThanFiveIsBiasedAgainstFemales) {
  MetricReport report = DemographicParity(HiringExample(3)).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 0.2, 1e-12);  // 0.5 vs 0.3
}

TEST(PaperExampleA, MoreThanFiveIsBiasedAgainstMales) {
  MetricReport report = DemographicParity(HiringExample(8)).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 0.3, 1e-12);  // 0.8 vs 0.5
}

// ---- §III-C equal opportunity: 10 male good matches, 6 female good
// matches; 5 good males hired (TPR 50%); fair iff 3 good females hired.
// ----

MetricInput EqualOpportunityExample(int good_females_hired) {
  MetricInput input;
  // 20 males: 10 good matches (5 hired), 10 bad (not hired).
  AddRows(&input, "male", 1, 1, 5);
  AddRows(&input, "male", 0, 1, 5);
  AddRows(&input, "male", 0, 0, 10);
  // 10 females: 6 good matches, 4 bad (not hired).
  AddRows(&input, "female", 1, 1, good_females_hired);
  AddRows(&input, "female", 0, 1, 6 - good_females_hired);
  AddRows(&input, "female", 0, 0, 4);
  return input;
}

TEST(PaperExampleC, ThreeGoodFemalesHiredIsFair) {
  MetricReport report =
      EqualOpportunity(EqualOpportunityExample(3)).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
  for (const GroupStats& gs : report.groups) {
    EXPECT_DOUBLE_EQ(gs.tpr, 0.5);
  }
}

TEST(PaperExampleC, FewerIsBiasedAgainstFemales) {
  MetricReport report =
      EqualOpportunity(EqualOpportunityExample(1)).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  // Female TPR 1/6 vs male 1/2.
  EXPECT_NEAR(report.max_gap, 0.5 - 1.0 / 6.0, 1e-12);
}

TEST(PaperExampleC, MoreIsBiasedAgainstMales) {
  MetricReport report =
      EqualOpportunity(EqualOpportunityExample(6)).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 0.5, 1e-12);  // 1.0 vs 0.5
}

// ---- §III-D equalized odds: 6 female / 12 male; 6 male good matches all
// hired, 6 male bad matches all rejected (TPR=1, FPR=0); fair iff all 3
// good females hired and all 3 bad females rejected. ----

MetricInput EqualizedOddsExample(int good_females_hired,
                                 int bad_females_hired) {
  MetricInput input;
  AddRows(&input, "male", 1, 1, 6);   // good matches hired
  AddRows(&input, "male", 0, 0, 6);   // bad matches rejected
  AddRows(&input, "female", 1, 1, good_females_hired);
  AddRows(&input, "female", 0, 1, 3 - good_females_hired);
  AddRows(&input, "female", 1, 0, bad_females_hired);
  AddRows(&input, "female", 0, 0, 3 - bad_females_hired);
  return input;
}

TEST(PaperExampleD, PerfectSeparationIsFair) {
  MetricReport report =
      EqualizedOdds(EqualizedOddsExample(3, 0)).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
}

TEST(PaperExampleD, WrongPositivesViolate) {
  // Hiring a bad-match female breaks FPR equality even with TPR equal.
  MetricReport report =
      EqualizedOdds(EqualizedOddsExample(3, 1)).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 1.0 / 3.0, 1e-12);
}

TEST(PaperExampleD, MissedPositivesViolate) {
  MetricReport report =
      EqualizedOdds(EqualizedOddsExample(2, 0)).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NEAR(report.max_gap, 1.0 / 3.0, 1e-12);
}

TEST(PaperExampleD, EqualOpportunityIsWeakerThanEqualizedOdds) {
  // TPR equal but FPR broken: EO passes, EOdds fails — the paper's
  // "more restrictive" claim.
  MetricInput input = EqualizedOddsExample(3, 1);
  EXPECT_TRUE(EqualOpportunity(input).ValueOrDie().satisfied);
  EXPECT_FALSE(EqualizedOdds(input).ValueOrDie().satisfied);
}

// ---- §III-E demographic disparity: 10 females; fair iff more hired
// than rejected. ----

TEST(PaperExampleE, MoreHiredThanRejectedIsFair) {
  MetricInput input;
  AddRows(&input, "female", 1, -1, 6);
  AddRows(&input, "female", 0, -1, 4);
  MetricReport report = DemographicDisparity(input).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
}

TEST(PaperExampleE, MoreThanFiveRejectedIsUnfair) {
  MetricInput input;
  AddRows(&input, "female", 1, -1, 4);
  AddRows(&input, "female", 0, -1, 6);
  MetricReport report = DemographicDisparity(input).ValueOrDie();
  EXPECT_FALSE(report.satisfied);
  EXPECT_NE(report.detail.find("female"), std::string::npos);
}

TEST(PaperExampleE, ExactTieIsUnfair) {
  // P(R=+) must strictly exceed P(R=-).
  MetricInput input;
  AddRows(&input, "female", 1, -1, 5);
  AddRows(&input, "female", 0, -1, 5);
  EXPECT_FALSE(DemographicDisparity(input).ValueOrDie().satisfied);
}

// ---- Disparate impact / four-fifths companion ----

TEST(DisparateImpactTest, RatioComputedAgainstBestGroup) {
  MetricInput input;
  AddRows(&input, "male", 1, -1, 50);
  AddRows(&input, "male", 0, -1, 50);   // rate 0.5
  AddRows(&input, "female", 1, -1, 30);
  AddRows(&input, "female", 0, -1, 70);  // rate 0.3
  MetricReport report = DisparateImpactRatio(input, 0.8).ValueOrDie();
  EXPECT_NEAR(report.min_ratio, 0.6, 1e-12);
  EXPECT_FALSE(report.satisfied);
  MetricReport lenient = DisparateImpactRatio(input, 0.5).ValueOrDie();
  EXPECT_TRUE(lenient.satisfied);
}

TEST(DisparateImpactTest, AllZeroRatesIsAnError) {
  // 0/0 impact is undefined; reporting "no disparity" for a process that
  // selected nobody would be a wrong legal conclusion, so the metric
  // refuses instead of passing silently.
  MetricInput input;
  AddRows(&input, "a", 0, -1, 10);
  AddRows(&input, "b", 0, -1, 10);
  Result<MetricReport> report = DisparateImpactRatio(input);
  ASSERT_FALSE(report.ok());
  EXPECT_TRUE(report.status().IsFailedPrecondition());
}

// ---- Predictive parity & accuracy equality companions ----

TEST(PredictiveParityTest, EqualPpvSatisfied) {
  MetricInput input;
  // Group a: 4 predicted positive, 3 correct (PPV .75).
  AddRows(&input, "a", 1, 1, 3);
  AddRows(&input, "a", 1, 0, 1);
  AddRows(&input, "a", 0, 0, 6);
  // Group b: 8 predicted positive, 6 correct (PPV .75).
  AddRows(&input, "b", 1, 1, 6);
  AddRows(&input, "b", 1, 0, 2);
  AddRows(&input, "b", 0, 0, 2);
  MetricReport report = PredictiveParity(input).ValueOrDie();
  EXPECT_TRUE(report.satisfied);
  EXPECT_DOUBLE_EQ(report.max_gap, 0.0);
}

TEST(PredictiveParityTest, UndefinedWithoutPositivePredictions) {
  MetricInput input;
  AddRows(&input, "a", 0, 1, 5);
  AddRows(&input, "b", 1, 1, 5);
  EXPECT_FALSE(PredictiveParity(input).ok());
}

TEST(AccuracyEqualityTest, GapComputed) {
  MetricInput input;
  AddRows(&input, "a", 1, 1, 9);
  AddRows(&input, "a", 0, 1, 1);   // group a accuracy 0.9
  AddRows(&input, "b", 1, 1, 5);
  AddRows(&input, "b", 0, 1, 5);   // group b accuracy 0.5
  MetricReport report = AccuracyEquality(input, 0.05).ValueOrDie();
  EXPECT_NEAR(report.max_gap, 0.4, 1e-12);
  EXPECT_FALSE(report.satisfied);
}

// ---- Tolerance semantics & validation ----

TEST(MetricValidationTest, ToleranceAllowsSmallGaps) {
  MetricInput input = HiringExample(4);  // gap 0.1
  EXPECT_FALSE(DemographicParity(input, 0.05).ValueOrDie().satisfied);
  EXPECT_TRUE(DemographicParity(input, 0.15).ValueOrDie().satisfied);
  EXPECT_FALSE(DemographicParity(input, -0.1).ok());
}

TEST(MetricValidationTest, SingleGroupRejected) {
  MetricInput input;
  AddRows(&input, "only", 1, -1, 10);
  EXPECT_FALSE(DemographicParity(input).ok());
}

TEST(MetricValidationTest, LabelRequirementsEnforced) {
  MetricInput input = HiringExample(5);  // no labels
  EXPECT_FALSE(EqualOpportunity(input).ok());
  EXPECT_FALSE(EqualizedOdds(input).ok());
  EXPECT_FALSE(PredictiveParity(input).ok());
}

TEST(MetricValidationTest, GroupWithoutPositivesRejectedForEo) {
  MetricInput input;
  AddRows(&input, "a", 1, 1, 5);
  AddRows(&input, "a", 0, 0, 5);
  AddRows(&input, "b", 0, 0, 10);  // no actual positives in b
  EXPECT_FALSE(EqualOpportunity(input).ok());
  EXPECT_FALSE(EqualizedOdds(input).ok());
}

TEST(MetricValidationTest, InputStructuralChecks) {
  MetricInput input;
  EXPECT_FALSE(input.Validate(false).ok());  // empty
  input.groups = {"a", "b"};
  input.predictions = {0, 2};
  EXPECT_FALSE(input.Validate(false).ok());  // bad prediction value
  input.predictions = {0, 1};
  input.labels = {1};
  EXPECT_FALSE(input.Validate(false).ok());  // label length
  input.labels = {1, 3};
  EXPECT_FALSE(input.Validate(false).ok());  // bad label value
  input.labels = {1, 0};
  EXPECT_TRUE(input.Validate(true).ok());
}

TEST(GroupStatsTest, RatesComputedPerGroup) {
  MetricInput input;
  AddRows(&input, "a", 1, 1, 2);
  AddRows(&input, "a", 1, 0, 1);
  AddRows(&input, "a", 0, 1, 1);
  AddRows(&input, "a", 0, 0, 2);
  AddRows(&input, "b", 1, 1, 1);
  AddRows(&input, "b", 0, 0, 1);
  auto stats = ComputeGroupStats(input, true).ValueOrDie();
  ASSERT_EQ(stats.size(), 2u);
  const GroupStats& a = stats[0];
  EXPECT_EQ(a.group, "a");
  EXPECT_EQ(a.count, 6);
  EXPECT_DOUBLE_EQ(a.selection_rate, 0.5);
  EXPECT_DOUBLE_EQ(a.tpr, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.fpr, 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(a.ppv, 2.0 / 3.0);
}

TEST(RenderReportTest, MentionsVerdictAndGroups) {
  MetricReport report = DemographicParity(HiringExample(3)).ValueOrDie();
  std::string text = RenderReport(report);
  EXPECT_NE(text.find("VIOLATED"), std::string::npos);
  EXPECT_NE(text.find("female"), std::string::npos);
  EXPECT_NE(text.find("male"), std::string::npos);
}

}  // namespace
}  // namespace fairlaw::metrics
