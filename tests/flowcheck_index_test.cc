// Regression tests for the fairlaw_flowcheck signature index
// (tools/analysis/index.h): the cross-file map of Status/Result<T>
// declarations that the error-flow rules match call sites against. The
// cases pin the declaration shapes that are easy to lose in a lexical
// parser — trailing return types, function-try-blocks, reference
// accessors vs by-value factories, and template-heavy class heads.
#include "tools/analysis/index.h"

#include <string>
#include <string_view>
#include <vector>

#include "gtest/gtest.h"
#include "tools/analysis/lexer.h"

namespace fairlaw::analysis {
namespace {

SignatureIndex IndexOf(std::string_view header_source) {
  SignatureIndex index;
  const LexResult lexed = Lex(header_source);
  index.AddHeader("test.h", lexed.tokens);
  return index;
}

const FallibleFn* Find(const SignatureIndex& index,
                       const std::string& qualified) {
  for (const FallibleFn& fn : index.functions()) {
    if (fn.qualified == qualified) return &fn;
  }
  return nullptr;
}

TEST(SignatureIndexTest, PlainAndStaticDeclarations) {
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    class Table {
     public:
      FAIRLAW_NODISCARD Status Validate() const;
      static Status Open(const std::string& path);
      Result<int> RowCount() const;
    };
    }  // namespace fairlaw
  )");
  ASSERT_EQ(index.functions().size(), 3u);

  const FallibleFn* validate = Find(index, "fairlaw::Table::Validate");
  ASSERT_NE(validate, nullptr);
  EXPECT_EQ(validate->return_type, "Status");
  EXPECT_TRUE(validate->by_value);
  EXPECT_TRUE(validate->has_nodiscard);

  const FallibleFn* open = Find(index, "fairlaw::Table::Open");
  ASSERT_NE(open, nullptr);
  EXPECT_FALSE(open->has_nodiscard);
  EXPECT_TRUE(index.IsFallible("Open"));
  EXPECT_TRUE(index.IsFallible("RowCount"));
  EXPECT_FALSE(index.IsFallible("Close"));
}

TEST(SignatureIndexTest, TrailingReturnTypes) {
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    class Store {
     public:
      auto Reload() -> Status;
      auto LoadAll() const -> Result<std::vector<int>>;
    };
    auto OpenStore(const std::string& path) -> fairlaw::Result<Store>;
    }  // namespace fairlaw
  )");
  ASSERT_EQ(index.functions().size(), 3u);

  const FallibleFn* reload = Find(index, "fairlaw::Store::Reload");
  ASSERT_NE(reload, nullptr);
  EXPECT_EQ(reload->return_type, "Status");
  EXPECT_TRUE(reload->by_value);

  const FallibleFn* load_all = Find(index, "fairlaw::Store::LoadAll");
  ASSERT_NE(load_all, nullptr);
  EXPECT_EQ(load_all->return_type, "Result<std::vector<int>>");

  EXPECT_TRUE(index.IsFallible("OpenStore"));
}

TEST(SignatureIndexTest, FunctionTryBlockKeepsScopeInSync) {
  // A function-try-block puts `try` between the signature and the
  // brace; the parser must still index the declaration and must not
  // desynchronize the namespace stack for declarations that follow.
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    inline Status Commit(int v) try {
      return Status::OK();
    } catch (...) {
      return Status::Internal("commit failed");
    }
    Status AfterTry();
    }  // namespace fairlaw
  )");
  ASSERT_EQ(index.functions().size(), 2u);
  EXPECT_NE(Find(index, "fairlaw::Commit"), nullptr);
  EXPECT_NE(Find(index, "fairlaw::AfterTry"), nullptr);
}

TEST(SignatureIndexTest, ReferenceAccessorsAreNotFallibleCallees) {
  // `const Status& status()` is an accessor: indexed (the nodiscard
  // sweep covers it) but excluded from the fallible call-site name set,
  // so `result.status();` as a statement is not a discarded NEW error.
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    class Result_ish {
     public:
      const Status& status() const&;
      Status Take() &&;
    };
    }  // namespace fairlaw
  )");
  const FallibleFn* status = Find(index, "fairlaw::Result_ish::status");
  ASSERT_NE(status, nullptr);
  EXPECT_FALSE(status->by_value);
  EXPECT_FALSE(index.IsFallible("status"));
  EXPECT_TRUE(index.IsFallible("Take"));
}

TEST(SignatureIndexTest, TemplateClassHeadDoesNotFakeAScope) {
  // `template <class T>` must not push "T" (or anything) as a class
  // scope, and a templated class head must still qualify its members.
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    template <class T>
    class Box {
     public:
      Status Put(T value);
      Result<T> Get() const;
    };
    }  // namespace fairlaw
  )");
  ASSERT_EQ(index.functions().size(), 2u);
  EXPECT_NE(Find(index, "fairlaw::Box::Put"), nullptr);
  const FallibleFn* get = Find(index, "fairlaw::Box::Get");
  ASSERT_NE(get, nullptr);
  EXPECT_EQ(get->return_type, "Result<T>");
}

TEST(SignatureIndexTest, FunctionBodyLocalsAreNotIndexed) {
  // `Status st(Status::OK());` inside an inline body is a local
  // variable, not an API declaration; the API-scope guard must skip it.
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    inline int Helper() {
      Status st = Status::OK();
      return st.ok() ? 0 : 1;
    }
    Status RealDecl();
    }  // namespace fairlaw
  )");
  ASSERT_EQ(index.functions().size(), 1u);
  EXPECT_NE(Find(index, "fairlaw::RealDecl"), nullptr);
}

TEST(SignatureIndexTest, StatusFactoryUsageIsNotADeclaration) {
  // `Status::Invalid("x")` in a default argument or inline body is a
  // call, not a declaration of `Invalid`.
  const SignatureIndex index = IndexOf(R"(
    namespace fairlaw {
    void Fail(Status s = Status::Invalid("bad"));
    Status Work();
    }  // namespace fairlaw
  )");
  ASSERT_EQ(index.functions().size(), 1u);
  EXPECT_NE(Find(index, "fairlaw::Work"), nullptr);
}

}  // namespace
}  // namespace fairlaw::analysis
