// Preferential sampling (the resampling twin of reweighing).
#include <gtest/gtest.h>

#include <map>

#include "mitigation/sampling.h"
#include "stats/rng.h"

namespace fairlaw::mitigation {
namespace {

using fairlaw::stats::Rng;

struct Cells {
  std::vector<std::string> groups;
  std::vector<int> labels;
};

Cells MakeBiasedCells() {
  Cells cells;
  auto add = [&cells](const std::string& g, int y, int count) {
    for (int i = 0; i < count; ++i) {
      cells.groups.push_back(g);
      cells.labels.push_back(y);
    }
  };
  add("male", 1, 600);
  add("male", 0, 200);
  add("female", 1, 50);
  add("female", 0, 150);
  return cells;
}

TEST(PreferentialSamplingTest, RestoresIndependenceInExpectation) {
  Cells cells = MakeBiasedCells();
  Rng rng(3);
  std::vector<size_t> indices =
      PreferentialSamplingIndices(cells.groups, cells.labels, &rng)
          .ValueOrDie();

  std::map<std::string, double> positive;
  std::map<std::string, double> total;
  for (size_t index : indices) {
    total[cells.groups[index]] += 1.0;
    if (cells.labels[index] == 1) positive[cells.groups[index]] += 1.0;
  }
  double male_rate = positive["male"] / total["male"];
  double female_rate = positive["female"] / total["female"];
  // Stochastic rounding: rates agree to within a small tolerance.
  EXPECT_NEAR(male_rate, female_rate, 0.05);
  // Resampled size stays near the original.
  EXPECT_NEAR(static_cast<double>(indices.size()),
              static_cast<double>(cells.groups.size()),
              0.05 * static_cast<double>(cells.groups.size()));
}

TEST(PreferentialSamplingTest, IndependentDataKeptVerbatim) {
  Cells cells;
  for (int i = 0; i < 100; ++i) {
    cells.groups.push_back(i % 2 == 0 ? "a" : "b");
    cells.labels.push_back(i % 4 < 2 ? 1 : 0);
  }
  Rng rng(5);
  std::vector<size_t> indices =
      PreferentialSamplingIndices(cells.groups, cells.labels, &rng)
          .ValueOrDie();
  // All weights are exactly 1: every row exactly once.
  EXPECT_EQ(indices.size(), cells.groups.size());
  std::vector<uint8_t> seen(cells.groups.size(), 0);
  for (size_t index : indices) {
    EXPECT_FALSE(seen[index]);
    seen[index] = true;
  }
}

TEST(PreferentialSamplingTest, ApplyBuildsDataset) {
  Cells cells = MakeBiasedCells();
  ml::Dataset data;
  for (size_t i = 0; i < cells.groups.size(); ++i) {
    data.features.push_back({static_cast<double>(i)});
    data.labels.push_back(cells.labels[i]);
  }
  Rng rng(7);
  ml::Dataset resampled =
      ApplyPreferentialSampling(cells.groups, data, &rng).ValueOrDie();
  EXPECT_TRUE(resampled.Validate().ok());
  EXPECT_GT(resampled.size(), cells.groups.size() / 2);
}

TEST(PreferentialSamplingTest, Validation) {
  Rng rng(9);
  EXPECT_FALSE(PreferentialSamplingIndices({}, {}, &rng).ok());
  EXPECT_FALSE(
      PreferentialSamplingIndices({"a"}, {1}, nullptr).ok());
  ml::Dataset data;
  data.features = {{1.0}};
  data.labels = {1};
  EXPECT_FALSE(ApplyPreferentialSampling({"a", "b"}, data, &rng).ok());
}

}  // namespace
}  // namespace fairlaw::mitigation
