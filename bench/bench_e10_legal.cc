// E10 — §II + §IV legal mapping. Runs the EEOC four-fifths screen and
// the burden-shifting pipeline across the E2 bias grid, and evaluates
// the §IV selection-criteria checklist for three use-case profiles,
// showing how the same model facts resolve differently under US and EU
// doctrine.
#include <cstdio>

#include "audit/auditor.h"
#include "legal/burden_shifting.h"
#include "legal/checklist.h"
#include "legal/four_fifths.h"
#include "legal/proportionality.h"
#include "ml/logistic_regression.h"
#include "simulation/scenarios.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace legal = fairlaw::legal;
namespace metrics = fairlaw::metrics;
namespace ml = fairlaw::ml;
namespace sim = fairlaw::sim;

metrics::MetricInput ModelOutcomes(double label_bias, Rng* rng) {
  sim::HiringOptions options;
  options.n = 8000;
  options.label_bias = label_bias;
  options.proxy_strength = 1.0;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, rng).ValueOrDie();
  ml::Dataset dataset = ml::DatasetFromTable(scenario.table,
                                             scenario.feature_columns,
                                             scenario.label_column)
                            .ValueOrDie();
  ml::LogisticRegression model;
  (void)model.Fit(dataset);
  metrics::MetricInput input;
  const auto* gender_col = scenario.table.GetColumn("gender").ValueOrDie();
  input.predictions = model.PredictBatch(dataset.features).ValueOrDie();
  for (size_t i = 0; i < scenario.table.num_rows(); ++i) {
    input.groups.push_back(gender_col->GetString(i).ValueOrDie());
  }
  return input;
}

void Part1FourFifths() {
  std::printf("--- part 1: four-fifths screen & burden shifting across "
              "the bias grid ---\n");
  std::printf("%-6s %-10s %-10s %-14s %-26s\n", "bias", "ratio",
              "passed", "significant", "burden-shifting stage");
  for (double bias : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    Rng rng(17);
    metrics::MetricInput outcomes = ModelOutcomes(bias, &rng);
    legal::FourFifthsResult screen =
        legal::FourFifthsTest(outcomes).ValueOrDie();
    legal::BurdenShiftingFacts facts;
    facts.business_necessity_shown = true;
    facts.necessity_justification = "validated job-related scoring";
    facts.less_discriminatory_alternative_exists = bias >= 1.5;
    facts.alternative = "repaired-feature model with equal validity";
    legal::BurdenShiftingResult burden =
        legal::RunBurdenShifting(outcomes, facts).ValueOrDie();
    std::printf("%-6.2f %-10.4f %-10s %-14s %-26s\n", bias,
                screen.groups.size() > 1
                    ? (screen.groups[0].group == screen.reference_group
                           ? screen.groups[1].impact_ratio
                           : screen.groups[0].impact_ratio)
                    : 1.0,
                screen.passed ? "yes" : "NO",
                screen.adverse_impact_indicated ? "yes" : "no",
                std::string(legal::BurdenStageToString(burden.stage))
                    .c_str());
  }
}

void Part2Proportionality() {
  std::printf("\n--- part 2: EU proportionality test on a quota measure "
              "---\n");
  legal::ProportionalityCase facts;
  facts.measure = "40% minimum interview share for female applicants";
  facts.has_legitimate_aim = true;
  facts.aim = "redress documented historical under-hiring of women";
  facts.suitable = true;
  facts.necessary = true;
  facts.measured_disparity = 0.08;   // displacement effect on men
  facts.proportionate_disparity = 0.15;
  legal::ProportionalityVerdict verdict =
      legal::AssessProportionality(facts).ValueOrDie();
  std::printf("measure: %s\nverdict: %s (%s)\n%s\n", facts.measure.c_str(),
              verdict.justified ? "JUSTIFIED" : "NOT JUSTIFIED",
              std::string(legal::ProportionalityStageToString(verdict.stage))
                  .c_str(),
              verdict.reasoning.c_str());
}

void Part3Checklist() {
  std::printf("\n--- part 3: SS IV criteria checklist for three profiles "
              "---\n");
  {
    legal::UseCaseProfile profile;
    profile.use_case = "EU hiring with recognized structural bias";
    profile.jurisdiction = legal::Jurisdiction::kEu;
    profile.structural_bias_recognized = true;
    profile.positive_action_mandated = true;
    profile.proxies_suspected = true;
    profile.causal_model_available = true;
    std::printf("\n[%s]\n%s", profile.use_case.c_str(),
                legal::EvaluateChecklist(profile).ValueOrDie()
                    .Render()
                    .c_str());
  }
  {
    legal::UseCaseProfile profile;
    profile.use_case = "US credit scoring with reliable repayment labels";
    profile.jurisdiction = legal::Jurisdiction::kUs;
    profile.labels_reliable = true;
    profile.feedback_risk = true;
    std::printf("\n[%s]\n%s", profile.use_case.c_str(),
                legal::EvaluateChecklist(profile).ValueOrDie()
                    .Render()
                    .c_str());
  }
  {
    legal::UseCaseProfile profile;
    profile.use_case = "small-sample intersectional promotion audit";
    profile.jurisdiction = legal::Jurisdiction::kEu;
    profile.multiple_sensitive_attributes = true;
    profile.adversarial_risk = true;
    profile.sample_size = 400;
    profile.smallest_group_size = 14;
    std::printf("\n[%s]\n%s", profile.use_case.c_str(),
                legal::EvaluateChecklist(profile).ValueOrDie()
                    .Render()
                    .c_str());
  }
}

}  // namespace

int main() {
  std::printf("=== E10: legal doctrine mapping (SS II, SS IV) ===\n");
  Part1FourFifths();
  Part2Proportionality();
  Part3Checklist();
  std::printf("\nExpected shape: the four-fifths screen flips from pass "
              "to fail as the injected bias grows, and the burden-shifting "
              "stage walks from 'no prima facie case' through the "
              "necessity defense to liability.\n");
  return 0;
}
