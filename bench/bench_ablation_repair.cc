// Ablation A1 — design choices inside the group-blind repair (E8):
//   (a) calibration of the posterior-expected deficit on vs off (the
//       shrinkage correction DESIGN.md documents), and
//   (b) quality of the reference research sample (its size), which
//       drives both the posterior densities and the calibration factor.
// The ablation shows the calibration factor is what closes the group-
// mean gap, and that a few hundred reference rows per group suffice —
// the paper's "small research data sets" ([13]) premise.
#include <cmath>
#include <cstdio>

#include "mitigation/group_blind_repair.h"
#include "stats/rng.h"

namespace {

using fairlaw::mitigation::GroupBlindRepair;
using fairlaw::stats::Rng;

constexpr double kShift = 1.5;

struct Pool {
  std::vector<double> scores;
  std::vector<uint8_t> is_minority;
};

Pool MakePool(size_t n, Rng* rng) {
  Pool pool;
  pool.scores.resize(n);
  pool.is_minority.resize(n);
  for (size_t i = 0; i < n; ++i) {
    pool.is_minority[i] = rng->Bernoulli(0.3);
    pool.scores[i] = pool.is_minority[i] ? rng->Normal(-kShift, 1.0)
                                         : rng->Normal(0.0, 1.0);
  }
  return pool;
}

double MeanGap(const Pool& pool, const std::vector<double>& scores) {
  double sum[2] = {0.0, 0.0};
  double cnt[2] = {0.0, 0.0};
  for (size_t i = 0; i < scores.size(); ++i) {
    int g = pool.is_minority[i] ? 1 : 0;
    sum[g] += scores[i];
    cnt[g] += 1.0;
  }
  return std::fabs(sum[0] / cnt[0] - sum[1] / cnt[1]);
}

GroupBlindRepair FitWithReference(size_t reference_n, Rng* rng) {
  std::vector<double> ref_majority(reference_n);
  std::vector<double> ref_minority(reference_n);
  for (double& v : ref_majority) v = rng->Normal(0.0, 1.0);
  for (double& v : ref_minority) v = rng->Normal(-kShift, 1.0);
  return GroupBlindRepair::Fit({ref_majority, ref_minority}, {0.7, 0.3})
      .ValueOrDie();
}

}  // namespace

int main() {
  std::printf("=== ablation A1: group-blind repair design choices ===\n");
  Rng rng(77);
  Pool pool = MakePool(20000, &rng);
  double raw_gap = MeanGap(pool, pool.scores);
  std::printf("unrepaired group mean gap: %.4f\n\n", raw_gap);

  std::printf("--- (a) calibration on vs off (reference n=500/group) ---\n");
  GroupBlindRepair repair = FitWithReference(500, &rng);
  std::vector<double> calibrated =
      repair.Apply(pool.scores, 1.0).ValueOrDie();
  // "Calibration off" = scale the applied correction back down by the
  // calibration factor, i.e. run at strength 1/k.
  std::vector<double> uncalibrated =
      repair.Apply(pool.scores, 1.0 / repair.calibration()).ValueOrDie();
  std::printf("calibration factor: %.3f\n", repair.calibration());
  std::printf("%-22s mean_gap=%.4f (%.0f%% repaired)\n", "raw posterior",
              MeanGap(pool, uncalibrated),
              100.0 * (1.0 - MeanGap(pool, uncalibrated) / raw_gap));
  std::printf("%-22s mean_gap=%.4f (%.0f%% repaired)\n", "calibrated",
              MeanGap(pool, calibrated),
              100.0 * (1.0 - MeanGap(pool, calibrated) / raw_gap));

  std::printf("\n--- (b) reference sample size per group ---\n");
  std::printf("%-10s %-12s %-12s\n", "ref_n", "calibration", "mean_gap");
  for (size_t reference_n : {10, 50, 200, 1000, 5000}) {
    GroupBlindRepair fitted = FitWithReference(reference_n, &rng);
    std::vector<double> repaired =
        fitted.Apply(pool.scores, 1.0).ValueOrDie();
    std::printf("%-10zu %-12.3f %-12.4f\n", reference_n,
                fitted.calibration(), MeanGap(pool, repaired));
  }
  std::printf("\nExpected shape: without calibration only ~40%% of the "
              "gap closes (posterior shrinkage); with it ~100%%. The "
              "repair quality saturates by a few hundred reference rows "
              "per group — the 'small research data set' premise of "
              "[13].\n");
  return 0;
}
