// Microbenchmarks for the bias-detection distance hot paths (§IV-F's
// runtime-complexity point): W1 and KS are sort-bound (n log n), the
// binned distances are linear, MMD is quadratic.
#include <benchmark/benchmark.h>

#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/ot.h"
#include "stats/mmd.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Histogram;
using fairlaw::stats::Rng;

std::vector<double> Draw(size_t n, double mean, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& v : sample) v = rng.Normal(mean, 1.0);
  return sample;
}

void BM_Wasserstein1(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 1);
  std::vector<double> y = Draw(n, 1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Samples(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Wasserstein1)->Range(256, 1 << 16)->Complexity();

void BM_KolmogorovSmirnov(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 3);
  std::vector<double> y = Draw(n, 1.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::KolmogorovSmirnov(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_KolmogorovSmirnov)->Range(256, 1 << 16)->Complexity();

void BM_BinnedTotalVariation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 5);
  std::vector<double> y = Draw(n, 1.0, 6);
  for (auto _ : state) {
    Histogram hx = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    benchmark::DoNotOptimize(
        fairlaw::stats::TotalVariation(hx.Probabilities(),
                                       hy.Probabilities())
            .ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BinnedTotalVariation)->Range(256, 1 << 16)->Complexity();

void BM_MmdBiased(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 7);
  std::vector<double> y = Draw(n, 1.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::MmdSquaredBiased1d(x, y, 1.0).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MmdBiased)->Range(256, 2048)->Complexity();

void BM_ExactTransport(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));  // support size
  Rng rng(9);
  std::vector<double> p(k);
  std::vector<double> q(k);
  double sp = 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < k; ++i) {
    p[i] = rng.Exponential(1.0);
    q[i] = rng.Exponential(1.0);
    sp += p[i];
    sq += q[i];
  }
  for (size_t i = 0; i < k; ++i) {
    p[i] /= sp;
    q[i] /= sq;
  }
  std::vector<std::vector<double>> cost(k, std::vector<double>(k));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      cost[i][j] = std::abs(static_cast<double>(i) -
                            static_cast<double>(j));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::ExactTransport(p, q, cost).ValueOrDie());
  }
}
BENCHMARK(BM_ExactTransport)->RangeMultiplier(2)->Range(8, 64);

}  // namespace

BENCHMARK_MAIN();
