// Microbenchmarks for the bias-detection distance hot paths (§IV-F's
// runtime-complexity point): W1 and KS are sort-bound (n log n), the
// binned distances are linear, MMD is quadratic.
//
// Two modes, like bench_micro_subgroup:
//   * with any --benchmark_* flag: the usual google-benchmark suite.
//   * otherwise: a fixed-size timing sweep over the distance kernels that
//     writes a machine-readable JSON record (default BENCH_distances.json;
//     see README "Benchmark JSON output"). Flags: --out=PATH --n=N
//     --reps=N --obs-json=PATH.
//
// The sweep doubles as the estimator-tier verification harness: it
// asserts that the linear-time RFF MMD estimate lands within
// kRffTolerance of the exact quadratic estimator (exit 1 otherwise), and
// it reports the SIMD-vs-scalar popcount speedup alongside the active
// backend so the regression gate can tell a slow kernel from a scalar
// build.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>

#include "base/simd.h"
#include "base/string_util.h"
#include "core/json.h"
#include "data/bitmap.h"
#include "obs/obs.h"
#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/ot.h"
#include "stats/mmd.h"
#include "stats/rng.h"

namespace {

using fairlaw::data::Bitmap;
using fairlaw::stats::Histogram;
using fairlaw::stats::Rng;

std::vector<double> Draw(size_t n, double mean, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& v : sample) v = rng.Normal(mean, 1.0);
  return sample;
}

void BM_Wasserstein1(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 1);
  std::vector<double> y = Draw(n, 1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Samples(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Wasserstein1)->Range(256, 1 << 16)->Complexity();

void BM_KolmogorovSmirnov(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 3);
  std::vector<double> y = Draw(n, 1.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::KolmogorovSmirnov(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_KolmogorovSmirnov)->Range(256, 1 << 16)->Complexity();

void BM_BinnedTotalVariation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 5);
  std::vector<double> y = Draw(n, 1.0, 6);
  for (auto _ : state) {
    Histogram hx = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    benchmark::DoNotOptimize(
        fairlaw::stats::TotalVariation(hx.Probabilities(),
                                       hy.Probabilities())
            .ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BinnedTotalVariation)->Range(256, 1 << 16)->Complexity();

void BM_MmdBiased(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 7);
  std::vector<double> y = Draw(n, 1.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::MmdSquaredBiased1d(x, y, 1.0).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MmdBiased)->Range(256, 2048)->Complexity();

void BM_MmdRff(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 7);
  std::vector<double> y = Draw(n, 1.0, 8);
  fairlaw::stats::MmdRffOptions options;
  options.num_features = static_cast<size_t>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::MmdSquaredRff1d(x, y, 1.0, options).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MmdRff)
    ->ArgsProduct({{256, 2048, 1 << 14}, {64, 256, 1024}})
    ->Complexity();

void BM_Wasserstein1Presorted(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 1);
  std::vector<double> y = Draw(n, 1.0, 2);
  std::sort(x.begin(), x.end());
  std::sort(y.begin(), y.end());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Presorted(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Wasserstein1Presorted)->Range(256, 1 << 16)->Complexity();

void BM_BitmapAndCount(benchmark::State& state) {
  size_t bits = static_cast<size_t>(state.range(0));
  Rng rng(11);
  Bitmap a(bits);
  Bitmap b(bits);
  for (size_t i = 0; i < bits; ++i) {
    if ((rng.Next() & 1) != 0) a.Set(i);
    if ((rng.Next() & 1) != 0) b.Set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(Bitmap::AndCount(a, b));
  }
  state.SetComplexityN(static_cast<int64_t>(bits));
}
BENCHMARK(BM_BitmapAndCount)->Range(1 << 10, 1 << 20)->Complexity();

void BM_ExactTransport(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));  // support size
  Rng rng(9);
  std::vector<double> p(k);
  std::vector<double> q(k);
  double sp = 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < k; ++i) {
    p[i] = rng.Exponential(1.0);
    q[i] = rng.Exponential(1.0);
    sp += p[i];
    sq += q[i];
  }
  for (size_t i = 0; i < k; ++i) {
    p[i] /= sp;
    q[i] /= sq;
  }
  std::vector<std::vector<double>> cost(k, std::vector<double>(k));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      cost[i][j] = std::abs(static_cast<double>(i) -
                            static_cast<double>(j));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::ExactTransport(p, q, cost).ValueOrDie());
  }
}
BENCHMARK(BM_ExactTransport)->RangeMultiplier(2)->Range(8, 64);

// ---------------------------------------------------------------------------
// JSON timing harness (default mode).

int64_t BestOfNs(size_t reps, const std::function<void()>& fn) {
  int64_t best = 0;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t start = fairlaw::obs::MonotonicNowNs();
    fn();
    const int64_t ns =
        static_cast<int64_t>(fairlaw::obs::MonotonicNowNs() - start);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

// Agreement bound between the RFF estimate at D = 256 and the exact
// biased estimator on the N(0,1)-vs-N(1,1) sweep inputs. The RFF error
// decays as O(1/sqrt(D)); at D = 256 the observed |rff - exact| on these
// inputs sits well under 0.05 for every seed, so the bound is a
// regression tripwire (a broken feature map misses by orders of
// magnitude), not a statistical assertion.
constexpr double kRffTolerance = 0.05;

int RunTimings(const std::string& out_path, const std::string& obs_path,
               size_t n, size_t reps) {
  const std::vector<double> x = Draw(n, 0.0, 1);
  const std::vector<double> y = Draw(n, 1.0, 2);
  // MMD is quadratic; cap its input so the sweep stays fast.
  const size_t mmd_n = std::min<size_t>(n, 2048);
  const std::vector<double> xm = Draw(mmd_n, 0.0, 7);
  const std::vector<double> ym = Draw(mmd_n, 1.0, 8);

  std::vector<double> x_sorted = x;
  std::vector<double> y_sorted = y;
  std::sort(x_sorted.begin(), x_sorted.end());
  std::sort(y_sorted.begin(), y_sorted.end());

  // Popcount duel inputs: two half-full megabit bitmaps. The scalar side
  // calls the reference word kernel directly, so the ratio isolates the
  // vector backend (it is ~1.0 when the build is scalar).
  constexpr size_t kPopcountBits = 1 << 20;
  Rng bit_rng(11);
  Bitmap bm_a(kPopcountBits);
  Bitmap bm_b(kPopcountBits);
  for (size_t i = 0; i < kPopcountBits; ++i) {
    if ((bit_rng.Next() & 1) != 0) bm_a.Set(i);
    if ((bit_rng.Next() & 1) != 0) bm_b.Set(i);
  }
  constexpr size_t kPopcountIters = 64;

  fairlaw::JsonWriter writer;
  writer.BeginObject();
  writer.Field("bench", std::string("distance_kernels"));
  writer.Field("n", static_cast<int64_t>(n));
  writer.Field("mmd_n", static_cast<int64_t>(mmd_n));
  writer.Field("reps", static_cast<int64_t>(reps));
  writer.Key("timings_ns");
  writer.BeginObject();
  writer.Field("wasserstein1", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Samples(x, y).ValueOrDie());
  }));
  writer.Field("kolmogorov_smirnov", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::KolmogorovSmirnov(x, y).ValueOrDie());
  }));
  writer.Field("binned_total_variation", BestOfNs(reps, [&] {
    Histogram hx = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    benchmark::DoNotOptimize(
        fairlaw::stats::TotalVariation(hx.Probabilities(),
                                       hy.Probabilities())
            .ValueOrDie());
  }));
  writer.Field("wasserstein1_presorted", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Presorted(x_sorted, y_sorted)
            .ValueOrDie());
  }));
  writer.Field("kolmogorov_smirnov_presorted", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::KolmogorovSmirnovPresorted(x_sorted, y_sorted)
            .ValueOrDie());
  }));
  {
    // The binned kernel serves monitoring paths that already maintain
    // histograms, so only the distance itself is timed. A single call is
    // sub-microsecond — too close to timer resolution for the 20% ratio
    // gate — so the field records the per-call average over an inner
    // batch.
    Histogram hx = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    constexpr int64_t kBinnedIters = 512;
    const int64_t batch_ns = BestOfNs(reps, [&] {
      double total = 0.0;
      for (int64_t it = 0; it < kBinnedIters; ++it) {
        total += fairlaw::stats::Wasserstein1Binned(hx, hy).ValueOrDie();
      }
      benchmark::DoNotOptimize(total);
    });
    writer.Field("wasserstein1_binned", batch_ns / kBinnedIters);
  }
  const int64_t mmd_biased_ns = BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::MmdSquaredBiased1d(xm, ym, 1.0).ValueOrDie());
  });
  writer.Field("mmd_biased", mmd_biased_ns);
  int64_t mmd_rff_d256_ns = 0;
  for (const size_t d : {size_t{64}, size_t{256}, size_t{1024}}) {
    fairlaw::stats::MmdRffOptions options;
    options.num_features = d;
    const int64_t ns = BestOfNs(reps, [&] {
      benchmark::DoNotOptimize(
          fairlaw::stats::MmdSquaredRff1d(xm, ym, 1.0, options)
              .ValueOrDie());
    });
    if (d == 256) mmd_rff_d256_ns = ns;
    writer.Field("mmd_rff_d" + std::to_string(d), ns);
  }
  writer.EndObject();

  // SIMD-vs-scalar popcount duel: same words, same reduction, only the
  // backend differs. Reported outside timings_ns so the regression gate
  // ratio-checks product timings only and applies the speedup floor here.
  const int64_t simd_popcount_ns = BestOfNs(reps, [&] {
    uint64_t total = 0;
    for (size_t it = 0; it < kPopcountIters; ++it) {
      total += Bitmap::AndCount(bm_a, bm_b);
    }
    benchmark::DoNotOptimize(total);
  });
  const int64_t scalar_popcount_ns = BestOfNs(reps, [&] {
    uint64_t total = 0;
    for (size_t it = 0; it < kPopcountIters; ++it) {
      total += fairlaw::simd::scalar::AndPopcountWords(
          bm_a.words().data(), bm_b.words().data(), bm_a.num_words());
    }
    benchmark::DoNotOptimize(total);
  });
  writer.Key("popcount_timings_ns");
  writer.BeginObject();
  writer.Field("bitmap_and_count_simd", simd_popcount_ns);
  writer.Field("bitmap_and_count_scalar", scalar_popcount_ns);
  writer.EndObject();

  // Estimator-tier verification: the linear-time estimate must agree
  // with the exact quadratic oracle.
  fairlaw::stats::MmdRffOptions verify_options;
  verify_options.num_features = 256;
  const double exact =
      fairlaw::stats::MmdSquaredBiased1d(xm, ym, 1.0).ValueOrDie();
  const double rff =
      fairlaw::stats::MmdSquaredRff1d(xm, ym, 1.0, verify_options)
          .ValueOrDie();
  const double abs_err = std::abs(rff - exact);
  const bool within_tolerance = abs_err <= kRffTolerance;

  writer.Field("simd_backend", std::string(fairlaw::simd::kBackendName));
  writer.Field("rff_vs_exact_abs_err", abs_err);
  writer.Field("rff_tolerance", kRffTolerance);
  writer.Field("rff_within_tolerance", within_tolerance);
  writer.Field("mmd_rff_speedup_d256",
               mmd_rff_d256_ns > 0
                   ? static_cast<double>(mmd_biased_ns) /
                         static_cast<double>(mmd_rff_d256_ns)
                   : 0.0);
  writer.Field("simd_popcount_speedup",
               simd_popcount_ns > 0
                   ? static_cast<double>(scalar_popcount_ns) /
                         static_cast<double>(simd_popcount_ns)
                   : 0.0);
  writer.EndObject();
  const std::string json = writer.Finish().ValueOrDie();

  std::ofstream out(out_path, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "bench_micro_distances: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%s\n", json.c_str());

  if (!obs_path.empty()) {
    const std::string dump = fairlaw::obs::ExportJson({});
    std::ofstream obs_out(obs_path, std::ios::trunc);
    obs_out << dump << "\n";
    if (!obs_out) {
      std::fprintf(stderr, "bench_micro_distances: cannot write %s\n",
                   obs_path.c_str());
      return 1;
    }
  }

  if (!within_tolerance) {
    std::fprintf(stderr,
                 "bench_micro_distances: RFF estimate %.6f deviates from "
                 "exact %.6f by %.6f (> tolerance %.2f)\n",
                 rff, exact, abs_err, kRffTolerance);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench_mode = false;
  std::string out_path = "BENCH_distances.json";
  std::string obs_path;
  size_t n = 1 << 16;
  size_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) {
      gbench_mode = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--obs-json=", 0) == 0) {
      obs_path = std::string(arg.substr(11));
    } else if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(fairlaw::ParseInt64(arg.substr(4))
                                  .ValueOrDie());
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(fairlaw::ParseInt64(arg.substr(7))
                                     .ValueOrDie());
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_distances [--benchmark_* flags] "
                   "[--out=PATH] [--obs-json=PATH] [--n=N] [--reps=N]\n");
      return 2;
    }
  }
  if (gbench_mode) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return RunTimings(out_path, obs_path, n, reps);
}
