// Microbenchmarks for the bias-detection distance hot paths (§IV-F's
// runtime-complexity point): W1 and KS are sort-bound (n log n), the
// binned distances are linear, MMD is quadratic.
//
// Two modes, like bench_micro_subgroup:
//   * with any --benchmark_* flag: the usual google-benchmark suite.
//   * otherwise: a fixed-size timing sweep over the distance kernels that
//     writes a machine-readable JSON record (default BENCH_distances.json;
//     see README "Benchmark JSON output"). Flags: --out=PATH --n=N
//     --reps=N.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string_view>

#include "base/string_util.h"
#include "core/json.h"
#include "obs/obs.h"
#include "stats/distance.h"
#include "stats/histogram.h"
#include "stats/ot.h"
#include "stats/mmd.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Histogram;
using fairlaw::stats::Rng;

std::vector<double> Draw(size_t n, double mean, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> sample(n);
  for (double& v : sample) v = rng.Normal(mean, 1.0);
  return sample;
}

void BM_Wasserstein1(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 1);
  std::vector<double> y = Draw(n, 1.0, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Samples(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_Wasserstein1)->Range(256, 1 << 16)->Complexity();

void BM_KolmogorovSmirnov(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 3);
  std::vector<double> y = Draw(n, 1.0, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::KolmogorovSmirnov(x, y).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_KolmogorovSmirnov)->Range(256, 1 << 16)->Complexity();

void BM_BinnedTotalVariation(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 5);
  std::vector<double> y = Draw(n, 1.0, 6);
  for (auto _ : state) {
    Histogram hx = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    benchmark::DoNotOptimize(
        fairlaw::stats::TotalVariation(hx.Probabilities(),
                                       hy.Probabilities())
            .ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_BinnedTotalVariation)->Range(256, 1 << 16)->Complexity();

void BM_MmdBiased(benchmark::State& state) {
  size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> x = Draw(n, 0.0, 7);
  std::vector<double> y = Draw(n, 1.0, 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::MmdSquaredBiased1d(x, y, 1.0).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(n));
}
BENCHMARK(BM_MmdBiased)->Range(256, 2048)->Complexity();

void BM_ExactTransport(benchmark::State& state) {
  size_t k = static_cast<size_t>(state.range(0));  // support size
  Rng rng(9);
  std::vector<double> p(k);
  std::vector<double> q(k);
  double sp = 0.0;
  double sq = 0.0;
  for (size_t i = 0; i < k; ++i) {
    p[i] = rng.Exponential(1.0);
    q[i] = rng.Exponential(1.0);
    sp += p[i];
    sq += q[i];
  }
  for (size_t i = 0; i < k; ++i) {
    p[i] /= sp;
    q[i] /= sq;
  }
  std::vector<std::vector<double>> cost(k, std::vector<double>(k));
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      cost[i][j] = std::abs(static_cast<double>(i) -
                            static_cast<double>(j));
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fairlaw::stats::ExactTransport(p, q, cost).ValueOrDie());
  }
}
BENCHMARK(BM_ExactTransport)->RangeMultiplier(2)->Range(8, 64);

// ---------------------------------------------------------------------------
// JSON timing harness (default mode).

int64_t BestOfNs(size_t reps, const std::function<void()>& fn) {
  int64_t best = 0;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t start = fairlaw::obs::MonotonicNowNs();
    fn();
    const int64_t ns =
        static_cast<int64_t>(fairlaw::obs::MonotonicNowNs() - start);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

int RunTimings(const std::string& out_path, size_t n, size_t reps) {
  const std::vector<double> x = Draw(n, 0.0, 1);
  const std::vector<double> y = Draw(n, 1.0, 2);
  // MMD is quadratic; cap its input so the sweep stays fast.
  const size_t mmd_n = std::min<size_t>(n, 2048);
  const std::vector<double> xm = Draw(mmd_n, 0.0, 7);
  const std::vector<double> ym = Draw(mmd_n, 1.0, 8);

  fairlaw::JsonWriter writer;
  writer.BeginObject();
  writer.Field("bench", std::string("distance_kernels"));
  writer.Field("n", static_cast<int64_t>(n));
  writer.Field("mmd_n", static_cast<int64_t>(mmd_n));
  writer.Field("reps", static_cast<int64_t>(reps));
  writer.Key("timings_ns");
  writer.BeginObject();
  writer.Field("wasserstein1", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::Wasserstein1Samples(x, y).ValueOrDie());
  }));
  writer.Field("kolmogorov_smirnov", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::KolmogorovSmirnov(x, y).ValueOrDie());
  }));
  writer.Field("binned_total_variation", BestOfNs(reps, [&] {
    Histogram hx = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-5.0, 6.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    benchmark::DoNotOptimize(
        fairlaw::stats::TotalVariation(hx.Probabilities(),
                                       hy.Probabilities())
            .ValueOrDie());
  }));
  writer.Field("mmd_biased", BestOfNs(reps, [&] {
    benchmark::DoNotOptimize(
        fairlaw::stats::MmdSquaredBiased1d(xm, ym, 1.0).ValueOrDie());
  }));
  writer.EndObject();
  writer.EndObject();
  const std::string json = writer.Finish().ValueOrDie();

  std::ofstream out(out_path, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "bench_micro_distances: cannot write %s\n",
                 out_path.c_str());
    return 1;
  }
  std::printf("%s\n", json.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench_mode = false;
  std::string out_path = "BENCH_distances.json";
  size_t n = 1 << 16;
  size_t reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) {
      gbench_mode = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out_path = std::string(arg.substr(6));
    } else if (arg.rfind("--n=", 0) == 0) {
      n = static_cast<size_t>(fairlaw::ParseInt64(arg.substr(4))
                                  .ValueOrDie());
    } else if (arg.rfind("--reps=", 0) == 0) {
      reps = static_cast<size_t>(fairlaw::ParseInt64(arg.substr(7))
                                     .ValueOrDie());
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_distances [--benchmark_* flags] "
                   "[--out=PATH] [--n=N] [--reps=N]\n");
      return 2;
    }
  }
  if (gbench_mode) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return RunTimings(out_path, n, reps);
}
