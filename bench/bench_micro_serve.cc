// Microbenchmarks for the fairlaw_serve daemon: ingest throughput into
// the window ring, query latency over the merged window, and the
// serving contracts (DESIGN.md §15).
//
// Two modes:
//   * with any --benchmark_* flag: the usual google-benchmark suite
//     (ingest cost vs batch size).
//   * otherwise: a JSON harness that (1) measures ingest events/sec and
//     best-of-reps audit/quantiles query latency; (2) replays the same
//     event sequence at two batch sizes and two thread counts and
//     verifies the query responses are byte-identical; and (3) checks
//     the window's per-group KLL sketches against the exact in-window
//     score arrays — quantile rank error plus sketch-vs-exact KS/W1
//     distance error within fixed bounds. Writes BENCH_serve.json
//     (gated by tools/check_bench_regression.py). Flags: --out=PATH
//     --events=N --reps=N --threads=N --obs-json=PATH.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "base/json_writer.h"
#include "base/string_util.h"
#include "obs/obs.h"
#include "serve/api.h"
#include "serve/service.h"
#include "serve/window.h"
#include "stats/distance.h"
#include "stats/kll.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Rng;
namespace serve = fairlaw::serve;
namespace stats = fairlaw::stats;

// Deliberately different prediction rates and score ranges per group so
// the audit queries have real findings and the two sketches compared by
// the drift leg are genuinely apart.
constexpr const char* kGroups[] = {"alpha", "beta", "gamma"};
constexpr double kPredRate[] = {0.50, 0.35, 0.44};

struct EventRecord {
  int64_t t = 0;
  size_t group = 0;
  double score = 0.0;
};

/// Builds the ingest request lines for a fixed synthetic event sequence.
/// The sequence is a pure function of (n, seed); `batch` only groups
/// consecutive events onto ingest lines — exactly the degree of freedom
/// the identity legs exercise. Scores are six-digit decimal text so
/// every replay parses bit-identical doubles.
std::vector<std::string> BuildIngestLines(size_t n, size_t batch,
                                          std::vector<EventRecord>* records) {
  Rng rng(29);
  std::vector<std::string> lines;
  std::string current;
  size_t in_batch = 0;
  auto flush = [&]() {
    if (in_batch == 0) return;
    lines.push_back("{\"op\":\"ingest\",\"events\":[" + current + "]}");
    current.clear();
    in_batch = 0;
  };
  for (size_t i = 0; i < n; ++i) {
    const size_t g = static_cast<size_t>(rng.UniformInt(3));
    const int pred = rng.Bernoulli(kPredRate[g]) ? 1 : 0;
    const int label = rng.Bernoulli(0.42) ? 1 : 0;
    const uint64_t mil = rng.UniformInt(1000000);
    std::string mil_text = std::to_string(mil);
    mil_text.insert(0, 6 - mil_text.size(), '0');
    if (records != nullptr) {
      records->push_back({static_cast<int64_t>(i), g,
                          static_cast<double>(mil) / 1e6});
    }
    if (in_batch > 0) current += ",";
    current += "{\"t\":" + std::to_string(i) + ",\"group\":\"" + kGroups[g] +
               "\",\"pred\":" + std::to_string(pred) +
               ",\"label\":" + std::to_string(label) + ",\"score\":0." +
               mil_text + "}";
    ++in_batch;
    if (in_batch == batch) flush();
  }
  flush();
  return lines;
}

const std::vector<std::string>& QuerySuite() {
  static const std::vector<std::string> kSuite = {
      R"({"op":"query","type":"audit"})",
      R"({"op":"query","type":"four_fifths"})",
      R"({"op":"query","type":"drift"})",
      R"({"op":"query","type":"quantiles","group":"alpha",)"
      R"("q":[0.25,0.5,0.75]})",
  };
  return kSuite;
}

serve::ServeConfig MakeConfig(size_t num_threads) {
  serve::ServeConfig config;
  config.bucket_width = 1000;
  config.num_buckets = 256;
  config.num_threads = num_threads;
  return config;
}

/// Replays the lines through a fresh daemon (obs reset first — the
/// schedule-invariant counters embedded in query responses count from
/// daemon start) and returns the query-suite responses.
std::vector<std::string> ReplayAndQuery(const serve::ServeConfig& config,
                                        const std::vector<std::string>& lines) {
  fairlaw::obs::ResetAll();
  serve::Service service(config);
  for (const std::string& line : lines) {
    benchmark::DoNotOptimize(service.HandleLine(line));
  }
  std::vector<std::string> responses;
  for (const std::string& query : QuerySuite()) {
    responses.push_back(service.HandleLine(query));
  }
  return responses;
}

int64_t BestOfNs(size_t reps, const std::function<void()>& fn) {
  int64_t best = 0;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t start = fairlaw::obs::MonotonicNowNs();
    fn();
    const int64_t ns =
        static_cast<int64_t>(fairlaw::obs::MonotonicNowNs() - start);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

// ---------------------------------------------------------------------------
// google-benchmark suite.

void BM_ServeIngestBatch(benchmark::State& state) {
  const std::vector<std::string> lines = BuildIngestLines(
      20000, static_cast<size_t>(state.range(0)), nullptr);
  const serve::ServeConfig config = MakeConfig(1);
  for (auto _ : state) {
    serve::Service service(config);
    for (const std::string& line : lines) {
      benchmark::DoNotOptimize(service.HandleLine(line));
    }
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 20000);
}
BENCHMARK(BM_ServeIngestBatch)->Arg(16)->Arg(256)->Arg(4096);

// ---------------------------------------------------------------------------
// JSON harness (default mode).

struct HarnessConfig {
  std::string out = "BENCH_serve.json";
  std::string obs_json;
  size_t events = 200000;
  size_t reps = 3;
  size_t threads = 4;
};

/// Bound on the sketch quantile rank error against the exact in-window
/// CDF, and on the sketch-vs-exact KS/W1 distance error. k=200 targets
/// ~1% rank error per sketch; both bounds carry a 2-3x margin.
constexpr double kQuantileRankErrBound = 0.025;
constexpr double kDistanceErrBound = 0.03;

int RunHarness(const HarnessConfig& config) {
  std::vector<EventRecord> records;
  const std::vector<std::string> lines =
      BuildIngestLines(config.events, 256, &records);

  // Ingest throughput: best-of-reps full replay into a fresh daemon.
  const serve::ServeConfig serial_config = MakeConfig(1);
  const int64_t ingest_ns = BestOfNs(config.reps, [&] {
    fairlaw::obs::ResetAll();
    serve::Service service(serial_config);
    for (const std::string& line : lines) {
      benchmark::DoNotOptimize(service.HandleLine(line));
    }
  });
  const double events_per_sec = static_cast<double>(config.events) /
                                (static_cast<double>(ingest_ns) / 1e9);

  // Query latency over a fully-populated window.
  fairlaw::obs::ResetAll();
  serve::Service service(serial_config);
  for (const std::string& line : lines) {
    benchmark::DoNotOptimize(service.HandleLine(line));
  }
  const int64_t query_audit_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        service.HandleLine(R"({"op":"query","type":"audit"})"));
  });
  const int64_t query_quantiles_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(service.HandleLine(
        R"({"op":"query","type":"quantiles","group":"alpha",)"
        R"("q":[0.25,0.5,0.75]})"));
  });
  // Within-run cost ratios — the machine-portable numbers the
  // regression gate compares. A query folds the whole window, so its
  // honest unit is "how many amortized ingests does one query cost".
  const double per_event_ingest_ns =
      static_cast<double>(ingest_ns) / static_cast<double>(config.events);
  const double audit_query_cost_ratio =
      static_cast<double>(query_audit_ns) / per_event_ingest_ns;
  const double quantiles_query_cost_ratio =
      static_cast<double>(query_quantiles_ns) / per_event_ingest_ns;

  // Sketch-vs-exact agreement on the live window (before the identity
  // replays disturb anything): per-group quantile rank error and
  // KS/W1 distance error against the exact in-window score arrays.
  const fairlaw::audit::WindowedPartial window =
      service.ring().Window(nullptr);
  const int64_t window_start = service.ring().window_start();
  const int64_t bucket_width = serial_config.bucket_width;
  std::vector<std::vector<double>> exact_scores(3);
  for (const EventRecord& record : records) {
    if (record.t / bucket_width >= window_start) {
      exact_scores[record.group].push_back(record.score);
    }
  }
  double quantile_rank_err = 0.0;
  double distance_err = 0.0;
  bool sketch_ok = true;
  for (size_t g = 0; g < 3; ++g) {
    std::vector<double> sorted = exact_scores[g];
    std::sort(sorted.begin(), sorted.end());
    const size_t slot = window.sketches.FindKey(kGroups[g]);
    if (slot >= window.sketches.num_keys() || sorted.empty()) {
      sketch_ok = false;
      continue;
    }
    const stats::KllSketch& sketch = window.sketches.sketch(slot);
    sketch_ok = sketch_ok && sketch.count() == sorted.size();
    for (double q : {0.25, 0.5, 0.75}) {
      const double value = sketch.Quantile(q).ValueOrDie();
      const auto below = static_cast<double>(
          std::upper_bound(sorted.begin(), sorted.end(), value) -
          sorted.begin());
      const double err =
          std::abs(below / static_cast<double>(sorted.size()) - q);
      quantile_rank_err = std::max(quantile_rank_err, err);
    }
  }
  if (sketch_ok) {
    const stats::KllSketch& sk_a =
        window.sketches.sketch(window.sketches.FindKey("alpha"));
    const stats::KllSketch& sk_b =
        window.sketches.sketch(window.sketches.FindKey("beta"));
    const double exact_ks =
        stats::KolmogorovSmirnov(exact_scores[0], exact_scores[1])
            .ValueOrDie();
    const double exact_w1 =
        stats::Wasserstein1Samples(exact_scores[0], exact_scores[1])
            .ValueOrDie();
    const double sketch_ks =
        stats::KolmogorovSmirnovSketch(sk_a, sk_b).ValueOrDie();
    const double sketch_w1 =
        stats::Wasserstein1Sketch(sk_a, sk_b).ValueOrDie();
    distance_err = std::max(std::abs(sketch_ks - exact_ks),
                            std::abs(sketch_w1 - exact_w1));
  }
  const bool sketch_within_tolerance =
      sketch_ok && quantile_rank_err <= kQuantileRankErrBound &&
      distance_err <= kDistanceErrBound;

  // Identity legs: same events, different batchings / thread counts.
  const std::vector<std::string> rebatched =
      BuildIngestLines(config.events, 977, nullptr);
  const std::vector<std::string> reference =
      ReplayAndQuery(serial_config, lines);
  const bool batch_identical =
      reference == ReplayAndQuery(serial_config, rebatched);
  const bool thread_identical =
      reference == ReplayAndQuery(MakeConfig(config.threads), rebatched);

  fairlaw::JsonWriter writer;
  writer.BeginObject();
  writer.Field("bench", std::string("serve_window"));
  writer.Field("events", static_cast<int64_t>(config.events));
  writer.Field("reps", static_cast<int64_t>(config.reps));
  writer.Field("threads", static_cast<int64_t>(config.threads));
  writer.Field("bucket_width", serial_config.bucket_width);
  writer.Field("num_buckets",
               static_cast<int64_t>(serial_config.num_buckets));
  writer.Field("ingest_ns", ingest_ns);
  writer.Field("events_per_sec", events_per_sec);
  writer.Field("query_audit_ns", query_audit_ns);
  writer.Field("query_quantiles_ns", query_quantiles_ns);
  writer.Field("audit_query_cost_ratio", audit_query_cost_ratio);
  writer.Field("quantiles_query_cost_ratio", quantiles_query_cost_ratio);
  writer.Field("quantile_rank_err", quantile_rank_err);
  writer.Field("distance_err", distance_err);
  writer.Field("sketch_within_tolerance", sketch_within_tolerance);
  writer.Field("batch_identical", batch_identical);
  writer.Field("thread_identical", thread_identical);
  writer.EndObject();
  const std::string json = writer.Finish().ValueOrDie();

  std::ofstream out(config.out, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "bench_micro_serve: cannot write %s\n",
                 config.out.c_str());
    return 1;
  }
  if (!config.obs_json.empty()) {
    std::ofstream obs_out(config.obs_json, std::ios::trunc);
    obs_out << fairlaw::obs::ExportJson() << "\n";
    if (!obs_out) {
      std::fprintf(stderr, "bench_micro_serve: cannot write %s\n",
                   config.obs_json.c_str());
      return 1;
    }
  }
  std::printf("%s\n", json.c_str());
  if (!batch_identical || !thread_identical) {
    std::fprintf(stderr,
                 "bench_micro_serve: query responses DIFFER across batch "
                 "sizes or thread counts — daemon determinism bug\n");
    return 1;
  }
  if (!sketch_within_tolerance) {
    std::fprintf(stderr,
                 "bench_micro_serve: window sketches disagree with the "
                 "exact in-window scores (rank err %.4f, distance err "
                 "%.4f)\n",
                 quantile_rank_err, distance_err);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench_mode = false;
  HarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) {
      gbench_mode = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = std::string(arg.substr(6));
    } else if (arg.rfind("--obs-json=", 0) == 0) {
      config.obs_json = std::string(arg.substr(11));
    } else if (arg.rfind("--events=", 0) == 0) {
      config.events = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(9)).ValueOrDie());
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(7)).ValueOrDie());
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(10)).ValueOrDie());
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_serve [--benchmark_* flags] "
                   "[--out=PATH] [--obs-json=PATH] [--events=N] [--reps=N] "
                   "[--threads=N]\n");
      return 2;
    }
  }
  if (gbench_mode) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return RunHarness(config);
}
