// Microbenchmarks for the morsel-driven audit engine: chunked in-memory
// throughput, out-of-core streaming, and the flat-peak-RSS contract
// (DESIGN.md §14).
//
// Two modes:
//   * with any --benchmark_* flag: the usual google-benchmark suite
//     (audit cost vs chunk size on an in-memory table).
//   * otherwise: a JSON harness that (1) streams generated CSVs of
//     --rows and --big-rows rows through RunAuditCsv and records the
//     peak-RSS growth between them — the count-metric path buffers
//     O(window * chunk) rows, so a 10x bigger file must not grow the
//     peak by more than a bounded slack; (2) measures streaming rows/sec
//     and the serial-vs-parallel wall ratio at --threads workers; and
//     (3) verifies the audit report is byte-identical across chunk
//     sizes, thread counts, and the in-memory vs streaming ingestion
//     paths. Writes BENCH_audit.json (see README "Benchmark JSON
//     output"). Flags: --out=PATH --rows=N --big-rows=N --reps=N
//     --threads=N --obs-json=PATH.
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "audit/auditor.h"
#include "base/string_util.h"
#include "core/json.h"
#include "data/csv.h"
#include "data/table.h"
#include "obs/obs.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace data = fairlaw::data;

// Groups are skewed so per-group tallies differ and a wrong merge order
// would show up in the report.
constexpr const char* kGroups[] = {"alpha", "beta", "gamma", "delta"};
constexpr double kGroupRates[] = {0.35, 0.55, 0.45, 0.65};

/// Streams a synthetic decisions CSV to disk (never holds it in memory):
/// group,pred,label plus, when `with_score`, stratum and score columns
/// for the order-sensitive audit paths.
bool WriteCsv(const std::string& path, size_t rows, bool with_score) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) return false;
  out << (with_score ? "group,stratum,pred,label,score\n"
                     : "group,pred,label\n");
  Rng rng(17);
  std::string line;
  for (size_t i = 0; i < rows; ++i) {
    const size_t g = static_cast<size_t>(rng.UniformInt(4));
    const int pred = rng.Bernoulli(kGroupRates[g]) ? 1 : 0;
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    line = kGroups[g];
    if (with_score) {
      line += ",s";
      line += std::to_string(rng.UniformInt(3));
    }
    line += ',';
    line += std::to_string(pred);
    line += ',';
    line += std::to_string(label);
    if (with_score) {
      line += ',';
      line += fairlaw::FormatDouble(rng.Uniform(), 6);
    }
    line += '\n';
    out << line;
  }
  return static_cast<bool>(out);
}

audit::AuditConfig CountConfig() {
  audit::AuditConfig config;
  config.protected_column = "group";
  config.prediction_column = "pred";
  config.label_column = "label";
  return config;
}

audit::AuditConfig FullConfig() {
  audit::AuditConfig config = CountConfig();
  config.score_column = "score";
  config.strata_columns = {"stratum"};
  config.audit_score_distribution = true;
  config.min_stratum_size = 10;
  return config;
}

/// Peak RSS of this process so far, in MB (ru_maxrss is KB on Linux).
double PeakRssMb() {
  struct rusage usage = {};
  getrusage(RUSAGE_SELF, &usage);
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

int64_t BestOfNs(size_t reps, const std::function<void()>& fn) {
  int64_t best = 0;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t start = fairlaw::obs::MonotonicNowNs();
    fn();
    const int64_t ns =
        static_cast<int64_t>(fairlaw::obs::MonotonicNowNs() - start);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

// ---------------------------------------------------------------------------
// google-benchmark suite.

data::Table LoadOrDie(const std::string& path) {
  return data::ReadCsvFile(path).ValueOrDie();
}

void BM_AuditChunkRows(benchmark::State& state) {
  const std::string path = "bench_audit_bm.csv";
  if (!WriteCsv(path, 100000, /*with_score=*/false)) {
    state.SkipWithError("cannot write temp CSV");
    return;
  }
  data::Table table = LoadOrDie(path);
  std::remove(path.c_str());
  audit::AuditConfig config = CountConfig();
  config.chunk_rows = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(audit::RunAudit(table, config).ValueOrDie());
  }
}
BENCHMARK(BM_AuditChunkRows)->Arg(0)->Arg(4096)->Arg(65536);

// ---------------------------------------------------------------------------
// JSON harness (default mode).

struct HarnessConfig {
  std::string out = "BENCH_audit.json";
  std::string obs_json;
  size_t rows = 1000000;
  size_t big_rows = 10000000;
  size_t reps = 3;
  size_t threads = 8;
};

/// Peak-RSS growth allowed between the --rows and --big-rows streaming
/// audits. The streaming window holds a bounded number of 64k-row chunks
/// regardless of file size, so the honest slack is allocator noise plus
/// OS page-cache accounting — not a function of the 10x row growth.
constexpr double kFlatMemorySlackMb = 200.0;

int RunHarness(const HarnessConfig& config) {
  const std::string small_csv = "bench_audit_small.csv";
  const std::string big_csv = "bench_audit_big.csv";
  const std::string full_csv = "bench_audit_full.csv";
  if (!WriteCsv(small_csv, config.rows, /*with_score=*/false) ||
      !WriteCsv(big_csv, config.big_rows, /*with_score=*/false) ||
      !WriteCsv(full_csv, std::min<size_t>(config.rows, 200000),
                /*with_score=*/true)) {
    std::fprintf(stderr, "bench_micro_audit: cannot write temp CSVs\n");
    return 1;
  }

  // Memory legs first, so nothing the identity legs allocate can mask
  // the streaming engine's own peak.
  const audit::AuditConfig count_config = CountConfig();
  const int64_t small_ns = BestOfNs(1, [&] {
    benchmark::DoNotOptimize(
        audit::RunAuditCsv(small_csv, count_config).ValueOrDie());
  });
  const double rss_after_small_mb = PeakRssMb();
  const int64_t big_ns = BestOfNs(1, [&] {
    benchmark::DoNotOptimize(
        audit::RunAuditCsv(big_csv, count_config).ValueOrDie());
  });
  const double rss_after_big_mb = PeakRssMb();
  const double rss_growth_mb = rss_after_big_mb - rss_after_small_mb;
  const bool flat_memory_ok = rss_growth_mb < kFlatMemorySlackMb;

  // Throughput: best-of-reps streaming audit of the small file.
  const int64_t stream_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::RunAuditCsv(small_csv, count_config).ValueOrDie());
  });
  const double rows_per_sec = static_cast<double>(config.rows) /
                              (static_cast<double>(stream_ns) / 1e9);

  // Thread scaling on the in-memory chunked engine: same table, same
  // chunks, serial vs --threads workers. On a single-core host the
  // honest ratio is ~1.0; the regression gate compares against the
  // baseline recorded on the same machine class rather than asserting
  // an absolute speedup.
  data::Table small_table = LoadOrDie(small_csv);
  audit::AuditConfig serial_config = CountConfig();
  serial_config.chunk_rows = data::kDefaultChunkRows;
  audit::AuditConfig parallel_config = serial_config;
  parallel_config.num_threads = config.threads;
  const int64_t serial_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::RunAudit(small_table, serial_config).ValueOrDie());
  });
  const int64_t parallel_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::RunAudit(small_table, parallel_config).ValueOrDie());
  });
  const double thread_scaling = static_cast<double>(serial_ns) /
                                static_cast<double>(parallel_ns);

  // Byte-identity: the full-config audit (counts, strata, calibration,
  // score distribution) must render identically for every chunk size,
  // thread count, and ingestion path.
  data::Table full_table = LoadOrDie(full_csv);
  const audit::AuditConfig full_config = FullConfig();
  const std::string reference =
      audit::RunAudit(full_table, full_config).ValueOrDie().Render();
  bool chunk_identical = true;
  for (size_t chunk_rows : {size_t{1000}, size_t{65536}}) {
    for (size_t threads : {size_t{1}, size_t{2}, size_t{8}}) {
      audit::AuditConfig variant = full_config;
      variant.chunk_rows = chunk_rows;
      variant.num_threads = threads;
      const std::string render =
          audit::RunAudit(full_table, variant).ValueOrDie().Render();
      chunk_identical = chunk_identical && render == reference;
    }
  }
  audit::AuditConfig streaming_config = FullConfig();
  streaming_config.chunk_rows = 4096;
  streaming_config.num_threads = 2;
  const std::string streamed =
      audit::RunAuditCsv(full_csv, streaming_config).ValueOrDie().Render();
  const bool streaming_identical = streamed == reference;

  std::remove(small_csv.c_str());
  std::remove(big_csv.c_str());
  std::remove(full_csv.c_str());

  fairlaw::JsonWriter writer;
  writer.BeginObject();
  writer.Field("bench", std::string("audit_chunked"));
  writer.Field("rows", static_cast<int64_t>(config.rows));
  writer.Field("big_rows", static_cast<int64_t>(config.big_rows));
  writer.Field("reps", static_cast<int64_t>(config.reps));
  writer.Field("threads", static_cast<int64_t>(config.threads));
  writer.Field("chunk_rows", static_cast<int64_t>(data::kDefaultChunkRows));
  writer.Field("stream_small_ns", small_ns);
  writer.Field("stream_big_ns", big_ns);
  writer.Field("rows_per_sec", rows_per_sec);
  writer.Field("peak_rss_after_small_mb", rss_after_small_mb);
  writer.Field("peak_rss_after_big_mb", rss_after_big_mb);
  writer.Field("rss_growth_mb", rss_growth_mb);
  writer.Field("flat_memory_ok", flat_memory_ok);
  writer.Field("serial_ns", serial_ns);
  writer.Field("parallel_ns", parallel_ns);
  writer.Field("thread_scaling", thread_scaling);
  writer.Field("chunk_identical", chunk_identical);
  writer.Field("streaming_identical", streaming_identical);
  writer.EndObject();
  const std::string json = writer.Finish().ValueOrDie();

  std::ofstream out(config.out, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "bench_micro_audit: cannot write %s\n",
                 config.out.c_str());
    return 1;
  }
  if (!config.obs_json.empty()) {
    std::ofstream obs_out(config.obs_json, std::ios::trunc);
    obs_out << fairlaw::obs::ExportJson() << "\n";
    if (!obs_out) {
      std::fprintf(stderr, "bench_micro_audit: cannot write %s\n",
                   config.obs_json.c_str());
      return 1;
    }
  }
  std::printf("%s\n", json.c_str());
  if (!chunk_identical || !streaming_identical) {
    std::fprintf(stderr, "bench_micro_audit: audit output DIFFERS across "
                         "chunk sizes or ingestion paths — engine bug\n");
    return 1;
  }
  if (!flat_memory_ok) {
    std::fprintf(stderr,
                 "bench_micro_audit: peak RSS grew %.1f MB between the "
                 "%zu-row and %zu-row streaming audits (slack %.0f MB) — "
                 "the out-of-core path is not flat\n",
                 rss_growth_mb, config.rows, config.big_rows,
                 kFlatMemorySlackMb);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench_mode = false;
  HarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) {
      gbench_mode = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = std::string(arg.substr(6));
    } else if (arg.rfind("--obs-json=", 0) == 0) {
      config.obs_json = std::string(arg.substr(11));
    } else if (arg.rfind("--rows=", 0) == 0) {
      config.rows = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(7)).ValueOrDie());
    } else if (arg.rfind("--big-rows=", 0) == 0) {
      config.big_rows = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(11)).ValueOrDie());
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(7)).ValueOrDie());
    } else if (arg.rfind("--threads=", 0) == 0) {
      config.threads = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(10)).ValueOrDie());
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_audit [--benchmark_* flags] "
                   "[--out=PATH] [--obs-json=PATH] [--rows=N] "
                   "[--big-rows=N] [--reps=N] [--threads=N]\n");
      return 2;
    }
  }
  if (gbench_mode) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return RunHarness(config);
}
