// E8 — §IV-F group-blind repair ([13], [24]). The operational credit-
// score pool carries no protected attribute; only a small research
// sample (per-group score distributions) and the population marginals
// are available. Sweeps the repair strength and reports the group mean
// gap and the selection-rate gap at the pooled median, against the
// group-aware disparate-impact remover as the information skyline.
#include <cmath>
#include <cstdio>

#include "mitigation/di_remover.h"
#include "mitigation/group_blind_repair.h"
#include "stats/descriptive.h"
#include "stats/rng.h"

namespace {

using fairlaw::mitigation::GroupBlindRepair;
using fairlaw::stats::Rng;

struct Gaps {
  double mean_gap;
  double rate_gap_at_median;
};

Gaps Measure(const std::vector<double>& scores,
             const std::vector<uint8_t>& is_minority) {
  double sum[2] = {0.0, 0.0};
  double cnt[2] = {0.0, 0.0};
  double threshold = fairlaw::stats::Median(scores).ValueOrDie();
  double sel[2] = {0.0, 0.0};
  for (size_t i = 0; i < scores.size(); ++i) {
    int g = is_minority[i] ? 1 : 0;
    sum[g] += scores[i];
    cnt[g] += 1.0;
    if (scores[i] >= threshold) sel[g] += 1.0;
  }
  Gaps gaps;
  gaps.mean_gap = std::fabs(sum[0] / cnt[0] - sum[1] / cnt[1]);
  gaps.rate_gap_at_median =
      std::fabs(sel[0] / cnt[0] - sel[1] / cnt[1]);
  return gaps;
}

}  // namespace

int main() {
  std::printf("=== E8: group-blind OT repair (SS IV-F, refs [13],[24]) "
              "===\n");
  Rng rng(31);
  const double kShift = 1.5;

  // Small research sample (500 per group) with known group labels.
  std::vector<double> ref_majority(500);
  std::vector<double> ref_minority(500);
  for (double& v : ref_majority) v = rng.Normal(0.0, 1.0);
  for (double& v : ref_minority) v = rng.Normal(-kShift, 1.0);
  GroupBlindRepair repair =
      GroupBlindRepair::Fit({ref_majority, ref_minority}, {0.7, 0.3})
          .ValueOrDie();
  std::printf("fitted calibration factor: %.3f\n", repair.calibration());

  // Operational pool WITHOUT labels (we keep them only to evaluate).
  const size_t n = 20000;
  std::vector<double> pooled(n);
  std::vector<uint8_t> is_minority(n);
  std::vector<std::string> group_names(n);
  for (size_t i = 0; i < n; ++i) {
    is_minority[i] = rng.Bernoulli(0.3);
    pooled[i] =
        is_minority[i] ? rng.Normal(-kShift, 1.0) : rng.Normal(0.0, 1.0);
    group_names[i] = is_minority[i] ? "minority" : "majority";
  }

  std::printf("%-10s %-12s %-16s\n", "strength", "mean_gap",
              "rate_gap@median");
  for (double strength : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    std::vector<double> repaired =
        repair.Apply(pooled, strength).ValueOrDie();
    Gaps gaps = Measure(repaired, is_minority);
    std::printf("%-10.2f %-12.4f %-16.4f\n", strength, gaps.mean_gap,
                gaps.rate_gap_at_median);
  }

  // Skyline: the group-AWARE quantile repair (needs per-row labels).
  std::vector<double> aware =
      fairlaw::mitigation::RepairFeature(group_names, pooled, 1.0)
          .ValueOrDie();
  Gaps aware_gaps = Measure(aware, is_minority);
  std::printf("%-10s %-12.4f %-16.4f  (group-aware skyline)\n", "aware",
              aware_gaps.mean_gap, aware_gaps.rate_gap_at_median);

  std::printf("\nExpected shape: both gaps fall monotonically with the "
              "repair strength; the group-blind repair closes most of the "
              "gap but cannot match the group-aware skyline — the residue "
              "is the posterior-overlap limit of repairing without the "
              "protected attribute.\n");
  return 0;
}
