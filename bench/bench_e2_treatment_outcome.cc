// E2 — §IV-A equal treatment vs equal outcome. Sweeps the historical
// label bias of the hiring scenario, trains an unaware model, and
// contrasts three policies: score-only selection (formal equal
// treatment), a fairness-regularized model (in-processing), and an
// affirmative-action quota (positive action). Reports the accuracy /
// parity frontier the two equality concepts trade along.
#include <cstdio>

#include "metrics/group_metrics.h"
#include "mitigation/quota.h"
#include "mitigation/regularized_lr.h"
#include "ml/logistic_regression.h"
#include "ml/model_eval.h"
#include "simulation/scenarios.h"

namespace {

using fairlaw::metrics::DemographicParity;
using fairlaw::metrics::MetricInput;
using fairlaw::stats::Rng;
namespace ml = fairlaw::ml;
namespace mitigation = fairlaw::mitigation;
namespace sim = fairlaw::sim;

struct Materialized {
  ml::Dataset dataset;        // labels = biased historical decisions
  std::vector<int> merit;     // gender-blind ground truth
  std::vector<std::string> genders;
  std::vector<int> group_indicator;  // 1 = female
};

Materialized Materialize(double label_bias, Rng* rng) {
  sim::HiringOptions options;
  options.n = 12000;
  options.label_bias = label_bias;
  options.proxy_strength = 1.0;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, rng).ValueOrDie();
  Materialized out;
  out.dataset = ml::DatasetFromTable(scenario.table,
                                     scenario.feature_columns,
                                     scenario.label_column)
                    .ValueOrDie();
  const auto* merit_col = scenario.table.GetColumn("merit").ValueOrDie();
  const auto* gender_col = scenario.table.GetColumn("gender").ValueOrDie();
  for (size_t i = 0; i < scenario.table.num_rows(); ++i) {
    out.merit.push_back(
        static_cast<int>(merit_col->GetInt64(i).ValueOrDie()));
    std::string gender = gender_col->GetString(i).ValueOrDie();
    out.genders.push_back(gender);
    out.group_indicator.push_back(gender == "female" ? 1 : 0);
  }
  return out;
}

struct PolicyOutcome {
  double accuracy_vs_merit;
  double dp_gap;
};

PolicyOutcome Evaluate(const Materialized& data,
                       const std::vector<int>& decisions) {
  MetricInput input;
  input.groups = data.genders;
  input.predictions = decisions;
  PolicyOutcome outcome;
  outcome.dp_gap = DemographicParity(input).ValueOrDie().max_gap;
  outcome.accuracy_vs_merit =
      ml::Accuracy(data.merit, decisions).ValueOrDie();
  return outcome;
}

}  // namespace

int main() {
  std::printf("=== E2: equal treatment vs equal outcome (SS IV-A) ===\n");
  std::printf("%-6s | %-22s | %-22s | %-22s\n", "bias",
              "score-only (treatment)", "fair-LR lambda=20",
              "40%% quota (outcome)");
  std::printf("%-6s | %-10s %-10s | %-10s %-10s | %-10s %-10s\n", "beta",
              "acc", "dp_gap", "acc", "dp_gap", "acc", "dp_gap");
  for (double bias : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    Rng rng(42);
    Materialized data = Materialize(bias, &rng);

    // Policy 1: plain unaware model at threshold 0.5.
    ml::LogisticRegression model;
    (void)model.Fit(data.dataset);
    std::vector<int> plain =
        model.PredictBatch(data.dataset.features).ValueOrDie();
    PolicyOutcome treatment = Evaluate(data, plain);

    // Policy 2: fairness-regularized logistic regression.
    mitigation::FairLrOptions fair_options;
    fair_options.fairness_weight = 20.0;
    mitigation::FairLogisticRegression fair(data.group_indicator,
                                            fair_options);
    (void)fair.Fit(data.dataset);
    std::vector<int> regularized =
        fair.PredictBatch(data.dataset.features).ValueOrDie();
    PolicyOutcome in_processing = Evaluate(data, regularized);

    // Policy 3: quota over the plain model's scores (positive action).
    std::vector<double> scores =
        model.PredictProbaBatch(data.dataset.features).ValueOrDie();
    size_t hires = 0;
    for (int d : plain) hires += d;
    mitigation::QuotaOptions quota_options;
    quota_options.total_selections = hires > 0 ? hires : 1;
    quota_options.min_share = {{"female", 1.0 / 3.0}};
    mitigation::QuotaSelection quota =
        mitigation::SelectWithQuota(data.genders, scores, quota_options)
            .ValueOrDie();
    PolicyOutcome outcome = Evaluate(data, quota.selected);

    std::printf("%-6.2f | %-10.4f %-10.4f | %-10.4f %-10.4f | %-10.4f "
                "%-10.4f\n",
                bias, treatment.accuracy_vs_merit, treatment.dp_gap,
                in_processing.accuracy_vs_merit, in_processing.dp_gap,
                outcome.accuracy_vs_merit, outcome.dp_gap);
  }
  std::printf("\nExpected shape: the score-only column's dp_gap grows with "
              "the injected bias while the mitigated columns stay low at a "
              "modest accuracy cost.\n");
  return 0;
}
