// E7 — §IV-F sampling requirements. Measures the sample complexity of
// bias detection for the distances the paper lists (Hellinger, total
// variation, Wasserstein-1, MMD, plus KS): estimation error and runtime
// vs sample size when comparing two group distributions with a known
// true distance, and the fitted convergence exponent (~ -1/2 for root-n
// estimators).
#include <cmath>
#include <cstdio>

#include "stats/distance.h"
#include "stats/hypothesis.h"
#include "stats/histogram.h"
#include "stats/mmd.h"
#include "stats/sample_complexity.h"

namespace {

using fairlaw::stats::ComplexityCurve;
using fairlaw::stats::DistanceEstimator;
using fairlaw::stats::Histogram;
using fairlaw::stats::MeasureSampleComplexity;
using fairlaw::stats::NormalCdf;
using fairlaw::stats::Rng;
using fairlaw::stats::Sampler;

constexpr double kShift = 1.0;  // N(0,1) vs N(1,1)

Sampler Gaussian(double mean) {
  return [mean](size_t n, Rng* rng) {
    std::vector<double> sample(n);
    for (double& v : sample) v = rng->Normal(mean, 1.0);
    return sample;
  };
}

/// Histogram-based discrete estimator wrapper over a shared binning.
DistanceEstimator Binned(
    fairlaw::Result<double> (*distance)(std::span<const double>,
                                        std::span<const double>)) {
  return [distance](const std::vector<double>& x,
                    const std::vector<double>& y)
             -> fairlaw::Result<double> {
    Histogram hx = Histogram::Make(-4.0, 5.0, 40).ValueOrDie();
    Histogram hy = Histogram::Make(-4.0, 5.0, 40).ValueOrDie();
    hx.AddAll(x);
    hy.AddAll(y);
    std::vector<double> px = hx.Probabilities();
    std::vector<double> py = hy.Probabilities();
    return distance(px, py);
  };
}

void PrintCurve(const ComplexityCurve& curve) {
  std::printf("%s (true distance %.4f, convergence exponent %+.2f):\n",
              curve.name.c_str(), curve.true_distance,
              curve.error_rate_exponent);
  std::printf("  %-8s %-12s %-12s %-12s %-12s\n", "n", "estimate",
              "abs_error", "stddev", "runtime_us");
  for (const auto& point : curve.points) {
    std::printf("  %-8zu %-12.4f %-12.4f %-12.4f %-12.1f\n", point.n,
                point.mean_estimate, point.mean_abs_error,
                point.stddev_estimate, point.mean_runtime_us);
  }
}

}  // namespace

int main() {
  std::printf("=== E7: sample complexity of bias detection (SS IV-F) ===\n");
  std::printf("population: N(0,1) vs N(%.1f,1)\n\n", kShift);

  const std::vector<size_t> sizes = {100, 316, 1000, 3162, 10000, 31623};
  const int reps = 20;

  // Ground-truth distances between N(0,1) and N(1,1):
  // TV = 2*Phi(shift/2) - 1; Hellinger = sqrt(1 - exp(-shift^2/8));
  // W1 = shift (location family); KS = TV for equal-variance Gaussians.
  const double true_tv = 2.0 * NormalCdf(kShift / 2.0) - 1.0;
  const double true_hellinger =
      std::sqrt(1.0 - std::exp(-kShift * kShift / 8.0));
  const double true_w1 = kShift;
  const double true_ks = true_tv;

  Rng rng(2024);
  PrintCurve(MeasureSampleComplexity(
                 "total_variation(40 bins)", Gaussian(0.0), Gaussian(kShift),
                 Binned(&fairlaw::stats::TotalVariation), true_tv, sizes,
                 reps, &rng)
                 .ValueOrDie());
  PrintCurve(MeasureSampleComplexity(
                 "hellinger(40 bins)", Gaussian(0.0), Gaussian(kShift),
                 Binned(&fairlaw::stats::Hellinger), true_hellinger, sizes,
                 reps, &rng)
                 .ValueOrDie());
  PrintCurve(MeasureSampleComplexity(
                 "wasserstein1", Gaussian(0.0), Gaussian(kShift),
                 [](const std::vector<double>& x,
                    const std::vector<double>& y) {
                   return fairlaw::stats::Wasserstein1Samples(x, y);
                 },
                 true_w1, sizes, reps, &rng)
                 .ValueOrDie());
  PrintCurve(MeasureSampleComplexity(
                 "kolmogorov_smirnov", Gaussian(0.0), Gaussian(kShift),
                 [](const std::vector<double>& x,
                    const std::vector<double>& y) {
                   return fairlaw::stats::KolmogorovSmirnov(x, y);
                 },
                 true_ks, sizes, reps, &rng)
                 .ValueOrDie());

  // MMD is quadratic in n: cap its sweep so the bench stays fast. The
  // true MMD^2 for the RBF kernel with sigma=1 between N(0,1), N(1,1):
  // 2/sqrt(3) * (1 - exp(-shift^2/6)).
  const double true_mmd2 =
      2.0 / std::sqrt(3.0) * (1.0 - std::exp(-kShift * kShift / 6.0));
  PrintCurve(MeasureSampleComplexity(
                 "mmd^2 (rbf sigma=1)", Gaussian(0.0), Gaussian(kShift),
                 [](const std::vector<double>& x,
                    const std::vector<double>& y) {
                   return fairlaw::stats::MmdSquaredBiased1d(x, y, 1.0);
                 },
                 true_mmd2, {100, 316, 1000, 3162}, reps, &rng)
                 .ValueOrDie());

  std::printf("\nExpected shape: abs_error ~ n^(-1/2) for every "
              "estimator; W1/KS run in n log n while MMD's runtime grows "
              "quadratically — the runtime-vs-sample-complexity coupling "
              "SS IV-F points out.\n");
  return 0;
}
