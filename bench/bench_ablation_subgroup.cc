// Ablation A2 — design choices inside the subgroup auditor (E4):
//   (a) raw gap vs size-weighted gap ranking (Kearns et al.'s
//       weighting), under data where tiny noisy subgroups exist, and
//   (b) the min_support cut-off, trading false alarms from micro-groups
//       against missing genuinely small victim groups (§IV-F's
//       uncertainty point made operational).
#include <cstdio>

#include "audit/subgroup.h"
#include "data/column.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace data = fairlaw::data;

/// Table with one genuinely disfavored mid-size subgroup and many tiny
/// random subgroups whose empirical rates are pure noise.
data::Table MakeTable(size_t n, Rng* rng) {
  std::vector<std::string> region(n);
  std::vector<std::string> status(n);
  std::vector<int64_t> predictions(n);
  for (size_t i = 0; i < n; ++i) {
    // region: 12 values; one ("r0") small-ish. status: 2 values.
    size_t r = rng->UniformInt(12);
    region[i] = "r" + std::to_string(r);
    bool minority_status = rng->Bernoulli(0.5);
    status[i] = minority_status ? "s1" : "s0";
    // True bias only for (r1, s1): selection .15 vs .45 elsewhere.
    double rate = (r == 1 && minority_status) ? 0.15 : 0.45;
    predictions[i] = rng->Bernoulli(rate) ? 1 : 0;
  }
  auto schema =
      data::Schema::Make({{"region", data::DataType::kString},
                          {"status", data::DataType::kString},
                          {"pred", data::DataType::kInt64}})
          .ValueOrDie();
  return data::Table::Make(schema,
                           {data::Column::FromStrings(region),
                            data::Column::FromStrings(status),
                            data::Column::FromInt64s(predictions)})
      .ValueOrDie();
}

}  // namespace

int main() {
  std::printf("=== ablation A2: subgroup-audit scoring & support cutoff "
              "===\n");
  Rng rng(99);
  data::Table table = MakeTable(6000, &rng);
  audit::SubgroupAuditOptions options;
  options.max_depth = 2;
  options.min_support = 1;
  options.tolerance = 0.1;
  audit::SubgroupAuditResult result =
      audit::AuditSubgroups(table, {"region", "status"}, "pred", options)
          .ValueOrDie();

  std::printf("--- (a) top-3 by raw gap vs by size-weighted gap ---\n");
  std::printf("by raw gap:\n");
  for (size_t i = 0; i < 3 && i < result.findings.size(); ++i) {
    const auto& finding = result.findings[i];
    std::printf("  %-28s n=%-5zu gap=%.3f weighted=%.4f\n",
                finding.subgroup.ToString().c_str(), finding.count,
                finding.gap, finding.weighted_gap);
  }
  std::vector<audit::SubgroupFinding> by_weight = result.findings;
  std::sort(by_weight.begin(), by_weight.end(),
            [](const auto& a, const auto& b) {
              return a.weighted_gap > b.weighted_gap;
            });
  std::printf("by weighted gap:\n");
  for (size_t i = 0; i < 3 && i < by_weight.size(); ++i) {
    const auto& finding = by_weight[i];
    std::printf("  %-28s n=%-5zu gap=%.3f weighted=%.4f\n",
                finding.subgroup.ToString().c_str(), finding.count,
                finding.gap, finding.weighted_gap);
  }

  std::printf("\n--- (b) violations reported vs min_support ---\n");
  std::printf("%-12s %-12s %-16s\n", "min_support", "violations",
              "includes r1&s1?");
  for (size_t support : {1, 10, 50, 150, 400}) {
    audit::SubgroupAuditOptions sweep = options;
    sweep.min_support = support;
    audit::SubgroupAuditResult swept =
        audit::AuditSubgroups(table, {"region", "status"}, "pred", sweep)
            .ValueOrDie();
    auto violations = swept.Violations(0.1);
    bool found_true_victim = false;
    for (const auto& finding : violations) {
      bool has_r1 = false;
      bool has_s1 = false;
      for (const auto& [attr, value] : finding.subgroup.conditions) {
        if (value == "r1") has_r1 = true;
        if (value == "s1") has_s1 = true;
      }
      if (has_r1 && has_s1) found_true_victim = true;
    }
    std::printf("%-12zu %-12zu %-16s\n", support, violations.size(),
                found_true_victim ? "yes" : "NO (missed!)");
  }
  std::printf("\nExpected shape: raw-gap ranking can surface tiny noisy "
              "cells; the weighted score puts the true mid-size victim "
              "group first. Raising min_support prunes noise but beyond "
              "the victim group's size it silences the real finding — "
              "the SS IV-F sampling tension.\n");
  return 0;
}
