// E3 — §IV-B proxy discrimination / fairness through unawareness.
// Sweeps the gender->university proxy strength; at each level trains
// (1) an aware model (gender as a feature), (2) an unaware model
// (gender removed), and (3) an unaware model on repaired features
// (disparate-impact remover). Also runs the proxy detector and a
// counterfactual-fairness audit of the unaware model. The headline: the
// unaware model's gap tracks the aware model's once proxies are strong —
// removing the protected attribute is not fairness.
#include <cstdio>

#include "audit/proxy.h"
#include "metrics/counterfactual_fairness.h"
#include "metrics/group_metrics.h"
#include "mitigation/di_remover.h"
#include "ml/logistic_regression.h"
#include "simulation/scenarios.h"

namespace {

using fairlaw::metrics::DemographicParity;
using fairlaw::metrics::MetricInput;
using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace metrics = fairlaw::metrics;
namespace mitigation = fairlaw::mitigation;
namespace ml = fairlaw::ml;
namespace sim = fairlaw::sim;

double DpGapOfModel(const ml::Classifier& model,
                    const std::vector<std::vector<double>>& features,
                    const std::vector<std::string>& genders) {
  MetricInput input;
  input.groups = genders;
  input.predictions = model.PredictBatch(features).ValueOrDie();
  return DemographicParity(input).ValueOrDie().max_gap;
}

}  // namespace

int main() {
  std::printf("=== E3: proxy discrimination & unawareness (SS IV-B) ===\n");
  std::printf("%-6s %-10s %-10s %-10s %-10s %-10s\n", "rho",
              "proxy_V", "aware_gap", "unaware", "repaired", "cf_flip");
  for (double rho : {0.0, 0.5, 1.0, 1.5, 2.0}) {
    Rng rng(7);
    sim::HiringOptions options;
    options.n = 10000;
    options.label_bias = 1.2;
    options.proxy_strength = rho;
    sim::ScenarioData scenario =
        sim::MakeHiringScenario(options, &rng).ValueOrDie();

    std::vector<std::string> genders(scenario.table.num_rows());
    const auto* gender_col =
        scenario.table.GetColumn("gender").ValueOrDie();
    for (size_t i = 0; i < genders.size(); ++i) {
      genders[i] = gender_col->GetString(i).ValueOrDie();
    }

    // Proxy detector score for university.
    auto findings = audit::DetectProxies(scenario.table, "gender",
                                         {"university"})
                        .ValueOrDie();
    double proxy_v = findings[0].cramers_v;

    // (1) aware model: gender + features.
    ml::Dataset aware = ml::DatasetFromTable(scenario.table,
                                             scenario.feature_columns,
                                             scenario.label_column)
                            .ValueOrDie();
    ml::Dataset with_gender = aware;
    with_gender.feature_names.insert(with_gender.feature_names.begin(),
                                     "gender");
    for (size_t i = 0; i < with_gender.size(); ++i) {
      with_gender.features[i].insert(
          with_gender.features[i].begin(),
          genders[i] == "female" ? 1.0 : 0.0);
    }
    ml::LogisticRegression aware_model;
    (void)aware_model.Fit(with_gender);
    double aware_gap =
        DpGapOfModel(aware_model, with_gender.features, genders);

    // (2) unaware model (fairness through unawareness).
    ml::LogisticRegression unaware_model;
    (void)unaware_model.Fit(aware);
    double unaware_gap =
        DpGapOfModel(unaware_model, aware.features, genders);

    // (3) unaware model on fully repaired features.
    ml::Dataset repaired = aware;
    (void)mitigation::RepairFeatures(genders, &repaired.features,
                                     {0, 1, 2}, 1.0);
    ml::LogisticRegression repaired_model;
    (void)repaired_model.Fit(repaired);
    double repaired_gap =
        DpGapOfModel(repaired_model, repaired.features, genders);

    // Counterfactual audit of the unaware model (III-G applied to IV-B):
    // flips despite never seeing gender.
    metrics::CounterfactualFairnessReport cf =
        metrics::AuditCounterfactualFairness(
            scenario.scm, scenario.sample, "gender", 0.0, 1.0,
            [&unaware_model](std::span<const double> x) {
              return unaware_model.Predict(x, 0.5);
            },
            scenario.feature_columns)
            .ValueOrDie();

    std::printf("%-6.2f %-10.3f %-10.4f %-10.4f %-10.4f %-10.4f\n", rho,
                proxy_v, aware_gap, unaware_gap, repaired_gap,
                cf.flip_rate);
  }
  std::printf("\nExpected shape: unaware_gap approaches aware_gap as rho "
              "grows (unawareness fails); repaired_gap stays low; the "
              "counterfactual flip rate of the 'unaware' model grows with "
              "rho.\n");
  return 0;
}
