// E1 — §III worked examples, computed by the library on the paper's
// literal populations. Regenerates the narrative numbers of §III-A..F:
// who counts as fair in each example and what happens one hire either
// side of the fair point.
#include <cstdio>
#include <string>
#include <vector>

#include "metrics/conditional_metrics.h"
#include "metrics/group_metrics.h"

namespace {

using fairlaw::metrics::ConditionalDemographicDisparity;
using fairlaw::metrics::ConditionalReport;
using fairlaw::metrics::ConditionalStatisticalParity;
using fairlaw::metrics::DemographicDisparity;
using fairlaw::metrics::DemographicParity;
using fairlaw::metrics::EqualizedOdds;
using fairlaw::metrics::EqualOpportunity;
using fairlaw::metrics::MetricInput;
using fairlaw::metrics::MetricReport;

void AddRows(MetricInput* input, const std::string& group, int prediction,
             int label, int count) {
  for (int i = 0; i < count; ++i) {
    input->groups.push_back(group);
    input->predictions.push_back(prediction);
    if (label >= 0) input->labels.push_back(label);
  }
}

void PrintRow(const std::string& scenario, const MetricReport& report) {
  std::printf("  %-34s gap=%6.3f ratio=%6.3f -> %s\n", scenario.c_str(),
              report.max_gap, report.min_ratio,
              report.satisfied ? "FAIR" : "BIASED");
}

void ExampleA() {
  std::printf("III-A demographic parity (10 female / 20 male, 10 males "
              "hired):\n");
  for (int hired : {3, 5, 8}) {
    MetricInput input;
    AddRows(&input, "male", 1, -1, 10);
    AddRows(&input, "male", 0, -1, 10);
    AddRows(&input, "female", 1, -1, hired);
    AddRows(&input, "female", 0, -1, 10 - hired);
    PrintRow(std::to_string(hired) + " females hired",
             DemographicParity(input).ValueOrDie());
  }
}

void ExampleB() {
  std::printf("III-B conditional statistical parity (young stratum: 10 M "
              "/ 6 F, 5 young males hired):\n");
  for (int hired : {1, 3, 5}) {
    MetricInput input;
    std::vector<std::string> strata;
    auto add = [&](const std::string& g, const std::string& s, int p,
                   int count) {
      for (int i = 0; i < count; ++i) {
        input.groups.push_back(g);
        input.predictions.push_back(p);
        strata.push_back(s);
      }
    };
    add("male", "young", 1, 5);
    add("male", "young", 0, 5);
    add("female", "young", 1, hired);
    add("female", "young", 0, 6 - hired);
    add("male", "old", 1, 4);
    add("male", "old", 0, 6);
    add("female", "old", 1, 2);
    add("female", "old", 0, 3);
    ConditionalReport report =
        ConditionalStatisticalParity(input, strata).ValueOrDie();
    std::printf("  %d young females hired: worst stratum gap=%6.3f -> %s\n",
                hired, report.max_gap,
                report.satisfied ? "FAIR" : "BIASED");
  }
}

void ExampleC() {
  std::printf("III-C equal opportunity (10 male good matches, 6 female; 5 "
              "good males hired):\n");
  for (int hired : {1, 3, 6}) {
    MetricInput input;
    AddRows(&input, "male", 1, 1, 5);
    AddRows(&input, "male", 0, 1, 5);
    AddRows(&input, "male", 0, 0, 10);
    AddRows(&input, "female", 1, 1, hired);
    AddRows(&input, "female", 0, 1, 6 - hired);
    AddRows(&input, "female", 0, 0, 4);
    PrintRow(std::to_string(hired) + " good females hired",
             EqualOpportunity(input).ValueOrDie());
  }
}

void ExampleD() {
  std::printf("III-D equalized odds (6 F / 12 M; 6 good males hired, 6 bad "
              "males rejected):\n");
  struct Case {
    int good_hired;
    int bad_hired;
    const char* label;
  };
  for (const Case& c : {Case{3, 0, "all 3 good F hired, 0 bad F hired"},
                        Case{2, 0, "only 2 good F hired"},
                        Case{3, 1, "a bad-match F hired too"}}) {
    MetricInput input;
    AddRows(&input, "male", 1, 1, 6);
    AddRows(&input, "male", 0, 0, 6);
    AddRows(&input, "female", 1, 1, c.good_hired);
    AddRows(&input, "female", 0, 1, 3 - c.good_hired);
    AddRows(&input, "female", 1, 0, c.bad_hired);
    AddRows(&input, "female", 0, 0, 3 - c.bad_hired);
    PrintRow(c.label, EqualizedOdds(input).ValueOrDie());
  }
}

void ExampleE() {
  std::printf("III-E demographic disparity (10 female applicants):\n");
  for (int hired : {6, 5, 4}) {
    MetricInput input;
    AddRows(&input, "female", 1, -1, hired);
    AddRows(&input, "female", 0, -1, 10 - hired);
    MetricReport report = DemographicDisparity(input).ValueOrDie();
    std::printf("  %d hired / %d rejected -> %s\n", hired, 10 - hired,
                report.satisfied ? "FAIR" : "UNFAIR");
  }
}

void ExampleF() {
  std::printf("III-F conditional demographic disparity (100 females, 5 "
              "jobs; all accepted in jobs 1-4, all rejected in job 5):\n");
  MetricInput input;
  std::vector<std::string> strata;
  for (int job = 1; job <= 4; ++job) {
    for (int i = 0; i < 10; ++i) {
      input.groups.push_back("female");
      input.predictions.push_back(1);
      strata.push_back("job" + std::to_string(job));
    }
  }
  for (int i = 0; i < 60; ++i) {
    input.groups.push_back("female");
    input.predictions.push_back(0);
    strata.push_back("job5");
  }
  MetricReport plain = DemographicDisparity(input).ValueOrDie();
  std::printf("  unconditional demographic disparity -> %s\n",
              plain.satisfied ? "FAIR" : "UNFAIR");
  ConditionalReport conditional =
      ConditionalDemographicDisparity(input, strata).ValueOrDie();
  for (const auto& stratum : conditional.strata) {
    std::printf("  conditioned on %s -> %s\n", stratum.stratum.c_str(),
                stratum.report.satisfied ? "FAIR" : "UNFAIR");
  }
}

}  // namespace

int main() {
  std::printf("=== E1: paper section III worked examples ===\n");
  ExampleA();
  ExampleB();
  ExampleC();
  ExampleD();
  ExampleE();
  ExampleF();
  std::printf("(III-G counterfactual fairness is exercised in E3 and the "
              "counterfactual tests)\n");
  return 0;
}
