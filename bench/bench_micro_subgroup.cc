// Microbenchmarks for the subgroup (gerrymandering) auditor: cost vs
// enumeration depth and row count — the computational face of §IV-C.
#include <benchmark/benchmark.h>

#include "audit/subgroup.h"
#include "data/column.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace data = fairlaw::data;

data::Table MakeTable(size_t rows, size_t attrs, size_t arity) {
  Rng rng(13);
  std::vector<data::Field> fields;
  std::vector<data::Column> columns;
  for (size_t a = 0; a < attrs; ++a) {
    std::vector<std::string> values(rows);
    for (size_t i = 0; i < rows; ++i) {
      values[i] = "v" + std::to_string(rng.UniformInt(arity));
    }
    fields.push_back({"attr" + std::to_string(a),
                      data::DataType::kString});
    columns.push_back(data::Column::FromStrings(std::move(values)));
  }
  std::vector<int64_t> predictions(rows);
  for (size_t i = 0; i < rows; ++i) predictions[i] = rng.Bernoulli(0.4);
  fields.push_back({"pred", data::DataType::kInt64});
  columns.push_back(data::Column::FromInt64s(std::move(predictions)));
  return data::Table::Make(data::Schema::Make(fields).ValueOrDie(),
                           std::move(columns))
      .ValueOrDie();
}

void BM_SubgroupAuditDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  data::Table table = MakeTable(10000, 5, 3);
  std::vector<std::string> attrs = {"attr0", "attr1", "attr2", "attr3",
                                    "attr4"};
  audit::SubgroupAuditOptions options;
  options.max_depth = depth;
  options.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie());
  }
}
BENCHMARK(BM_SubgroupAuditDepth)->DenseRange(1, 4);

void BM_SubgroupAuditRows(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  data::Table table = MakeTable(rows, 3, 3);
  std::vector<std::string> attrs = {"attr0", "attr1", "attr2"};
  audit::SubgroupAuditOptions options;
  options.max_depth = 2;
  options.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SubgroupAuditRows)->Range(1000, 64000)->Complexity();

}  // namespace

BENCHMARK_MAIN();
