// Microbenchmarks for the subgroup (gerrymandering) auditor: cost vs
// enumeration depth and row count — the computational face of §IV-C.
//
// Two modes:
//   * with any --benchmark_* flag: the usual google-benchmark suite.
//   * otherwise: a before/after kernel comparison that times the scalar
//     rowwise enumerator (the pre-kernel implementation, kept as
//     AuditSubgroupsRowwise) against the bitmap GroupIndex enumerator on
//     the same table, verifies the findings are identical, and writes a
//     machine-readable JSON record (default BENCH_subgroup.json; see
//     README "Benchmark JSON output"). Flags: --out=PATH --rows=N
//     --attrs=N --reps=N.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <functional>
#include <string_view>

#include "audit/subgroup.h"
#include "base/string_util.h"
#include "core/json.h"
#include "data/column.h"
#include "obs/obs.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace data = fairlaw::data;

data::Table MakeTable(size_t rows, size_t attrs, size_t arity) {
  Rng rng(13);
  std::vector<data::Field> fields;
  std::vector<data::Column> columns;
  for (size_t a = 0; a < attrs; ++a) {
    std::vector<std::string> values(rows);
    for (size_t i = 0; i < rows; ++i) {
      values[i] = "v" + std::to_string(rng.UniformInt(arity));
    }
    fields.push_back({"attr" + std::to_string(a),
                      data::DataType::kString});
    columns.push_back(data::Column::FromStrings(std::move(values)));
  }
  std::vector<int64_t> predictions(rows);
  for (size_t i = 0; i < rows; ++i) predictions[i] = rng.Bernoulli(0.4);
  fields.push_back({"pred", data::DataType::kInt64});
  columns.push_back(data::Column::FromInt64s(std::move(predictions)));
  return data::Table::Make(data::Schema::Make(fields).ValueOrDie(),
                           std::move(columns))
      .ValueOrDie();
}

std::vector<std::string> AttrNames(size_t attrs) {
  std::vector<std::string> names;
  for (size_t a = 0; a < attrs; ++a) {
    names.push_back("attr" + std::to_string(a));
  }
  return names;
}

void BM_SubgroupAuditDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  data::Table table = MakeTable(10000, 5, 3);
  std::vector<std::string> attrs = AttrNames(5);
  audit::SubgroupAuditOptions options;
  options.max_depth = depth;
  options.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie());
  }
}
BENCHMARK(BM_SubgroupAuditDepth)->DenseRange(1, 4);

void BM_SubgroupAuditRows(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  data::Table table = MakeTable(rows, 3, 3);
  std::vector<std::string> attrs = AttrNames(3);
  audit::SubgroupAuditOptions options;
  options.max_depth = 2;
  options.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SubgroupAuditRows)->Range(1000, 64000)->Complexity();

void BM_SubgroupAuditRowwise(benchmark::State& state) {
  size_t rows = static_cast<size_t>(state.range(0));
  data::Table table = MakeTable(rows, 3, 3);
  std::vector<std::string> attrs = AttrNames(3);
  audit::SubgroupAuditOptions options;
  options.max_depth = 2;
  options.min_support = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        audit::AuditSubgroupsRowwise(table, attrs, "pred", options)
            .ValueOrDie());
  }
  state.SetComplexityN(static_cast<int64_t>(rows));
}
BENCHMARK(BM_SubgroupAuditRowwise)->Range(1000, 64000)->Complexity();

// ---------------------------------------------------------------------------
// JSON comparison harness (default mode).

struct HarnessConfig {
  std::string out = "BENCH_subgroup.json";
  size_t rows = 100000;
  size_t attrs = 4;
  size_t reps = 3;
};

int64_t BestOfNs(size_t reps, const std::function<void()>& fn) {
  int64_t best = 0;
  for (size_t r = 0; r < reps; ++r) {
    const uint64_t start = fairlaw::obs::MonotonicNowNs();
    fn();
    const int64_t ns =
        static_cast<int64_t>(fairlaw::obs::MonotonicNowNs() - start);
    if (r == 0 || ns < best) best = ns;
  }
  return best;
}

bool SameFindings(const audit::SubgroupAuditResult& a,
                  const audit::SubgroupAuditResult& b) {
  if (a.subgroups_examined != b.subgroups_examined ||
      a.subgroups_skipped_small != b.subgroups_skipped_small ||
      a.any_violation != b.any_violation ||
      a.findings.size() != b.findings.size()) {
    return false;
  }
  for (size_t i = 0; i < a.findings.size(); ++i) {
    const audit::SubgroupFinding& fa = a.findings[i];
    const audit::SubgroupFinding& fb = b.findings[i];
    if (fa.subgroup.conditions != fb.subgroup.conditions ||
        fa.count != fb.count || fa.selection_rate != fb.selection_rate ||
        fa.gap != fb.gap || fa.weighted_gap != fb.weighted_gap) {
      return false;
    }
  }
  return true;
}

int RunComparison(const HarnessConfig& config) {
  const data::Table table = MakeTable(config.rows, config.attrs, 3);
  const std::vector<std::string> attrs = AttrNames(config.attrs);
  audit::SubgroupAuditOptions options;
  options.max_depth = 3;
  options.min_support = 5;

  audit::SubgroupAuditResult baseline_result =
      audit::AuditSubgroupsRowwise(table, attrs, "pred", options)
          .ValueOrDie();
  audit::SubgroupAuditResult bitmap_result =
      audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie();
  const bool identical = SameFindings(baseline_result, bitmap_result);

  const int64_t baseline_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::AuditSubgroupsRowwise(table, attrs, "pred", options)
            .ValueOrDie());
  });
  const int64_t bitmap_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie());
  });
  audit::SubgroupAuditOptions parallel_options = options;
  parallel_options.num_threads = 0;  // one worker per hardware thread
  const int64_t parallel_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", parallel_options)
            .ValueOrDie());
  });

  // Probe overhead: the same bitmap walk with the obs probes live
  // (bitmap_ns above) vs disabled through the runtime kill switch. The
  // DESIGN.md §10 budget is < 2% on this walk.
  fairlaw::obs::SetEnabled(false);
  const int64_t obs_off_ns = BestOfNs(config.reps, [&] {
    benchmark::DoNotOptimize(
        audit::AuditSubgroups(table, attrs, "pred", options).ValueOrDie());
  });
  fairlaw::obs::SetEnabled(true);
  const double obs_overhead_pct =
      obs_off_ns > 0 ? (static_cast<double>(bitmap_ns) -
                        static_cast<double>(obs_off_ns)) /
                           static_cast<double>(obs_off_ns) * 100.0
                     : 0.0;

  fairlaw::JsonWriter writer;
  writer.BeginObject();
  writer.Field("bench", std::string("subgroup_enumeration"));
  writer.Field("rows", static_cast<int64_t>(config.rows));
  writer.Field("attrs", static_cast<int64_t>(config.attrs));
  writer.Field("arity", static_cast<int64_t>(3));
  writer.Field("max_depth", static_cast<int64_t>(options.max_depth));
  writer.Field("reps", static_cast<int64_t>(config.reps));
  writer.Field("subgroups_examined",
               static_cast<int64_t>(bitmap_result.subgroups_examined));
  writer.Field("baseline_rowwise_ns", baseline_ns);
  writer.Field("bitmap_ns", bitmap_ns);
  writer.Field("bitmap_parallel_ns", parallel_ns);
  writer.Field("speedup", static_cast<double>(baseline_ns) /
                              static_cast<double>(bitmap_ns));
  writer.Field("parallel_speedup", static_cast<double>(baseline_ns) /
                                       static_cast<double>(parallel_ns));
  writer.Field("obs_off_ns", obs_off_ns);
  writer.Field("obs_overhead_pct", obs_overhead_pct);
  writer.Field("identical_results", identical);
  writer.EndObject();
  const std::string json = writer.Finish().ValueOrDie();

  std::ofstream out(config.out, std::ios::trunc);
  out << json << "\n";
  if (!out) {
    std::fprintf(stderr, "bench_micro_subgroup: cannot write %s\n",
                 config.out.c_str());
    return 1;
  }
  std::printf("%s\n", json.c_str());
  if (!identical) {
    std::fprintf(stderr, "bench_micro_subgroup: rowwise and bitmap results "
                         "DIFFER — kernel bug\n");
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool gbench_mode = false;
  HarnessConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--benchmark", 0) == 0) {
      gbench_mode = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      config.out = std::string(arg.substr(6));
    } else if (arg.rfind("--rows=", 0) == 0) {
      config.rows = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(7)).ValueOrDie());
    } else if (arg.rfind("--attrs=", 0) == 0) {
      config.attrs = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(8)).ValueOrDie());
    } else if (arg.rfind("--reps=", 0) == 0) {
      config.reps = static_cast<size_t>(
          fairlaw::ParseInt64(arg.substr(7)).ValueOrDie());
    } else {
      std::fprintf(stderr,
                   "usage: bench_micro_subgroup [--benchmark_* flags] "
                   "[--out=PATH] [--rows=N] [--attrs=N] [--reps=N]\n");
      return 2;
    }
  }
  if (gbench_mode) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  return RunComparison(config);
}
