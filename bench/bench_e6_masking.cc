// E6 — §IV-E robustness to manipulation. Sweeps the adversarial masking
// penalty: as it grows, the protected coefficient's attribution share
// collapses (the attribution audit is fooled) while accuracy and the
// outcome-based demographic-parity gap barely move — reproducing the
// Dimanov et al. [3] phenomenon and the defense (cross-check attribution
// audits with outcome audits).
#include <cstdio>

#include "audit/manipulation.h"
#include "ml/feature_importance.h"
#include "ml/model_eval.h"
#include "simulation/adversary.h"
#include "simulation/scenarios.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace metrics = fairlaw::metrics;
namespace ml = fairlaw::ml;
namespace sim = fairlaw::sim;

}  // namespace

int main() {
  std::printf("=== E6: adversarial attribution masking (SS IV-E) ===\n");

  // Training data WITH the gender indicator plus proxies.
  Rng rng(23);
  sim::HiringOptions options;
  options.n = 8000;
  options.label_bias = 1.5;
  options.proxy_strength = 1.5;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  auto proxies = ml::FeaturesFromTable(scenario.table,
                                       scenario.feature_columns)
                     .ValueOrDie();
  const auto* gender_col = scenario.table.GetColumn("gender").ValueOrDie();
  const auto* hired_col = scenario.table.GetColumn("hired").ValueOrDie();
  ml::Dataset dataset;
  dataset.feature_names = {"gender", "university", "experience",
                           "test_score"};
  std::vector<std::string> genders;
  for (size_t i = 0; i < scenario.table.num_rows(); ++i) {
    std::string gender = gender_col->GetString(i).ValueOrDie();
    genders.push_back(gender);
    std::vector<double> row = {gender == "female" ? 1.0 : 0.0};
    row.insert(row.end(), proxies[i].begin(), proxies[i].end());
    dataset.features.push_back(std::move(row));
    dataset.labels.push_back(
        static_cast<int>(hired_col->GetInt64(i).ValueOrDie()));
  }

  std::printf("%-10s %-12s %-10s %-10s %-12s %-12s %-10s\n", "penalty",
              "gender_share", "accuracy", "dp_gap", "attr_audit",
              "outcome", "masking?");
  for (double penalty : {0.0, 1.0, 10.0, 100.0, 1000.0}) {
    sim::MaskingOptions masking;
    masking.masking_penalty = penalty;
    ml::LogisticRegression model =
        sim::TrainMaskedModel(dataset, 0, masking).ValueOrDie();

    auto importances =
        ml::LinearAttribution(model.weights(), dataset).ValueOrDie();
    metrics::MetricInput outcomes;
    outcomes.groups = genders;
    outcomes.predictions =
        model.PredictBatch(dataset.features).ValueOrDie();
    audit::ManipulationAuditReport report =
        audit::AuditManipulation(importances, "gender", outcomes)
            .ValueOrDie();
    double accuracy =
        ml::Accuracy(dataset.labels, outcomes.predictions).ValueOrDie();

    std::printf("%-10.0f %-12.4f %-10.4f %-10.4f %-12s %-12s %-10s\n",
                penalty, report.sensitive_attribution_share, accuracy,
                report.outcome_gap,
                report.attribution_says_fair ? "fair" : "unfair",
                report.outcome_says_fair ? "fair" : "unfair",
                report.masking_suspected ? "SUSPECTED" : "-");
  }
  std::printf("\nExpected shape: gender_share collapses to ~0 as the "
              "penalty grows while accuracy and dp_gap stay roughly flat; "
              "the attribution audit flips to 'fair', the outcome audit "
              "does not, and the masking flag fires.\n");
  return 0;
}
