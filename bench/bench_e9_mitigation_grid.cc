// E9 — §V "no one-size-fits-all". Cross-grid of mitigation strategies x
// fairness metrics x scenarios: each mitigator wins on the criterion it
// targets and pays elsewhere (accuracy, or a non-target metric), so the
// choice must come from the use case and the legal layer, not from the
// algorithm shelf.
#include <cstdio>
#include <string>

#include "metrics/group_metrics.h"
#include "mitigation/reweighing.h"
#include "mitigation/randomized_eodds.h"
#include "mitigation/threshold_optimizer.h"
#include "ml/logistic_regression.h"
#include "ml/model_eval.h"
#include "simulation/scenarios.h"

namespace {

using fairlaw::metrics::MetricInput;
using fairlaw::stats::Rng;
namespace metrics = fairlaw::metrics;
namespace mitigation = fairlaw::mitigation;
namespace ml = fairlaw::ml;
namespace sim = fairlaw::sim;

struct Prepared {
  std::string name;
  ml::Dataset train;        // historical (biased) labels
  std::vector<std::string> groups;
  std::vector<int> merit;
};

Prepared Prepare(const std::string& name, const sim::ScenarioData& scenario) {
  Prepared out;
  out.name = name;
  out.train = ml::DatasetFromTable(scenario.table,
                                   scenario.feature_columns,
                                   scenario.label_column)
                  .ValueOrDie();
  const auto* group_col =
      scenario.table.GetColumn(scenario.protected_columns[0]).ValueOrDie();
  const auto* merit_col =
      scenario.table.GetColumn(scenario.merit_column).ValueOrDie();
  for (size_t i = 0; i < scenario.table.num_rows(); ++i) {
    out.groups.push_back(group_col->ValueToString(i));
    out.merit.push_back(
        static_cast<int>(merit_col->GetInt64(i).ValueOrDie()));
  }
  return out;
}

void Row(const Prepared& data, const std::string& mitigator,
         const std::vector<int>& decisions) {
  MetricInput input;
  input.groups = data.groups;
  input.predictions = decisions;
  input.labels = data.merit;  // evaluate against unbiased merit
  double dp = metrics::DemographicParity(input).ValueOrDie().max_gap;
  double eo = metrics::EqualOpportunity(input).ValueOrDie().max_gap;
  double di = metrics::DisparateImpactRatio(input).ValueOrDie().min_ratio;
  double accuracy = ml::Accuracy(data.merit, decisions).ValueOrDie();
  std::printf("  %-18s acc=%.4f dp_gap=%.4f eo_gap=%.4f di_ratio=%.4f\n",
              mitigator.c_str(), accuracy, dp, eo, di);
}

void RunScenario(const Prepared& data) {
  std::printf("%s (n=%zu):\n", data.name.c_str(), data.train.size());

  // Baseline: plain model on biased labels.
  ml::LogisticRegression baseline;
  (void)baseline.Fit(data.train);
  std::vector<int> plain =
      baseline.PredictBatch(data.train.features).ValueOrDie();
  Row(data, "baseline", plain);

  // Pre-processing: reweighing.
  ml::Dataset reweighed = data.train;
  (void)mitigation::ApplyReweighing(data.groups, &reweighed);
  ml::LogisticRegression reweighed_model;
  (void)reweighed_model.Fit(reweighed);
  Row(data, "reweighing",
      reweighed_model.PredictBatch(data.train.features).ValueOrDie());

  // Post-processing: demographic-parity thresholds.
  std::vector<double> scores =
      baseline.PredictProbaBatch(data.train.features).ValueOrDie();
  mitigation::GroupThresholds dp_thresholds =
      mitigation::OptimizeThresholds(
          data.groups, scores, {},
          mitigation::ThresholdCriterion::kDemographicParity, {})
          .ValueOrDie();
  Row(data, "thresholds(DP)",
      dp_thresholds.Apply(data.groups, scores).ValueOrDie());

  // Post-processing: equal-opportunity thresholds against merit.
  mitigation::GroupThresholds eo_thresholds =
      mitigation::OptimizeThresholds(
          data.groups, scores, data.merit,
          mitigation::ThresholdCriterion::kEqualOpportunity, {})
          .ValueOrDie();
  Row(data, "thresholds(EOpp)",
      eo_thresholds.Apply(data.groups, scores).ValueOrDie());

  // Post-processing: exact randomized equalized odds against merit.
  mitigation::RandomizedEqualizedOdds randomized =
      mitigation::RandomizedEqualizedOdds::Fit(data.groups, scores,
                                               data.merit)
          .ValueOrDie();
  Rng apply_rng(7);
  Row(data, "randomized(EOdds)",
      randomized.Apply(data.groups, scores, &apply_rng).ValueOrDie());
}

}  // namespace

int main() {
  std::printf("=== E9: mitigation x metric x scenario grid (SS V) ===\n");
  std::printf("(all metrics evaluated against gender-blind merit)\n\n");
  Rng rng(55);
  {
    sim::HiringOptions options;
    options.n = 10000;
    options.label_bias = 1.2;
    options.proxy_strength = 1.2;
    RunScenario(
        Prepare("hiring", sim::MakeHiringScenario(options, &rng)
                              .ValueOrDie()));
  }
  {
    sim::LendingOptions options;
    options.n = 10000;
    options.label_bias = 1.2;
    RunScenario(
        Prepare("lending", sim::MakeLendingScenario(options, &rng)
                               .ValueOrDie()));
  }
  {
    sim::PromotionOptions options;
    options.n = 10000;
    options.subgroup_bias = 1.2;
    RunScenario(
        Prepare("promotion", sim::MakePromotionScenario(options, &rng)
                                 .ValueOrDie()));
  }
  std::printf("\nExpected shape: thresholds(DP) minimizes dp_gap and "
              "maximizes di_ratio; thresholds(EOpp) minimizes eo_gap; "
              "reweighing improves both moderately; nobody wins "
              "everything (SS V: no one-size-fits-all).\n");
  return 0;
}
