// E4 — §IV-C intersectional / subgroup fairness. Part 1: on the
// gerrymandered promotion scenario, marginal audits pass while the
// depth-2 subgroup audit exposes the penalized cells. Part 2: the
// combinatorial cost of exhaustive subgroup auditing as depth and
// attribute count grow (the exponential complexity §IV-C warns about),
// with wall-clock measurements.
#include <cstdint>
#include <cstdio>
#include <string>

#include "audit/auditor.h"
#include "audit/subgroup.h"
#include "data/column.h"
#include "obs/obs.h"
#include "simulation/scenarios.h"
#include "stats/rng.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace data = fairlaw::data;
namespace sim = fairlaw::sim;

void Part1() {
  std::printf("--- part 1: gerrymandered promotion scenario ---\n");
  Rng rng(11);
  sim::PromotionOptions options;
  options.n = 30000;
  options.subgroup_bias = 1.5;
  sim::ScenarioData scenario =
      sim::MakePromotionScenario(options, &rng).ValueOrDie();

  for (const char* attribute : {"gender", "race"}) {
    audit::AuditConfig config;
    config.protected_column = attribute;
    config.prediction_column = "promoted";
    audit::AuditResult result =
        audit::RunAudit(scenario.table, config).ValueOrDie();
    std::printf("marginal audit on %-7s: dp_gap=%.4f -> %s\n",
                attribute,
                result.Find("demographic_parity").ValueOrDie()->max_gap,
                result.Find("demographic_parity").ValueOrDie()->satisfied
                    ? "pass"
                    : "FAIL");
  }
  audit::SubgroupAuditOptions subgroup_options;
  subgroup_options.max_depth = 2;
  audit::SubgroupAuditResult subgroups =
      audit::AuditSubgroups(scenario.table, {"gender", "race"}, "promoted",
                            subgroup_options)
          .ValueOrDie();
  std::printf("depth-2 subgroup audit (%zu conjunctions):\n",
              subgroups.subgroups_examined);
  for (size_t i = 0; i < subgroups.findings.size() && i < 4; ++i) {
    const audit::SubgroupFinding& finding = subgroups.findings[i];
    std::printf("  %-45s n=%-6zu rate=%.4f gap=%.4f\n",
                finding.subgroup.ToString().c_str(), finding.count,
                finding.selection_rate, finding.gap);
  }
}

void Part2() {
  std::printf("\n--- part 2: audit cost vs depth / attribute count ---\n");
  std::printf("%-6s %-6s %-14s %-12s\n", "attrs", "depth", "conjunctions",
              "time_ms");
  Rng rng(13);
  const size_t n = 20000;
  // Synthetic table with 6 categorical attributes of arity 4 + binary
  // prediction.
  std::vector<data::Column> columns;
  std::vector<data::Field> fields;
  std::vector<std::string> attribute_names;
  for (int a = 0; a < 6; ++a) {
    std::vector<std::string> values(n);
    for (size_t i = 0; i < n; ++i) {
      values[i] = "v" + std::to_string(rng.UniformInt(4));
    }
    std::string name = "attr" + std::to_string(a);
    attribute_names.push_back(name);
    fields.push_back({name, data::DataType::kString});
    columns.push_back(data::Column::FromStrings(std::move(values)));
  }
  std::vector<int64_t> predictions(n);
  for (size_t i = 0; i < n; ++i) predictions[i] = rng.Bernoulli(0.4);
  fields.push_back({"pred", data::DataType::kInt64});
  columns.push_back(data::Column::FromInt64s(std::move(predictions)));
  data::Table table =
      data::Table::Make(data::Schema::Make(fields).ValueOrDie(),
                        std::move(columns))
          .ValueOrDie();

  for (size_t attrs : {2, 4, 6}) {
    std::vector<std::string> use(attribute_names.begin(),
                                 attribute_names.begin() + attrs);
    for (int depth = 1; depth <= 3; ++depth) {
      audit::SubgroupAuditOptions options;
      options.max_depth = depth;
      options.min_support = 5;
      const uint64_t start_ns = fairlaw::obs::MonotonicNowNs();
      audit::SubgroupAuditResult result =
          audit::AuditSubgroups(table, use, "pred", options).ValueOrDie();
      const double ms =
          static_cast<double>(fairlaw::obs::MonotonicNowNs() - start_ns) /
          1e6;
      std::printf("%-6zu %-6d %-14zu %-12.2f\n", attrs, depth,
                  result.subgroups_examined, ms);
    }
  }
  std::printf("\nExpected shape: conjunction count (and time) grows "
              "exponentially with depth, matching CountConjunctions.\n");
}

}  // namespace

int main() {
  std::printf("=== E4: intersectional subgroup fairness (SS IV-C) ===\n");
  Part1();
  Part2();
  return 0;
}
