// E5 — §IV-D feedback loops. Runs the retrain-on-own-decisions hiring
// loop across discouragement strengths and mitigation policies, printing
// the demographic-parity gap and female applicant share per round. The
// unmitigated loop sustains/amplifies the gap and erodes the applicant
// pool; mitigation flattens both curves.
#include <cstdio>

#include "simulation/feedback_loop.h"

namespace {

using fairlaw::sim::FeedbackLoopOptions;
using fairlaw::sim::FeedbackLoopResult;
using fairlaw::sim::LoopMitigation;
using fairlaw::sim::RunFeedbackLoop;
using fairlaw::stats::Rng;

const char* MitigationName(LoopMitigation mitigation) {
  switch (mitigation) {
    case LoopMitigation::kNone:
      return "none";
    case LoopMitigation::kReweighing:
      return "reweighing";
    case LoopMitigation::kGroupThresholds:
      return "group-thresholds";
  }
  return "?";
}

void RunOne(double discouragement, LoopMitigation mitigation) {
  Rng rng(99);
  FeedbackLoopOptions options;
  options.initial_n = 3000;
  options.applicants_per_round = 1500;
  options.rounds = 10;
  options.label_bias = 1.2;
  options.proxy_strength = 1.2;
  options.discouragement = discouragement;
  options.mitigation = mitigation;
  FeedbackLoopResult result = RunFeedbackLoop(options, &rng).ValueOrDie();

  std::printf("discouragement=%.2f mitigation=%-16s gap per round: ",
              discouragement, MitigationName(mitigation));
  for (const auto& round : result.rounds) {
    std::printf("%.3f ", round.dp_gap);
  }
  std::printf("\n    female applicant share: ");
  for (const auto& round : result.rounds) {
    std::printf("%.3f ", round.female_applicant_share);
  }
  std::printf("\n    gap drift (last - first): %+.4f\n", result.gap_drift);
}

}  // namespace

int main() {
  std::printf("=== E5: feedback-loop amplification (SS IV-D) ===\n");
  for (double discouragement : {0.0, 0.5, 1.0}) {
    RunOne(discouragement, LoopMitigation::kNone);
  }
  std::printf("\n--- with mitigation (discouragement = 1.0) ---\n");
  RunOne(1.0, LoopMitigation::kReweighing);
  RunOne(1.0, LoopMitigation::kGroupThresholds);
  std::printf("\nExpected shape: unmitigated gaps persist and the female "
              "applicant share erodes faster with stronger discouragement; "
              "group thresholds pin the gap near zero and the pool stays "
              "balanced.\n");
  return 0;
}
