// Quickstart: load decisions from CSV, run the one-call fairness suite,
// print the report.
//
//   $ ./example_quickstart [decisions.csv]
//
// Without an argument a small embedded hiring CSV is used. The CSV needs
// a protected-attribute column, a binary prediction column, and
// (optionally) a binary label column.
#include <cstdio>
#include <string>

#include "core/suite.h"
#include "data/csv.h"

namespace {

constexpr const char* kEmbeddedCsv =
    "gender,university,pred,hired\n"
    "male,2.1,1,1\nmale,1.7,1,1\nmale,0.3,1,0\nmale,0.9,1,1\n"
    "male,1.4,1,1\nmale,-0.2,0,0\nmale,0.8,1,0\nmale,1.1,1,1\n"
    "male,-0.5,0,0\nmale,0.1,0,0\nmale,2.4,1,1\nmale,1.9,1,1\n"
    "female,1.8,1,1\nfemale,0.6,0,1\nfemale,-0.1,0,0\nfemale,1.2,0,1\n"
    "female,0.4,0,0\nfemale,-0.8,0,0\nfemale,0.9,0,1\nfemale,2.2,1,1\n"
    "female,-0.3,0,0\nfemale,0.7,0,0\nfemale,1.5,1,1\nfemale,0.2,0,0\n";

}  // namespace

int main(int argc, char** argv) {
  fairlaw::Result<fairlaw::data::Table> table =
      argc > 1 ? fairlaw::data::ReadCsvFile(argv[1])
               : fairlaw::data::ReadCsvString(kEmbeddedCsv);
  if (!table.ok()) {
    std::fprintf(stderr, "failed to load CSV: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows x %zu columns\n%s\n", table->num_rows(),
              table->num_columns(), table->Preview(5).c_str());

  fairlaw::SuiteConfig config;
  config.audit.protected_column = "gender";
  config.audit.prediction_column = "pred";
  config.audit.label_column = "hired";
  config.audit.tolerance = 0.1;
  config.proxy_candidates = {"university"};
  config.subgroup_columns = {"gender"};
  config.subgroup_options.min_support = 5;
  config.sampling_options.min_count = 10;
  config.sampling_options.max_ci_halfwidth = 0.5;

  fairlaw::Result<fairlaw::SuiteReport> report =
      fairlaw::RunFairnessSuite(*table, config);
  if (!report.ok()) {
    std::fprintf(stderr, "audit failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s", report->Render().c_str());
  return report->all_clear ? 0 : 2;
}
