// The §III walk-through, end to end: generate historically biased hiring
// data, train an "unaware" model on it, audit all the paper's fairness
// definitions, apply reweighing, retrain, and re-audit. Shows the full
// generate -> train -> audit -> mitigate -> re-audit loop of the library.
#include <cstdio>
#include <span>

#include "audit/auditor.h"
#include "metrics/counterfactual_fairness.h"
#include "mitigation/reweighing.h"
#include "ml/logistic_regression.h"
#include "simulation/scenarios.h"

namespace {

using fairlaw::stats::Rng;
namespace audit = fairlaw::audit;
namespace data = fairlaw::data;
namespace metrics = fairlaw::metrics;
namespace mitigation = fairlaw::mitigation;
namespace ml = fairlaw::ml;
namespace sim = fairlaw::sim;

fairlaw::Result<audit::AuditResult> AuditModel(
    const sim::ScenarioData& scenario, const ml::Classifier& model,
    const ml::Dataset& dataset) {
  FAIRLAW_ASSIGN_OR_RETURN(std::vector<int> predictions,
                           model.PredictBatch(dataset.features));
  std::vector<int64_t> column(predictions.begin(), predictions.end());
  FAIRLAW_ASSIGN_OR_RETURN(
      data::Table table,
      scenario.table.AddColumn("pred",
                               data::Column::FromInt64s(column)));
  audit::AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  config.label_column = "merit";  // audit against gender-blind merit
  config.tolerance = 0.05;
  return audit::RunAudit(table, config);
}

}  // namespace

int main() {
  Rng rng(2024);
  sim::HiringOptions options;
  options.n = 10000;
  options.label_bias = 1.5;     // historical discrimination in the labels
  options.proxy_strength = 1.2;  // university is a gender proxy
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  std::printf("generated %zu applicants (features: university, "
              "experience, test_score)\n\n",
              scenario.table.num_rows());

  ml::Dataset dataset = ml::DatasetFromTable(scenario.table,
                                             scenario.feature_columns,
                                             scenario.label_column)
                            .ValueOrDie();

  // Step 1: train on the biased historical labels, gender excluded —
  // "fairness through unawareness".
  ml::LogisticRegression unaware;
  (void)unaware.Fit(dataset);
  std::printf("--- audit of the unaware model (trained on biased labels) "
              "---\n%s\n",
              AuditModel(scenario, unaware, dataset)
                  .ValueOrDie()
                  .Render()
                  .c_str());

  // Step 2: counterfactual-fairness audit (III-G): does flipping gender
  // in the causal model change the decision, even though the model never
  // sees gender?
  metrics::CounterfactualFairnessReport cf =
      metrics::AuditCounterfactualFairness(
          scenario.scm, scenario.sample, "gender", 0.0, 1.0,
          [&unaware](std::span<const double> x) {
            return unaware.Predict(x, /*threshold=*/0.5);
          },
          scenario.feature_columns)
          .ValueOrDie();
  std::printf("counterfactual fairness: %s\n\n", cf.detail.c_str());

  // Step 3: mitigate with reweighing and retrain.
  ml::Dataset reweighed = dataset;
  std::vector<std::string> genders;
  const auto* gender_col = scenario.table.GetColumn("gender").ValueOrDie();
  for (size_t i = 0; i < scenario.table.num_rows(); ++i) {
    genders.push_back(gender_col->GetString(i).ValueOrDie());
  }
  (void)mitigation::ApplyReweighing(genders, &reweighed);
  ml::LogisticRegression mitigated;
  (void)mitigated.Fit(reweighed);
  std::printf("--- audit after reweighing + retraining ---\n%s",
              AuditModel(scenario, mitigated, dataset)
                  .ValueOrDie()
                  .Render()
                  .c_str());
  return 0;
}
