// §II/§IV demo: produce a full compliance report for an audited hiring
// model — statutory frame, metric results mapped to discrimination
// doctrines, the EEOC four-fifths screen, and the §IV selection-criteria
// checklist.
#include <cstdio>

#include "audit/auditor.h"
#include "legal/checklist.h"
#include "legal/four_fifths.h"
#include "legal/report.h"
#include "ml/logistic_regression.h"
#include "simulation/scenarios.h"

int main() {
  using fairlaw::stats::Rng;
  namespace audit = fairlaw::audit;
  namespace data = fairlaw::data;
  namespace legal = fairlaw::legal;
  namespace ml = fairlaw::ml;
  namespace sim = fairlaw::sim;

  // Biased hiring model, as in the other examples.
  Rng rng(12);
  sim::HiringOptions options;
  options.n = 8000;
  options.label_bias = 1.4;
  options.proxy_strength = 1.0;
  sim::ScenarioData scenario =
      sim::MakeHiringScenario(options, &rng).ValueOrDie();
  ml::Dataset dataset = ml::DatasetFromTable(scenario.table,
                                             scenario.feature_columns,
                                             scenario.label_column)
                            .ValueOrDie();
  ml::LogisticRegression model;
  (void)model.Fit(dataset);
  std::vector<int> predictions =
      model.PredictBatch(dataset.features).ValueOrDie();
  std::vector<int64_t> column(predictions.begin(), predictions.end());
  data::Table table =
      scenario.table
          .AddColumn("pred", data::Column::FromInt64s(column))
          .ValueOrDie();

  // Audit.
  audit::AuditConfig config;
  config.protected_column = "gender";
  config.prediction_column = "pred";
  config.label_column = "merit";
  config.tolerance = 0.05;

  legal::ComplianceReportInputs inputs;
  inputs.system_name = "acme hiring recommender v2";
  inputs.jurisdiction = legal::Jurisdiction::kUs;
  inputs.protected_attribute = "sex";
  inputs.sector = "employment";
  inputs.audit =
      audit::RunAudit(table, config).ValueOrDie().ToLegalFindings();
  inputs.four_fifths =
      legal::FourFifthsTest(
          audit::MetricInputFromTable(table, "gender", "pred", "")
              .ValueOrDie())
          .ValueOrDie();

  legal::UseCaseProfile profile;
  profile.use_case = "hiring recommendation";
  profile.jurisdiction = legal::Jurisdiction::kUs;
  profile.structural_bias_recognized = true;
  profile.proxies_suspected = true;
  profile.labels_reliable = false;  // labels are historical decisions
  profile.causal_model_available = true;
  profile.sample_size = table.num_rows();
  profile.smallest_group_size = 2500;
  inputs.checklist = legal::EvaluateChecklist(profile).ValueOrDie();

  std::printf("%s",
              legal::RenderComplianceReport(inputs).ValueOrDie().c_str());
  return 0;
}
