// §IV-C demo: the paper's exact gerrymandering pattern — promotions look
// fair on gender alone and on race alone, but non-Caucasian men and
// Caucasian women are systematically disfavored. The marginal audits
// pass; the subgroup audit catches it.
#include <cstdio>

#include "audit/auditor.h"
#include "audit/sampling_adequacy.h"
#include "audit/subgroup.h"
#include "simulation/scenarios.h"

int main() {
  using fairlaw::stats::Rng;
  namespace audit = fairlaw::audit;
  namespace sim = fairlaw::sim;

  Rng rng(5);
  sim::PromotionOptions options;
  options.n = 24000;
  options.subgroup_bias = 1.4;
  sim::ScenarioData scenario =
      sim::MakePromotionScenario(options, &rng).ValueOrDie();
  std::printf("promotion scenario: %zu employees, bias injected against "
              "(male & non_caucasian) and (female & caucasian)\n\n",
              scenario.table.num_rows());

  std::printf("--- marginal audits (what a naive review would run) ---\n");
  for (const char* attribute : {"gender", "race"}) {
    audit::AuditConfig config;
    config.protected_column = attribute;
    config.prediction_column = "promoted";
    audit::AuditResult result =
        audit::RunAudit(scenario.table, config).ValueOrDie();
    const auto* dp = result.Find("demographic_parity").ValueOrDie();
    std::printf("  %-7s: dp_gap=%.4f -> %s\n", attribute,
                dp->max_gap, dp->satisfied ? "looks fair" : "VIOLATED");
  }

  std::printf("\n--- subgroup audit at depth 2 (SS IV-C) ---\n");
  audit::SubgroupAuditOptions subgroup_options;
  subgroup_options.max_depth = 2;
  subgroup_options.tolerance = 0.05;
  audit::SubgroupAuditResult subgroups =
      audit::AuditSubgroups(scenario.table, {"gender", "race"}, "promoted",
                            subgroup_options)
          .ValueOrDie();
  std::printf("examined %zu conjunctions; violations:\n",
              subgroups.subgroups_examined);
  for (const auto& finding : subgroups.Violations(0.05)) {
    std::printf("  %-45s n=%-6zu rate=%.4f (overall %.4f) gap=%.4f\n",
                finding.subgroup.ToString().c_str(), finding.count,
                finding.selection_rate, finding.overall_rate, finding.gap);
  }

  std::printf("\n--- sampling adequacy of the subgroup estimates (SS IV-F) "
              "---\n");
  fairlaw::metrics::MetricInput input =
      audit::MetricInputFromTable(scenario.table, "gender", "promoted", "")
          .ValueOrDie();
  // Re-key by the intersectional cell for the support check.
  const auto* race_col = scenario.table.GetColumn("race").ValueOrDie();
  for (size_t i = 0; i < input.groups.size(); ++i) {
    input.groups[i] += "|" + race_col->GetString(i).ValueOrDie();
  }
  audit::SamplingReport sampling =
      audit::AssessSamplingAdequacy(input).ValueOrDie();
  for (const auto& support : sampling.groups) {
    std::printf("  %-28s n=%-6zu ci_halfwidth=%.4f %s\n",
                support.group.c_str(), support.count, support.ci_halfwidth,
                support.adequate ? "" : "<- too small to trust");
  }
  return 0;
}
