// §IV-D demo: the same decision loop run twice — once letting the model
// retrain on its own decisions unchecked, once with demographic-parity
// thresholds applied at every round — printing the gap trajectory side
// by side.
#include <cstdio>

#include "simulation/feedback_loop.h"

int main() {
  using fairlaw::sim::FeedbackLoopOptions;
  using fairlaw::sim::FeedbackLoopResult;
  using fairlaw::sim::LoopMitigation;
  using fairlaw::sim::RunFeedbackLoop;
  using fairlaw::stats::Rng;

  FeedbackLoopOptions options;
  options.initial_n = 3000;
  options.applicants_per_round = 1500;
  options.rounds = 10;
  options.label_bias = 1.3;
  options.proxy_strength = 1.3;
  options.discouragement = 0.8;

  Rng rng_plain(7);
  FeedbackLoopResult plain =
      RunFeedbackLoop(options, &rng_plain).ValueOrDie();

  options.mitigation = LoopMitigation::kGroupThresholds;
  Rng rng_fixed(7);
  FeedbackLoopResult mitigated =
      RunFeedbackLoop(options, &rng_fixed).ValueOrDie();

  std::printf("feedback loop: retrain-on-own-decisions hiring, 10 rounds\n");
  std::printf("%-6s | %-22s | %-22s\n", "", "unmitigated", "DP thresholds");
  std::printf("%-6s | %-10s %-10s | %-10s %-10s\n", "round", "dp_gap",
              "f_share", "dp_gap", "f_share");
  for (size_t r = 0; r < plain.rounds.size(); ++r) {
    std::printf("%-6d | %-10.4f %-10.4f | %-10.4f %-10.4f\n",
                plain.rounds[r].round, plain.rounds[r].dp_gap,
                plain.rounds[r].female_applicant_share,
                mitigated.rounds[r].dp_gap,
                mitigated.rounds[r].female_applicant_share);
  }
  std::printf("\nunmitigated gap drift: %+.4f; mitigated: %+.4f\n",
              plain.gap_drift, mitigated.gap_drift);
  std::printf("The unmitigated column shows the self-reinforcing process "
              "of SS IV-D: biased decisions become labels, rejected "
              "groups stop applying. The mitigated column shows the loop "
              "flattened by per-round parity thresholds.\n");
  return 0;
}
