// Fairness in rankings (the recommendation setting of Pitoura et al.,
// the survey the paper cites): audit group exposure in a score-ordered
// candidate list, then re-rank under a prefix quota and show the
// exposure recover. Finishes by exporting the before/after audits as
// JSON for a compliance archive.
#include <algorithm>
#include <cstdio>

#include "core/json.h"
#include "metrics/ranking_metrics.h"
#include "stats/rng.h"

int main() {
  using fairlaw::stats::Rng;
  namespace metrics = fairlaw::metrics;

  // Candidate pool: group b's scores are depressed by historical bias,
  // so a pure score ranking stacks them at the bottom.
  Rng rng(17);
  const size_t n = 60;
  std::vector<std::string> groups(n);
  std::vector<double> scores(n);
  for (size_t i = 0; i < n; ++i) {
    bool b = rng.Bernoulli(0.5);
    groups[i] = b ? "b" : "a";
    scores[i] = rng.Normal(b ? -1.0 : 0.5, 0.8);
  }
  std::vector<size_t> score_order(n);
  for (size_t i = 0; i < n; ++i) score_order[i] = i;
  std::sort(score_order.begin(), score_order.end(),
            [&scores](size_t x, size_t y) { return scores[x] > scores[y]; });

  auto ranked_groups = [&groups](const std::vector<size_t>& order) {
    std::vector<std::string> out;
    out.reserve(order.size());
    for (size_t index : order) out.push_back(groups[index]);
    return out;
  };

  std::printf("--- pure score ranking ---\n");
  metrics::RankingFairnessReport before =
      metrics::ExposureFairness(ranked_groups(score_order)).ValueOrDie();
  for (const auto& exposure : before.groups) {
    std::printf("  group %s: share=%.3f exposure_share=%.3f ratio=%.3f\n",
                exposure.group.c_str(), exposure.population_share,
                exposure.exposure_share, exposure.exposure_ratio);
  }
  std::printf("  verdict: %s  %s\n", before.satisfied ? "fair" : "UNFAIR",
              before.detail.c_str());
  metrics::PrefixParityReport prefix_before =
      metrics::TopKParity(ranked_groups(score_order), {5, 10, 20})
          .ValueOrDie();
  std::printf("  worst prefix gap %.3f at top-%zu (group %s)\n\n",
              prefix_before.max_gap, prefix_before.worst_prefix,
              prefix_before.worst_group.c_str());

  std::printf("--- fair re-rank with a 40%% prefix quota for group b ---\n");
  std::vector<size_t> fair_order =
      metrics::FairRerank(groups, scores, {{"b", 0.4}}).ValueOrDie();
  metrics::RankingFairnessReport after =
      metrics::ExposureFairness(ranked_groups(fair_order)).ValueOrDie();
  for (const auto& exposure : after.groups) {
    std::printf("  group %s: exposure ratio %.3f\n", exposure.group.c_str(),
                exposure.exposure_ratio);
  }
  std::printf("  verdict: %s\n\n", after.satisfied ? "fair" : "UNFAIR");

  // Compliance archive: both audits as JSON.
  fairlaw::JsonWriter json;
  json.BeginObject();
  json.Field("before_min_exposure_ratio", before.min_exposure_ratio);
  json.Field("after_min_exposure_ratio", after.min_exposure_ratio);
  json.Field("quota_group", std::string("b"));
  json.Field("quota_share", 0.4);
  json.EndObject();
  std::printf("archive: %s\n", json.Finish().ValueOrDie().c_str());
  return 0;
}
