
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/auditor.cc" "src/CMakeFiles/fairlaw.dir/audit/auditor.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/audit/auditor.cc.o.d"
  "/root/repo/src/audit/manipulation.cc" "src/CMakeFiles/fairlaw.dir/audit/manipulation.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/audit/manipulation.cc.o.d"
  "/root/repo/src/audit/proxy.cc" "src/CMakeFiles/fairlaw.dir/audit/proxy.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/audit/proxy.cc.o.d"
  "/root/repo/src/audit/representation.cc" "src/CMakeFiles/fairlaw.dir/audit/representation.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/audit/representation.cc.o.d"
  "/root/repo/src/audit/sampling_adequacy.cc" "src/CMakeFiles/fairlaw.dir/audit/sampling_adequacy.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/audit/sampling_adequacy.cc.o.d"
  "/root/repo/src/audit/subgroup.cc" "src/CMakeFiles/fairlaw.dir/audit/subgroup.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/audit/subgroup.cc.o.d"
  "/root/repo/src/base/status.cc" "src/CMakeFiles/fairlaw.dir/base/status.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/base/status.cc.o.d"
  "/root/repo/src/base/string_util.cc" "src/CMakeFiles/fairlaw.dir/base/string_util.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/base/string_util.cc.o.d"
  "/root/repo/src/causal/counterfactual.cc" "src/CMakeFiles/fairlaw.dir/causal/counterfactual.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/causal/counterfactual.cc.o.d"
  "/root/repo/src/causal/graph_analysis.cc" "src/CMakeFiles/fairlaw.dir/causal/graph_analysis.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/causal/graph_analysis.cc.o.d"
  "/root/repo/src/causal/scm.cc" "src/CMakeFiles/fairlaw.dir/causal/scm.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/causal/scm.cc.o.d"
  "/root/repo/src/core/json.cc" "src/CMakeFiles/fairlaw.dir/core/json.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/core/json.cc.o.d"
  "/root/repo/src/core/registry.cc" "src/CMakeFiles/fairlaw.dir/core/registry.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/core/registry.cc.o.d"
  "/root/repo/src/core/suite.cc" "src/CMakeFiles/fairlaw.dir/core/suite.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/core/suite.cc.o.d"
  "/root/repo/src/data/column.cc" "src/CMakeFiles/fairlaw.dir/data/column.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/data/column.cc.o.d"
  "/root/repo/src/data/csv.cc" "src/CMakeFiles/fairlaw.dir/data/csv.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/data/csv.cc.o.d"
  "/root/repo/src/data/group_by.cc" "src/CMakeFiles/fairlaw.dir/data/group_by.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/data/group_by.cc.o.d"
  "/root/repo/src/data/impute.cc" "src/CMakeFiles/fairlaw.dir/data/impute.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/data/impute.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/CMakeFiles/fairlaw.dir/data/schema.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/data/schema.cc.o.d"
  "/root/repo/src/data/table.cc" "src/CMakeFiles/fairlaw.dir/data/table.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/data/table.cc.o.d"
  "/root/repo/src/legal/burden_shifting.cc" "src/CMakeFiles/fairlaw.dir/legal/burden_shifting.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/burden_shifting.cc.o.d"
  "/root/repo/src/legal/checklist.cc" "src/CMakeFiles/fairlaw.dir/legal/checklist.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/checklist.cc.o.d"
  "/root/repo/src/legal/doctrine.cc" "src/CMakeFiles/fairlaw.dir/legal/doctrine.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/doctrine.cc.o.d"
  "/root/repo/src/legal/four_fifths.cc" "src/CMakeFiles/fairlaw.dir/legal/four_fifths.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/four_fifths.cc.o.d"
  "/root/repo/src/legal/jurisdiction.cc" "src/CMakeFiles/fairlaw.dir/legal/jurisdiction.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/jurisdiction.cc.o.d"
  "/root/repo/src/legal/proportionality.cc" "src/CMakeFiles/fairlaw.dir/legal/proportionality.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/proportionality.cc.o.d"
  "/root/repo/src/legal/report.cc" "src/CMakeFiles/fairlaw.dir/legal/report.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/legal/report.cc.o.d"
  "/root/repo/src/metrics/calibration_metric.cc" "src/CMakeFiles/fairlaw.dir/metrics/calibration_metric.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/calibration_metric.cc.o.d"
  "/root/repo/src/metrics/conditional_metrics.cc" "src/CMakeFiles/fairlaw.dir/metrics/conditional_metrics.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/conditional_metrics.cc.o.d"
  "/root/repo/src/metrics/counterfactual_fairness.cc" "src/CMakeFiles/fairlaw.dir/metrics/counterfactual_fairness.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/counterfactual_fairness.cc.o.d"
  "/root/repo/src/metrics/fairness_metric.cc" "src/CMakeFiles/fairlaw.dir/metrics/fairness_metric.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/fairness_metric.cc.o.d"
  "/root/repo/src/metrics/group_metrics.cc" "src/CMakeFiles/fairlaw.dir/metrics/group_metrics.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/group_metrics.cc.o.d"
  "/root/repo/src/metrics/impossibility.cc" "src/CMakeFiles/fairlaw.dir/metrics/impossibility.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/impossibility.cc.o.d"
  "/root/repo/src/metrics/individual_fairness.cc" "src/CMakeFiles/fairlaw.dir/metrics/individual_fairness.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/individual_fairness.cc.o.d"
  "/root/repo/src/metrics/inequality_indices.cc" "src/CMakeFiles/fairlaw.dir/metrics/inequality_indices.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/inequality_indices.cc.o.d"
  "/root/repo/src/metrics/ranking_metrics.cc" "src/CMakeFiles/fairlaw.dir/metrics/ranking_metrics.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/metrics/ranking_metrics.cc.o.d"
  "/root/repo/src/mitigation/di_remover.cc" "src/CMakeFiles/fairlaw.dir/mitigation/di_remover.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/di_remover.cc.o.d"
  "/root/repo/src/mitigation/group_blind_repair.cc" "src/CMakeFiles/fairlaw.dir/mitigation/group_blind_repair.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/group_blind_repair.cc.o.d"
  "/root/repo/src/mitigation/group_calibrator.cc" "src/CMakeFiles/fairlaw.dir/mitigation/group_calibrator.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/group_calibrator.cc.o.d"
  "/root/repo/src/mitigation/quota.cc" "src/CMakeFiles/fairlaw.dir/mitigation/quota.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/quota.cc.o.d"
  "/root/repo/src/mitigation/randomized_eodds.cc" "src/CMakeFiles/fairlaw.dir/mitigation/randomized_eodds.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/randomized_eodds.cc.o.d"
  "/root/repo/src/mitigation/regularized_lr.cc" "src/CMakeFiles/fairlaw.dir/mitigation/regularized_lr.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/regularized_lr.cc.o.d"
  "/root/repo/src/mitigation/reweighing.cc" "src/CMakeFiles/fairlaw.dir/mitigation/reweighing.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/reweighing.cc.o.d"
  "/root/repo/src/mitigation/sampling.cc" "src/CMakeFiles/fairlaw.dir/mitigation/sampling.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/sampling.cc.o.d"
  "/root/repo/src/mitigation/threshold_optimizer.cc" "src/CMakeFiles/fairlaw.dir/mitigation/threshold_optimizer.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/mitigation/threshold_optimizer.cc.o.d"
  "/root/repo/src/ml/calibration.cc" "src/CMakeFiles/fairlaw.dir/ml/calibration.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/calibration.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "src/CMakeFiles/fairlaw.dir/ml/classifier.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/classifier.cc.o.d"
  "/root/repo/src/ml/cross_validation.cc" "src/CMakeFiles/fairlaw.dir/ml/cross_validation.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/cross_validation.cc.o.d"
  "/root/repo/src/ml/dataset.cc" "src/CMakeFiles/fairlaw.dir/ml/dataset.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/dataset.cc.o.d"
  "/root/repo/src/ml/decision_tree.cc" "src/CMakeFiles/fairlaw.dir/ml/decision_tree.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/decision_tree.cc.o.d"
  "/root/repo/src/ml/feature_importance.cc" "src/CMakeFiles/fairlaw.dir/ml/feature_importance.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/feature_importance.cc.o.d"
  "/root/repo/src/ml/isotonic.cc" "src/CMakeFiles/fairlaw.dir/ml/isotonic.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/isotonic.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/CMakeFiles/fairlaw.dir/ml/knn.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/knn.cc.o.d"
  "/root/repo/src/ml/logistic_regression.cc" "src/CMakeFiles/fairlaw.dir/ml/logistic_regression.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/logistic_regression.cc.o.d"
  "/root/repo/src/ml/model_eval.cc" "src/CMakeFiles/fairlaw.dir/ml/model_eval.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/model_eval.cc.o.d"
  "/root/repo/src/ml/naive_bayes.cc" "src/CMakeFiles/fairlaw.dir/ml/naive_bayes.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/naive_bayes.cc.o.d"
  "/root/repo/src/ml/random_forest.cc" "src/CMakeFiles/fairlaw.dir/ml/random_forest.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/random_forest.cc.o.d"
  "/root/repo/src/ml/split.cc" "src/CMakeFiles/fairlaw.dir/ml/split.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/split.cc.o.d"
  "/root/repo/src/ml/standardizer.cc" "src/CMakeFiles/fairlaw.dir/ml/standardizer.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/ml/standardizer.cc.o.d"
  "/root/repo/src/simulation/adversary.cc" "src/CMakeFiles/fairlaw.dir/simulation/adversary.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/simulation/adversary.cc.o.d"
  "/root/repo/src/simulation/feedback_loop.cc" "src/CMakeFiles/fairlaw.dir/simulation/feedback_loop.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/simulation/feedback_loop.cc.o.d"
  "/root/repo/src/simulation/scenarios.cc" "src/CMakeFiles/fairlaw.dir/simulation/scenarios.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/simulation/scenarios.cc.o.d"
  "/root/repo/src/stats/bootstrap.cc" "src/CMakeFiles/fairlaw.dir/stats/bootstrap.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/bootstrap.cc.o.d"
  "/root/repo/src/stats/descriptive.cc" "src/CMakeFiles/fairlaw.dir/stats/descriptive.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/descriptive.cc.o.d"
  "/root/repo/src/stats/distance.cc" "src/CMakeFiles/fairlaw.dir/stats/distance.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/distance.cc.o.d"
  "/root/repo/src/stats/empirical.cc" "src/CMakeFiles/fairlaw.dir/stats/empirical.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/empirical.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/fairlaw.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/hypothesis.cc" "src/CMakeFiles/fairlaw.dir/stats/hypothesis.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/hypothesis.cc.o.d"
  "/root/repo/src/stats/mmd.cc" "src/CMakeFiles/fairlaw.dir/stats/mmd.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/mmd.cc.o.d"
  "/root/repo/src/stats/ot.cc" "src/CMakeFiles/fairlaw.dir/stats/ot.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/ot.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/CMakeFiles/fairlaw.dir/stats/rng.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/rng.cc.o.d"
  "/root/repo/src/stats/sample_complexity.cc" "src/CMakeFiles/fairlaw.dir/stats/sample_complexity.cc.o" "gcc" "src/CMakeFiles/fairlaw.dir/stats/sample_complexity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
