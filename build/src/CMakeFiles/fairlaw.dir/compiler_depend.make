# Empty compiler generated dependencies file for fairlaw.
# This may be replaced when dependencies are built.
