file(REMOVE_RECURSE
  "libfairlaw.a"
)
