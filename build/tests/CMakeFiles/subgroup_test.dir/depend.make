# Empty dependencies file for subgroup_test.
# This may be replaced when dependencies are built.
