file(REMOVE_RECURSE
  "CMakeFiles/subgroup_test.dir/subgroup_test.cc.o"
  "CMakeFiles/subgroup_test.dir/subgroup_test.cc.o.d"
  "subgroup_test"
  "subgroup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/subgroup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
