# Empty dependencies file for isotonic_calibrator_test.
# This may be replaced when dependencies are built.
