file(REMOVE_RECURSE
  "CMakeFiles/isotonic_calibrator_test.dir/isotonic_calibrator_test.cc.o"
  "CMakeFiles/isotonic_calibrator_test.dir/isotonic_calibrator_test.cc.o.d"
  "isotonic_calibrator_test"
  "isotonic_calibrator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/isotonic_calibrator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
