file(REMOVE_RECURSE
  "CMakeFiles/conditional_metrics_test.dir/conditional_metrics_test.cc.o"
  "CMakeFiles/conditional_metrics_test.dir/conditional_metrics_test.cc.o.d"
  "conditional_metrics_test"
  "conditional_metrics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conditional_metrics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
