file(REMOVE_RECURSE
  "CMakeFiles/sampling_mitigation_test.dir/sampling_mitigation_test.cc.o"
  "CMakeFiles/sampling_mitigation_test.dir/sampling_mitigation_test.cc.o.d"
  "sampling_mitigation_test"
  "sampling_mitigation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_mitigation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
