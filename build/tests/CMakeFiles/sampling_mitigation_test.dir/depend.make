# Empty dependencies file for sampling_mitigation_test.
# This may be replaced when dependencies are built.
