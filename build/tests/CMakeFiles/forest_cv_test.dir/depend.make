# Empty dependencies file for forest_cv_test.
# This may be replaced when dependencies are built.
