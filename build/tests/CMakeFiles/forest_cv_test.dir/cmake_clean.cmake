file(REMOVE_RECURSE
  "CMakeFiles/forest_cv_test.dir/forest_cv_test.cc.o"
  "CMakeFiles/forest_cv_test.dir/forest_cv_test.cc.o.d"
  "forest_cv_test"
  "forest_cv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/forest_cv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
