# Empty dependencies file for admissions_calibration_test.
# This may be replaced when dependencies are built.
