# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for admissions_calibration_test.
