file(REMOVE_RECURSE
  "CMakeFiles/admissions_calibration_test.dir/admissions_calibration_test.cc.o"
  "CMakeFiles/admissions_calibration_test.dir/admissions_calibration_test.cc.o.d"
  "admissions_calibration_test"
  "admissions_calibration_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admissions_calibration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
