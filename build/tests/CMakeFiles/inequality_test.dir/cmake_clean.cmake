file(REMOVE_RECURSE
  "CMakeFiles/inequality_test.dir/inequality_test.cc.o"
  "CMakeFiles/inequality_test.dir/inequality_test.cc.o.d"
  "inequality_test"
  "inequality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inequality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
