# Empty compiler generated dependencies file for inequality_test.
# This may be replaced when dependencies are built.
