# Empty compiler generated dependencies file for impossibility_test.
# This may be replaced when dependencies are built.
