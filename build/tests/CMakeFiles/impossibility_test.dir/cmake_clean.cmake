file(REMOVE_RECURSE
  "CMakeFiles/impossibility_test.dir/impossibility_test.cc.o"
  "CMakeFiles/impossibility_test.dir/impossibility_test.cc.o.d"
  "impossibility_test"
  "impossibility_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/impossibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
