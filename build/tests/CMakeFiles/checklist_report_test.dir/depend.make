# Empty dependencies file for checklist_report_test.
# This may be replaced when dependencies are built.
