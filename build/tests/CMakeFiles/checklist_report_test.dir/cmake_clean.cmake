file(REMOVE_RECURSE
  "CMakeFiles/checklist_report_test.dir/checklist_report_test.cc.o"
  "CMakeFiles/checklist_report_test.dir/checklist_report_test.cc.o.d"
  "checklist_report_test"
  "checklist_report_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/checklist_report_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
