# Empty dependencies file for feedback_loop_test.
# This may be replaced when dependencies are built.
