file(REMOVE_RECURSE
  "CMakeFiles/feedback_loop_test.dir/feedback_loop_test.cc.o"
  "CMakeFiles/feedback_loop_test.dir/feedback_loop_test.cc.o.d"
  "feedback_loop_test"
  "feedback_loop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feedback_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
