# Empty dependencies file for ot_test.
# This may be replaced when dependencies are built.
