file(REMOVE_RECURSE
  "CMakeFiles/ot_test.dir/ot_test.cc.o"
  "CMakeFiles/ot_test.dir/ot_test.cc.o.d"
  "ot_test"
  "ot_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ot_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
