# Empty compiler generated dependencies file for individual_fairness_test.
# This may be replaced when dependencies are built.
