file(REMOVE_RECURSE
  "CMakeFiles/individual_fairness_test.dir/individual_fairness_test.cc.o"
  "CMakeFiles/individual_fairness_test.dir/individual_fairness_test.cc.o.d"
  "individual_fairness_test"
  "individual_fairness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/individual_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
