file(REMOVE_RECURSE
  "CMakeFiles/mmd_test.dir/mmd_test.cc.o"
  "CMakeFiles/mmd_test.dir/mmd_test.cc.o.d"
  "mmd_test"
  "mmd_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mmd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
