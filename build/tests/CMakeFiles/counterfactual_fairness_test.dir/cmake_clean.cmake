file(REMOVE_RECURSE
  "CMakeFiles/counterfactual_fairness_test.dir/counterfactual_fairness_test.cc.o"
  "CMakeFiles/counterfactual_fairness_test.dir/counterfactual_fairness_test.cc.o.d"
  "counterfactual_fairness_test"
  "counterfactual_fairness_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counterfactual_fairness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
