# Empty dependencies file for randomized_eodds_test.
# This may be replaced when dependencies are built.
