file(REMOVE_RECURSE
  "CMakeFiles/randomized_eodds_test.dir/randomized_eodds_test.cc.o"
  "CMakeFiles/randomized_eodds_test.dir/randomized_eodds_test.cc.o.d"
  "randomized_eodds_test"
  "randomized_eodds_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/randomized_eodds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
