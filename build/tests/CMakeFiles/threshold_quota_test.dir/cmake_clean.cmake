file(REMOVE_RECURSE
  "CMakeFiles/threshold_quota_test.dir/threshold_quota_test.cc.o"
  "CMakeFiles/threshold_quota_test.dir/threshold_quota_test.cc.o.d"
  "threshold_quota_test"
  "threshold_quota_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_quota_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
