# Empty dependencies file for threshold_quota_test.
# This may be replaced when dependencies are built.
