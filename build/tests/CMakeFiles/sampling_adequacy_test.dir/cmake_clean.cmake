file(REMOVE_RECURSE
  "CMakeFiles/sampling_adequacy_test.dir/sampling_adequacy_test.cc.o"
  "CMakeFiles/sampling_adequacy_test.dir/sampling_adequacy_test.cc.o.d"
  "sampling_adequacy_test"
  "sampling_adequacy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_adequacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
