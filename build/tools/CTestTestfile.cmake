# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tools_audit_help "/root/repo/build/tools/fairlaw_audit" "--help")
set_tests_properties(tools_audit_help PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_generate_stdout "/root/repo/build/tools/fairlaw_generate" "hiring" "--n=50")
set_tests_properties(tools_generate_stdout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tools_audit_missing_args "/root/repo/build/tools/fairlaw_audit")
set_tests_properties(tools_audit_missing_args PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
