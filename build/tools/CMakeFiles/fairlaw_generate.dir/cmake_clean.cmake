file(REMOVE_RECURSE
  "CMakeFiles/fairlaw_generate.dir/fairlaw_generate.cc.o"
  "CMakeFiles/fairlaw_generate.dir/fairlaw_generate.cc.o.d"
  "fairlaw_generate"
  "fairlaw_generate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairlaw_generate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
