# Empty compiler generated dependencies file for fairlaw_generate.
# This may be replaced when dependencies are built.
