file(REMOVE_RECURSE
  "CMakeFiles/fairlaw_audit.dir/fairlaw_audit.cc.o"
  "CMakeFiles/fairlaw_audit.dir/fairlaw_audit.cc.o.d"
  "fairlaw_audit"
  "fairlaw_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fairlaw_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
