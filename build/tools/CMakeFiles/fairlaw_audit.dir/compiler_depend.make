# Empty compiler generated dependencies file for fairlaw_audit.
# This may be replaced when dependencies are built.
