# Empty compiler generated dependencies file for example_ranking_fairness.
# This may be replaced when dependencies are built.
