file(REMOVE_RECURSE
  "CMakeFiles/example_ranking_fairness.dir/ranking_fairness.cpp.o"
  "CMakeFiles/example_ranking_fairness.dir/ranking_fairness.cpp.o.d"
  "example_ranking_fairness"
  "example_ranking_fairness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_ranking_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
