file(REMOVE_RECURSE
  "CMakeFiles/example_intersectional_promotion.dir/intersectional_promotion.cpp.o"
  "CMakeFiles/example_intersectional_promotion.dir/intersectional_promotion.cpp.o.d"
  "example_intersectional_promotion"
  "example_intersectional_promotion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_intersectional_promotion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
