# Empty compiler generated dependencies file for example_intersectional_promotion.
# This may be replaced when dependencies are built.
