file(REMOVE_RECURSE
  "CMakeFiles/example_lending_feedback_loop.dir/lending_feedback_loop.cpp.o"
  "CMakeFiles/example_lending_feedback_loop.dir/lending_feedback_loop.cpp.o.d"
  "example_lending_feedback_loop"
  "example_lending_feedback_loop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_lending_feedback_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
