# Empty compiler generated dependencies file for example_lending_feedback_loop.
# This may be replaced when dependencies are built.
