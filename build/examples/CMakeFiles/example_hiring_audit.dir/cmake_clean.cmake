file(REMOVE_RECURSE
  "CMakeFiles/example_hiring_audit.dir/hiring_audit.cpp.o"
  "CMakeFiles/example_hiring_audit.dir/hiring_audit.cpp.o.d"
  "example_hiring_audit"
  "example_hiring_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_hiring_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
