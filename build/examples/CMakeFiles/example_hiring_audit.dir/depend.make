# Empty dependencies file for example_hiring_audit.
# This may be replaced when dependencies are built.
