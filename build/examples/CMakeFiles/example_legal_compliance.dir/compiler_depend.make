# Empty compiler generated dependencies file for example_legal_compliance.
# This may be replaced when dependencies are built.
