file(REMOVE_RECURSE
  "CMakeFiles/example_legal_compliance.dir/legal_compliance.cpp.o"
  "CMakeFiles/example_legal_compliance.dir/legal_compliance.cpp.o.d"
  "example_legal_compliance"
  "example_legal_compliance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_legal_compliance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
