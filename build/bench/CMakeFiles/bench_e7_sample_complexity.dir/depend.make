# Empty dependencies file for bench_e7_sample_complexity.
# This may be replaced when dependencies are built.
