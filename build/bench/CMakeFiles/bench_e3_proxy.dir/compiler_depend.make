# Empty compiler generated dependencies file for bench_e3_proxy.
# This may be replaced when dependencies are built.
