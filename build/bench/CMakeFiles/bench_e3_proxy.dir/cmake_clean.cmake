file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_proxy.dir/bench_e3_proxy.cc.o"
  "CMakeFiles/bench_e3_proxy.dir/bench_e3_proxy.cc.o.d"
  "bench_e3_proxy"
  "bench_e3_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
