file(REMOVE_RECURSE
  "CMakeFiles/bench_e5_feedback.dir/bench_e5_feedback.cc.o"
  "CMakeFiles/bench_e5_feedback.dir/bench_e5_feedback.cc.o.d"
  "bench_e5_feedback"
  "bench_e5_feedback.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_feedback.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
