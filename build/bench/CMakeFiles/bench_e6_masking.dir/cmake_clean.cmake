file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_masking.dir/bench_e6_masking.cc.o"
  "CMakeFiles/bench_e6_masking.dir/bench_e6_masking.cc.o.d"
  "bench_e6_masking"
  "bench_e6_masking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_masking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
