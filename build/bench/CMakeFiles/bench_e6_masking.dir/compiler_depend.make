# Empty compiler generated dependencies file for bench_e6_masking.
# This may be replaced when dependencies are built.
