file(REMOVE_RECURSE
  "CMakeFiles/bench_e2_treatment_outcome.dir/bench_e2_treatment_outcome.cc.o"
  "CMakeFiles/bench_e2_treatment_outcome.dir/bench_e2_treatment_outcome.cc.o.d"
  "bench_e2_treatment_outcome"
  "bench_e2_treatment_outcome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_treatment_outcome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
