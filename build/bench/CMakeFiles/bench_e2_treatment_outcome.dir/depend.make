# Empty dependencies file for bench_e2_treatment_outcome.
# This may be replaced when dependencies are built.
