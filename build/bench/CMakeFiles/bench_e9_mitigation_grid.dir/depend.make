# Empty dependencies file for bench_e9_mitigation_grid.
# This may be replaced when dependencies are built.
