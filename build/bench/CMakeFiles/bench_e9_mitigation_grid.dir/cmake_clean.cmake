file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_mitigation_grid.dir/bench_e9_mitigation_grid.cc.o"
  "CMakeFiles/bench_e9_mitigation_grid.dir/bench_e9_mitigation_grid.cc.o.d"
  "bench_e9_mitigation_grid"
  "bench_e9_mitigation_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_mitigation_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
