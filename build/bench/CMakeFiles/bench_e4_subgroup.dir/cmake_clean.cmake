file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_subgroup.dir/bench_e4_subgroup.cc.o"
  "CMakeFiles/bench_e4_subgroup.dir/bench_e4_subgroup.cc.o.d"
  "bench_e4_subgroup"
  "bench_e4_subgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_subgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
