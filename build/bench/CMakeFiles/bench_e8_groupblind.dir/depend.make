# Empty dependencies file for bench_e8_groupblind.
# This may be replaced when dependencies are built.
