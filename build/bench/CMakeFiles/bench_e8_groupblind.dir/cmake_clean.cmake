file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_groupblind.dir/bench_e8_groupblind.cc.o"
  "CMakeFiles/bench_e8_groupblind.dir/bench_e8_groupblind.cc.o.d"
  "bench_e8_groupblind"
  "bench_e8_groupblind.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_groupblind.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
