file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_definitions.dir/bench_e1_definitions.cc.o"
  "CMakeFiles/bench_e1_definitions.dir/bench_e1_definitions.cc.o.d"
  "bench_e1_definitions"
  "bench_e1_definitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_definitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
