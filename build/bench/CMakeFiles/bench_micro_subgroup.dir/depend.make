# Empty dependencies file for bench_micro_subgroup.
# This may be replaced when dependencies are built.
