file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_subgroup.dir/bench_micro_subgroup.cc.o"
  "CMakeFiles/bench_micro_subgroup.dir/bench_micro_subgroup.cc.o.d"
  "bench_micro_subgroup"
  "bench_micro_subgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_subgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
