file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_subgroup.dir/bench_ablation_subgroup.cc.o"
  "CMakeFiles/bench_ablation_subgroup.dir/bench_ablation_subgroup.cc.o.d"
  "bench_ablation_subgroup"
  "bench_ablation_subgroup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_subgroup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
