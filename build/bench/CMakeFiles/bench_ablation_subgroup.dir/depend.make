# Empty dependencies file for bench_ablation_subgroup.
# This may be replaced when dependencies are built.
