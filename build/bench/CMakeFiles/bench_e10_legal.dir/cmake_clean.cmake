file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_legal.dir/bench_e10_legal.cc.o"
  "CMakeFiles/bench_e10_legal.dir/bench_e10_legal.cc.o.d"
  "bench_e10_legal"
  "bench_e10_legal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_legal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
