#include "tools/cli.h"

#include <algorithm>

#include "base/string_util.h"

namespace fairlaw::cli {
namespace {

/// Renders a double compactly for help text and range messages:
/// FormatDouble's fixed four digits with trailing zeros (and a bare
/// trailing dot) trimmed, so 0.0500 -> "0.05" and 1.0000 -> "1".
std::string TrimmedDouble(double value) {
  std::string text = FormatDouble(value, 4);
  if (text.find('.') != std::string::npos) {
    size_t end = text.size();
    while (end > 0 && text[end - 1] == '0') --end;
    if (end > 0 && text[end - 1] == '.') --end;
    text.resize(end);
  }
  return text;
}

}  // namespace

const char* Flag<std::string>::Hint() { return "VALUE"; }
Result<std::string> Flag<std::string>::Parse(std::string_view text) {
  return std::string(text);
}
std::string Flag<std::string>::Render(const std::string& value) {
  return value;
}

const char* Flag<bool>::Hint() { return ""; }
Result<bool> Flag<bool>::Parse(std::string_view text) {
  if (text.empty()) return true;  // bare "--flag" means set
  return ParseBool(text);
}
std::string Flag<bool>::Render(const bool& value) {
  // Presence flags default to false; showing "(default: false)" on
  // every one of them is noise.
  return value ? "true" : "";
}

const char* Flag<double>::Hint() { return "F"; }
Result<double> Flag<double>::Parse(std::string_view text) {
  return ParseDouble(text);
}
std::string Flag<double>::Render(const double& value) {
  return TrimmedDouble(value);
}

const char* Flag<int64_t>::Hint() { return "N"; }
Result<int64_t> Flag<int64_t>::Parse(std::string_view text) {
  return ParseInt64(text);
}
std::string Flag<int64_t>::Render(const int64_t& value) {
  return std::to_string(value);
}

const char* Flag<uint64_t>::Hint() { return "N"; }
Result<uint64_t> Flag<uint64_t>::Parse(std::string_view text) {
  FAIRLAW_ASSIGN_OR_RETURN(int64_t parsed, ParseInt64(text));
  if (parsed < 0) {
    return Status::Invalid("value must be >= 0, got " + std::string(text));
  }
  return static_cast<uint64_t>(parsed);
}
std::string Flag<uint64_t>::Render(const uint64_t& value) {
  return std::to_string(value);
}

const char* Flag<std::vector<std::string>>::Hint() { return "A[,B...]"; }
Result<std::vector<std::string>> Flag<std::vector<std::string>>::Parse(
    std::string_view text) {
  return Split(text, ',');
}
std::string Flag<std::vector<std::string>>::Render(
    const std::vector<std::string>& value) {
  return Join(value, ",");
}

FlagSet::FlagSet(std::string_view program, std::string_view positionals,
                 std::string_view summary)
    : program_(program), positionals_(positionals), summary_(summary) {}

void FlagSet::Register(Entry entry) { entries_.push_back(std::move(entry)); }

const FlagSet::Entry* FlagSet::Find(std::string_view name) const {
  for (const Entry& entry : entries_) {
    if (entry.name == name) return &entry;
  }
  return nullptr;
}

Result<ParseResult> FlagSet::Parse(int argc, char* const* argv) const {
  ParseResult result;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      result.help = true;
      return result;
    }
    if (arg.rfind("--", 0) == 0) {
      const std::string_view body = arg.substr(2);
      const size_t eq = body.find('=');
      const std::string_view name =
          eq == std::string_view::npos ? body : body.substr(0, eq);
      const Entry* entry = Find(name);
      if (entry == nullptr) {
        return Status::Invalid("unknown flag: --" + std::string(name) +
                               " (see --help)");
      }
      if (entry->takes_value && eq == std::string_view::npos) {
        return Status::Invalid("--" + entry->name + " requires a value (--" +
                               entry->name + "=" + entry->value_hint + ")");
      }
      const std::string_view value =
          eq == std::string_view::npos ? std::string_view()
                                       : body.substr(eq + 1);
      FAIRLAW_RETURN_NOT_OK(entry->parse(value));
    } else if (arg.size() > 1 && arg[0] == '-') {
      return Status::Invalid("unknown flag: " + std::string(arg) +
                             " (see --help)");
    } else {
      result.positionals.emplace_back(arg);
    }
  }
  return result;
}

std::string FlagSet::Help() const {
  std::string out = "usage: " + program_;
  if (!positionals_.empty()) out += " " + positionals_;
  if (!entries_.empty()) out += " [flags]";
  out += "\n";
  if (!summary_.empty()) out += "\n" + summary_ + "\n";
  if (entries_.empty()) return out;

  std::vector<std::string> lefts;
  size_t width = 0;
  for (const Entry& entry : entries_) {
    std::string left = "  --" + entry.name;
    if (entry.takes_value) left += "=" + entry.value_hint;
    width = std::max(width, left.size());
    lefts.push_back(std::move(left));
  }

  // Sections in first-registration order; the unnamed group (flags
  // added before any Section call) renders as plain "flags:".
  std::vector<std::string> sections;
  for (const Entry& entry : entries_) {
    if (std::find(sections.begin(), sections.end(), entry.section) ==
        sections.end()) {
      sections.push_back(entry.section);
    }
  }
  for (const std::string& section : sections) {
    out += "\n" + (section.empty() ? std::string("flags") : section) + ":\n";
    for (size_t i = 0; i < entries_.size(); ++i) {
      if (entries_[i].section != section) continue;
      std::string line = lefts[i];
      line.append(width + 2 - line.size(), ' ');
      line += entries_[i].help;
      if (!entries_[i].default_text.empty()) {
        line += " (default: " + entries_[i].default_text + ")";
      }
      out += line + "\n";
    }
  }
  out += "  --help";
  out.append(width + 2 > 8 ? width + 2 - 8 : 2, ' ');
  out += "show this help\n";
  return out;
}

}  // namespace fairlaw::cli
