#!/usr/bin/env python3
"""Compare fresh BENCH_*.json runs against the checked-in baselines.

Absolute nanosecond timings are not comparable across machines, so every
comparison here is a within-run ratio:

  * BENCH_subgroup.json: `speedup` and `parallel_speedup` (bitmap kernel
    vs the row-wise baseline measured in the SAME process) must not drop
    more than the threshold below the checked-in values, and
    `identical_results` must stay true.
  * BENCH_audit.json: the three engine invariants `chunk_identical`,
    `streaming_identical`, and `flat_memory_ok` must stay true (audit
    output byte-identical across chunk sizes / thread counts / ingestion
    paths, and peak RSS flat between the 1M- and 10M-row streaming
    runs), `thread_scaling` (serial vs parallel wall time in the SAME
    process) must not drop more than the threshold below the checked-in
    value — on a single-core runner the baseline itself is ~1.0, so the
    gate is honest for the machine class — and the big/small streaming
    time ratio must not grow more than the threshold above the baseline
    ratio (out-of-core cost stays linear in rows). The run must use the
    baseline's `rows`/`big_rows`.
  * BENCH_serve.json: the daemon invariants `batch_identical`,
    `thread_identical`, and `sketch_within_tolerance` must stay true
    (query responses byte-identical across ingest batch sizes and
    thread counts; window sketches agree with the exact in-window
    scores), and the two query-cost ratios `audit_query_cost_ratio` /
    `quantiles_query_cost_ratio` (query latency over amortized
    per-event ingest cost, measured in the SAME process) must not grow
    more than the threshold above the checked-in values. The run must
    use the baseline's `events`.
  * BENCH_distances.json: each kernel's time normalized by the
    `binned_total_variation` time from the same run must not grow more
    than the threshold above the checked-in ratio. The current run must
    use the baseline's `n`/`mmd_n` for the ratios to be like-for-like
    (the script fails loudly on a size mismatch rather than comparing
    noise). Additionally: `rff_within_tolerance` must stay true (the
    linear-time RFF MMD still agrees with the exact quadratic oracle),
    `mmd_rff_speedup_d256` must not drop more than the threshold below
    the baseline speedup, and — when the current run's `simd_backend` is
    not "scalar" — `simd_popcount_speedup` must stay >= 1.0 (the vector
    popcount never loses to the reference scalar kernel).

Exit codes: 0 clean, 1 regression or malformed input.

Usage:
  check_bench_regression.py --baseline-dir=. --current-dir=bench-out \
      [--threshold=0.20]
"""
import argparse
import json
import os
import sys

NORMALIZER = "binned_total_variation"


def load(path):
    try:
        with open(path) as fp:
            return json.load(fp)
    except (OSError, ValueError) as err:
        print(f"bench-regression: cannot read {path}: {err}")
        return None


def check_subgroup(baseline, current, threshold):
    failures = []
    if not current.get("identical_results", False):
        failures.append(
            "subgroup: identical_results is false — the bitmap kernel "
            "no longer matches the row-wise baseline")
    for key in ("speedup", "parallel_speedup"):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None or cur is None:
            failures.append(f"subgroup: missing field '{key}'")
            continue
        floor = base * (1.0 - threshold)
        if cur < floor:
            failures.append(
                f"subgroup: {key} regressed: {cur:.3f} < "
                f"{floor:.3f} (baseline {base:.3f} - {threshold:.0%})")
        else:
            print(f"bench-regression: subgroup {key} ok: "
                  f"{cur:.3f} vs baseline {base:.3f} (floor {floor:.3f})")
    return failures


def check_audit(baseline, current, threshold):
    failures = []
    for key in ("rows", "big_rows"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"audit: size mismatch on '{key}' "
                f"(baseline {baseline.get(key)}, current {current.get(key)}) "
                "— run the bench at baseline sizes for a valid comparison")
    if failures:
        return failures
    for key in ("chunk_identical", "streaming_identical", "flat_memory_ok"):
        if not current.get(key, False):
            failures.append(
                f"audit: {key} is false — the morsel engine broke its "
                "determinism or flat-memory contract "
                f"(rss_growth_mb={current.get('rss_growth_mb')})")
        else:
            print(f"bench-regression: audit {key} ok")

    base_scaling = baseline.get("thread_scaling")
    cur_scaling = current.get("thread_scaling")
    if base_scaling is None or cur_scaling is None:
        failures.append("audit: missing field 'thread_scaling'")
    else:
        floor = base_scaling * (1.0 - threshold)
        if cur_scaling < floor:
            failures.append(
                f"audit: thread_scaling regressed: {cur_scaling:.3f} < "
                f"{floor:.3f} (baseline {base_scaling:.3f} - {threshold:.0%})")
        else:
            print(f"bench-regression: audit thread_scaling ok: "
                  f"{cur_scaling:.3f} vs baseline {base_scaling:.3f} "
                  f"(floor {floor:.3f})")

    try:
        base_ratio = baseline["stream_big_ns"] / baseline["stream_small_ns"]
        cur_ratio = current["stream_big_ns"] / current["stream_small_ns"]
    except (KeyError, ZeroDivisionError):
        failures.append("audit: missing or zero stream_{small,big}_ns")
        return failures
    ceiling = base_ratio * (1.0 + threshold)
    if cur_ratio > ceiling:
        failures.append(
            f"audit: big/small streaming time ratio regressed: "
            f"{cur_ratio:.2f} > {ceiling:.2f} "
            f"(baseline {base_ratio:.2f} + {threshold:.0%}) — out-of-core "
            "cost is no longer linear in rows")
    else:
        print(f"bench-regression: audit streaming linearity ok: ratio "
              f"{cur_ratio:.2f} vs baseline {base_ratio:.2f} "
              f"(ceiling {ceiling:.2f})")
    return failures


def check_serve(baseline, current, threshold):
    failures = []
    if baseline.get("events") != current.get("events"):
        return [
            f"serve: size mismatch on 'events' "
            f"(baseline {baseline.get('events')}, "
            f"current {current.get('events')}) — run the bench at the "
            "baseline size for a valid comparison"]
    for key in ("batch_identical", "thread_identical"):
        if not current.get(key, False):
            failures.append(
                f"serve: {key} is false — query responses are no longer "
                "byte-identical across replays of the same event sequence")
        else:
            print(f"bench-regression: serve {key} ok")
    if not current.get("sketch_within_tolerance", False):
        failures.append(
            "serve: sketch_within_tolerance is false — the window's KLL "
            "sketches disagree with the exact in-window scores "
            f"(quantile_rank_err={current.get('quantile_rank_err')}, "
            f"distance_err={current.get('distance_err')})")
    else:
        print("bench-regression: serve sketch_within_tolerance ok")
    for key in ("audit_query_cost_ratio", "quantiles_query_cost_ratio"):
        base = baseline.get(key)
        cur = current.get(key)
        if base is None or cur is None:
            failures.append(f"serve: missing field '{key}'")
            continue
        ceiling = base * (1.0 + threshold)
        if cur > ceiling:
            failures.append(
                f"serve: {key} regressed: {cur:.0f} > {ceiling:.0f} "
                f"(baseline {base:.0f} + {threshold:.0%}) — queries got "
                "more expensive relative to ingest in the same process")
        else:
            print(f"bench-regression: serve {key} ok: "
                  f"{cur:.0f} vs baseline {base:.0f} (ceiling {ceiling:.0f})")
    return failures


def check_distances(baseline, current, threshold):
    failures = []
    for key in ("n", "mmd_n"):
        if baseline.get(key) != current.get(key):
            failures.append(
                f"distances: size mismatch on '{key}' "
                f"(baseline {baseline.get(key)}, current {current.get(key)}) "
                "— run the bench at baseline sizes for a valid comparison")
    if failures:
        return failures
    base_t = baseline.get("timings_ns", {})
    cur_t = current.get("timings_ns", {})
    if NORMALIZER not in base_t or NORMALIZER not in cur_t:
        return [f"distances: missing normalizer kernel '{NORMALIZER}'"]
    for kernel, base_ns in sorted(base_t.items()):
        if kernel == NORMALIZER:
            continue
        if kernel not in cur_t:
            failures.append(f"distances: kernel '{kernel}' missing from "
                            "current run")
            continue
        base_ratio = base_ns / base_t[NORMALIZER]
        cur_ratio = cur_t[kernel] / cur_t[NORMALIZER]
        ceiling = base_ratio * (1.0 + threshold)
        if cur_ratio > ceiling:
            failures.append(
                f"distances: {kernel}/{NORMALIZER} ratio regressed: "
                f"{cur_ratio:.2f} > {ceiling:.2f} "
                f"(baseline {base_ratio:.2f} + {threshold:.0%})")
        else:
            print(f"bench-regression: distances {kernel} ok: ratio "
                  f"{cur_ratio:.2f} vs baseline {base_ratio:.2f} "
                  f"(ceiling {ceiling:.2f})")

    if not current.get("rff_within_tolerance", False):
        failures.append(
            "distances: rff_within_tolerance is false — the RFF MMD "
            "estimate no longer agrees with the exact estimator "
            f"(abs err {current.get('rff_vs_exact_abs_err')}, tolerance "
            f"{current.get('rff_tolerance')})")

    base_speedup = baseline.get("mmd_rff_speedup_d256")
    cur_speedup = current.get("mmd_rff_speedup_d256")
    if base_speedup is None or cur_speedup is None:
        failures.append("distances: missing field 'mmd_rff_speedup_d256'")
    else:
        floor = base_speedup * (1.0 - threshold)
        if cur_speedup < floor:
            failures.append(
                f"distances: mmd_rff_speedup_d256 regressed: "
                f"{cur_speedup:.1f}x < {floor:.1f}x "
                f"(baseline {base_speedup:.1f}x - {threshold:.0%})")
        else:
            print(f"bench-regression: distances mmd_rff_speedup_d256 ok: "
                  f"{cur_speedup:.1f}x vs baseline {base_speedup:.1f}x "
                  f"(floor {floor:.1f}x)")

    backend = current.get("simd_backend", "scalar")
    if backend != "scalar":
        pop_speedup = current.get("simd_popcount_speedup")
        if pop_speedup is None:
            failures.append("distances: missing field 'simd_popcount_speedup'")
        elif pop_speedup < 1.0:
            failures.append(
                f"distances: simd_popcount_speedup {pop_speedup:.2f} < 1.0 "
                f"on backend '{backend}' — the vector popcount lost to the "
                "reference scalar kernel")
        else:
            print(f"bench-regression: distances simd_popcount_speedup ok: "
                  f"{pop_speedup:.2f}x on backend '{backend}'")
    return failures


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("--baseline-dir", default=".")
    parser.add_argument("--current-dir", required=True)
    parser.add_argument("--threshold", type=float, default=0.20)
    args = parser.parse_args()

    failures = []
    for name, checker in (("BENCH_subgroup.json", check_subgroup),
                          ("BENCH_audit.json", check_audit),
                          ("BENCH_serve.json", check_serve),
                          ("BENCH_distances.json", check_distances)):
        baseline = load(os.path.join(args.baseline_dir, name))
        current = load(os.path.join(args.current_dir, name))
        if baseline is None or current is None:
            failures.append(f"{name}: unreadable input")
            continue
        failures.extend(checker(baseline, current, args.threshold))

    if failures:
        for failure in failures:
            print(f"bench-regression: FAIL: {failure}")
        return 1
    print("bench-regression: all ratios within threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
