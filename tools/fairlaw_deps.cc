// fairlaw_deps — layering / include-graph static analysis pass.
//
//   fairlaw_deps [--root=DIR] [--json=PATH] [--dot=PATH] [--verbose]
//
// Second analysis pass next to fairlaw_lint: where lint checks local,
// per-file invariants, deps checks the architecture. It parses every
// #include in src/, tools/, tests/, bench/, and examples/, builds the
// file- and module-level dependency graphs, and enforces the declared
// layering DAG:
//
//   rank 0  base                          (no dependencies)
//   rank 1  stats
//   rank 2  data
//   rank 3  metrics, legal, causal
//   rank 4  audit, mitigation, ml, simulation, serve
//   rank 5  core                          (API aggregation: registry,
//                                          suite, umbrella header)
//   rank 6  tools, tests, bench, examples
//
// A file may include headers of its own module, of a lower-ranked
// module, or of a same-ranked module (same-rank edges are legal as long
// as the module graph stays acyclic — e.g. mitigation -> ml). `core` is
// the aggregation layer: it may depend on everything below rank 6, and
// nothing inside src/ may depend on it. Checks:
//
//   1. layering            include whose target module ranks strictly
//                          higher than the including module.
//   2. include-cycle       cycle in the file-level include graph.
//   3. module-cycle        cycle in the module-level graph (catches
//                          A -> B and B -> A through different files,
//                          which no single file-level cycle shows).
//   4. unused-include      IWYU-lite: a project header is included but
//                          none of the identifiers it provides appear in
//                          the including file. `// IWYU pragma: keep`
//                          suppresses; `// IWYU pragma: export` marks a
//                          deliberate re-export (umbrella headers).
//   5. transitive-include  IWYU-lite: a src/ file uses an identifier
//                          that only a transitively included header
//                          provides; the include should be direct.
//
// --json / --dot write the module graph (nodes with ranks, edges with
// include counts, every file-level edge) for review artifacts; the ctest
// registration emits them into the build directory on every run so
// architecture drift is visible per PR.
//
// Exit codes match fairlaw_lint: 0 = clean, 1 = violations (one per line
// as file:line: rule: msg), 2 = usage or I/O error. Directories named
// *_fixture are skipped: they hold deliberate violations for the
// negative self-tests.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/cli.h"

namespace {

namespace fs = std::filesystem;

struct ModuleSpec {
  const char* name;
  int rank;
};

// The declared layering DAG. Keep in sync with the "Layering" section of
// DESIGN.md; adding a src/ module without declaring it here is itself a
// violation (unknown-module).
constexpr ModuleSpec kModules[] = {
    {"base", 0},       {"obs", 1},        {"stats", 1},
    {"data", 2},       {"metrics", 3},    {"legal", 3},
    {"causal", 3},     {"audit", 4},      {"mitigation", 4},
    {"ml", 4},         {"simulation", 4}, {"serve", 4},
    {"core", 5},
    {"tools", 6},      {"tests", 6},      {"bench", 6},
    {"examples", 6},
};

int RankOf(const std::string& module) {
  for (const ModuleSpec& spec : kModules) {
    if (module == spec.name) return spec.rank;
  }
  return -1;
}

struct IncludeEdge {
  std::string target;  // repo-relative path of the included project file
  size_t line = 0;
  bool pragma_keep = false;    // `// IWYU pragma: keep`
  bool pragma_export = false;  // `// IWYU pragma: export`
};

struct FileInfo {
  std::string rel;     // repo-relative path, generic separators
  std::string module;  // "base", ..., "tools"
  bool is_header = false;
  std::vector<IncludeEdge> includes;  // project includes only
  /// Lenient provision set (declared names + call-heads + constants);
  /// drives the unused-include check, where over-inclusion only makes the
  /// check quieter.
  std::set<std::string> provided;
  /// Strict provision set: names actually declared here (class / struct /
  /// enum / union / using / #define). Drives the transitive-include
  /// check, where over-inclusion would mean false positives.
  std::set<std::string> declared;
  std::set<std::string> used_tokens;  // identifiers the file references
};

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Blanks comment bodies and string/char literal contents, preserving
/// newlines so byte offsets still map to the right line. Include-pragma
/// comments are read from the raw text before this runs.
std::string StripCommentsAndStrings(const std::string& text) {
  std::string out = text;
  enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
  State state = State::kCode;
  for (size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'') {
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
      case State::kChar: {
        const char quote = state == State::kString ? '"' : '\'';
        if (c == '\\' && next != '\0') {
          out[i] = ' ';
          if (next != '\n') out[i + 1] = ' ';
          ++i;
        } else if (c == quote) {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      }
    }
  }
  return out;
}

size_t LineOfOffset(std::string_view text, size_t offset) {
  size_t line = 1;
  for (size_t i = 0; i < offset && i < text.size(); ++i) {
    if (text[i] == '\n') ++line;
  }
  return line;
}

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kKeywords = {
      "alignas",   "alignof",  "auto",     "bool",      "break",
      "case",      "catch",    "char",     "class",     "const",
      "consteval", "constexpr", "continue", "decltype",  "default",
      "delete",    "do",       "double",   "else",      "enum",
      "explicit",  "export",   "extern",   "false",     "final",
      "float",     "for",      "friend",   "goto",      "if",
      "inline",    "int",      "long",     "mutable",   "namespace",
      "new",       "noexcept", "nullptr",  "operator",  "override",
      "private",   "protected", "public",  "requires",  "return",
      "short",     "signed",   "sizeof",   "static",    "struct",
      "switch",    "template", "this",     "throw",     "true",
      "try",       "typedef",  "typename", "union",     "unsigned",
      "using",     "virtual",  "void",     "volatile",  "while",
  };
  return kKeywords;
}

/// Splits stripped text into identifier tokens with their offsets.
std::vector<std::pair<std::string, size_t>> Tokenize(
    const std::string& stripped) {
  std::vector<std::pair<std::string, size_t>> tokens;
  for (size_t i = 0; i < stripped.size();) {
    if (IsIdentStart(stripped[i])) {
      size_t begin = i;
      while (i < stripped.size() && IsIdentChar(stripped[i])) ++i;
      tokens.emplace_back(stripped.substr(begin, i - begin), begin);
    } else {
      ++i;
    }
  }
  return tokens;
}

char NextCodeChar(const std::string& text, size_t from) {
  for (size_t i = from; i < text.size(); ++i) {
    if (!std::isspace(static_cast<unsigned char>(text[i]))) return text[i];
  }
  return '\0';
}

/// Heuristic identifier-provision scan for a header. `declared` gets the
/// names this header introduces (class/struct/enum/union, using-aliases,
/// #define); `provided` additionally gets every call/declaration head
/// (identifier followed by '(') and constant-style names (kCamel /
/// ALL_CAPS). The lenient set keeps unused-include conservative; the
/// strict set keeps transitive-include precise.
void ExtractProvided(const std::string& stripped,
                     std::set<std::string>* provided,
                     std::set<std::string>* declared) {
  const std::vector<std::pair<std::string, size_t>> tokens =
      Tokenize(stripped);
  for (size_t t = 0; t < tokens.size(); ++t) {
    const std::string& tok = tokens[t].first;
    const size_t end = tokens[t].second + tok.size();
    const char next = NextCodeChar(stripped, end);

    if (tok == "class" || tok == "struct" || tok == "enum" ||
        tok == "union") {
      // The declared name is the first following identifier that is not a
      // macro invocation (an attribute macro like FAIRLAW_CAPABILITY(..)).
      for (size_t j = t + 1; j < tokens.size() && j < t + 5; ++j) {
        const std::string& cand = tokens[j].first;
        if (cand == "class" || Keywords().count(cand) > 0) continue;
        const char after =
            NextCodeChar(stripped, tokens[j].second + cand.size());
        if (after == '(') continue;  // attribute macro, skip it
        provided->insert(cand);
        declared->insert(cand);
        break;
      }
      continue;
    }
    if (tok == "using") {
      // `using X = ...;`, `using ns::X;`; skip `using namespace ...;`.
      if (t + 1 < tokens.size() && tokens[t + 1].first == "namespace") {
        continue;
      }
      std::string last;
      for (size_t j = t + 1; j < tokens.size(); ++j) {
        const std::string& cand = tokens[j].first;
        const char after =
            NextCodeChar(stripped, tokens[j].second + cand.size());
        last = cand;
        if (after == '=' || after == ';') break;
      }
      if (!last.empty()) {
        provided->insert(last);
        declared->insert(last);
      }
      continue;
    }
    if (Keywords().count(tok) > 0) continue;
    if (next == '(') {
      provided->insert(tok);
      continue;
    }
    // Constant-style names.
    if (tok.size() >= 2 && tok[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(tok[1]))) {
      provided->insert(tok);
      continue;
    }
    bool all_caps = tok.size() >= 2;
    for (const char c : tok) {
      if (std::islower(static_cast<unsigned char>(c))) {
        all_caps = false;
        break;
      }
    }
    if (all_caps) provided->insert(tok);
  }
  // #define NAME — scan directive lines (include guards excluded).
  size_t pos = 0;
  while ((pos = stripped.find("#define", pos)) != std::string::npos) {
    size_t i = pos + 7;
    while (i < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[i])) &&
           stripped[i] != '\n') {
      ++i;
    }
    size_t begin = i;
    while (i < stripped.size() && IsIdentChar(stripped[i])) ++i;
    std::string name = stripped.substr(begin, i - begin);
    if (!name.empty() && name.rfind("_H_") != name.size() - 3) {
      provided->insert(name);
      declared->insert(name);
    }
    pos = i;
  }
}

/// Identifier tokens a file references, excluding #include directive
/// lines (their contents are paths, not code).
std::set<std::string> ExtractUsedTokens(const std::string& stripped) {
  std::set<std::string> used;
  std::istringstream lines(stripped);
  std::string line;
  while (std::getline(lines, line)) {
    size_t first = line.find_first_not_of(" \t");
    if (first != std::string::npos &&
        line.compare(first, 8, "#include") == 0) {
      continue;
    }
    for (size_t i = 0; i < line.size();) {
      if (IsIdentStart(line[i])) {
        size_t begin = i;
        while (i < line.size() && IsIdentChar(line[i])) ++i;
        used.insert(line.substr(begin, i - begin));
      } else {
        ++i;
      }
    }
  }
  return used;
}

class DepsAnalyzer {
 public:
  explicit DepsAnalyzer(fs::path root) : root_(std::move(root)) {}

  bool Scan() {
    bool found_any = false;
    for (const char* top : {"src", "tools", "tests", "bench", "examples"}) {
      const fs::path dir = root_ / top;
      if (!fs::is_directory(dir)) continue;
      found_any = true;
      for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
        if (it->is_directory() &&
            it->path().filename().string().ends_with("_fixture")) {
          it.disable_recursion_pending();  // deliberate-violation trees
          continue;
        }
        if (!it->is_regular_file()) continue;
        const std::string ext = it->path().extension().string();
        if (ext != ".h" && ext != ".cc" && ext != ".cpp") continue;
        LoadFile(it->path());
      }
    }
    if (!found_any) {
      std::fprintf(stderr, "fairlaw_deps: no src/tools/tests under '%s'\n",
                   root_.string().c_str());
      return false;
    }
    return true;
  }

  void Analyze() {
    CheckLayeringAndBuildGraphs();
    CheckFileCycles();
    CheckModuleCycles();
    CheckUnusedIncludes();
    CheckTransitiveUse();
    std::sort(violations_.begin(), violations_.end(),
              [](const Violation& a, const Violation& b) {
                return std::tie(a.file, a.line, a.rule) <
                       std::tie(b.file, b.line, b.rule);
              });
  }

  const std::vector<Violation>& violations() const { return violations_; }

  std::string GraphJson() const;
  std::string GraphDot() const;

 private:
  void LoadFile(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string raw = buffer.str();

    FileInfo info;
    std::error_code ec;
    info.rel = fs::relative(path, root_, ec).generic_string();
    if (ec) info.rel = path.generic_string();
    info.module = ModuleOf(info.rel);
    info.is_header = path.extension() == ".h";

    const std::string stripped = StripCommentsAndStrings(raw);
    ParseIncludes(raw, &info);
    if (info.is_header) {
      ExtractProvided(stripped, &info.provided, &info.declared);
    }
    info.used_tokens = ExtractUsedTokens(stripped);
    files_.emplace(info.rel, std::move(info));
  }

  std::string ModuleOf(const std::string& rel) const {
    if (rel.rfind("src/", 0) == 0) {
      const size_t slash = rel.find('/', 4);
      if (slash != std::string::npos) return rel.substr(4, slash - 4);
      return "src";  // stray file directly under src/
    }
    const size_t slash = rel.find('/');
    return slash == std::string::npos ? rel : rel.substr(0, slash);
  }

  /// Parses `#include "..."` directives from the raw text (pragmas live
  /// in trailing comments, so this runs pre-strip) and resolves them
  /// against the include roots: src/ for library headers, the repo root
  /// for anything else.
  void ParseIncludes(const std::string& raw, FileInfo* info) {
    size_t pos = 0;
    while ((pos = raw.find("#include", pos)) != std::string::npos) {
      const size_t line_end_off = raw.find('\n', pos);
      const std::string line =
          raw.substr(pos, (line_end_off == std::string::npos
                               ? raw.size()
                               : line_end_off) -
                              pos);
      const size_t line_no = LineOfOffset(raw, pos);
      pos += 8;
      const size_t open = line.find('"');
      if (open == std::string::npos) continue;  // <system> include
      const size_t close = line.find('"', open + 1);
      if (close == std::string::npos) continue;
      const std::string target = line.substr(open + 1, close - open - 1);

      IncludeEdge edge;
      edge.line = line_no;
      edge.pragma_keep = line.find("IWYU pragma: keep") != std::string::npos;
      edge.pragma_export =
          line.find("IWYU pragma: export") != std::string::npos;
      if (fs::is_regular_file(root_ / "src" / target)) {
        edge.target = "src/" + target;
      } else if (fs::is_regular_file(root_ / target)) {
        edge.target = target;
      } else {
        continue;  // unresolvable (generated or external); not ours to judge
      }
      info->includes.push_back(std::move(edge));
    }
  }

  void Report(std::string file, size_t line, std::string rule,
              std::string message) {
    violations_.push_back(Violation{std::move(file), line, std::move(rule),
                                    std::move(message)});
  }

  /// Check 1 (+ unknown modules) and the module-level edge map.
  void CheckLayeringAndBuildGraphs() {
    for (const auto& [rel, info] : files_) {
      const int rank = RankOf(info.module);
      if (rank < 0) {
        Report(rel, 1, "unknown-module",
               "module '" + info.module +
                   "' is not declared in the layering DAG; add it to "
                   "kModules in tools/fairlaw_deps.cc and to DESIGN.md");
        continue;
      }
      for (const IncludeEdge& edge : info.includes) {
        const auto it = files_.find(edge.target);
        if (it == files_.end()) continue;
        const std::string& target_module = it->second.module;
        if (target_module != info.module) {
          module_edges_[{info.module, target_module}] += 1;
        }
        const int target_rank = RankOf(target_module);
        if (target_rank < 0) continue;  // reported above for that file
        if (target_rank > rank) {
          Report(rel, edge.line, "layering",
                 "module '" + info.module + "' (rank " +
                     std::to_string(rank) + ") must not include '" +
                     edge.target + "' from higher-ranked module '" +
                     target_module + "' (rank " +
                     std::to_string(target_rank) +
                     "); see the layering DAG in DESIGN.md");
        }
      }
    }
  }

  /// Check 2: DFS over the file-level include graph.
  void CheckFileCycles() {
    std::map<std::string, int> color;  // 0 white, 1 grey, 2 black
    std::vector<std::string> stack;
    for (const auto& [rel, info] : files_) {
      if (color[rel] == 0) DfsFile(rel, &color, &stack);
    }
  }

  void DfsFile(const std::string& rel, std::map<std::string, int>* color,
               std::vector<std::string>* stack) {
    (*color)[rel] = 1;
    stack->push_back(rel);
    const auto it = files_.find(rel);
    if (it != files_.end()) {
      for (const IncludeEdge& edge : it->second.includes) {
        if (files_.find(edge.target) == files_.end()) continue;
        const int c = (*color)[edge.target];
        if (c == 0) {
          DfsFile(edge.target, color, stack);
        } else if (c == 1) {
          std::string chain;
          const auto begin =
              std::find(stack->begin(), stack->end(), edge.target);
          for (auto s = begin; s != stack->end(); ++s) chain += *s + " -> ";
          chain += edge.target;
          Report(rel, edge.line, "include-cycle",
                 "include cycle: " + chain);
        }
      }
    }
    stack->pop_back();
    (*color)[rel] = 2;
  }

  /// Check 3: cycles in the module graph (self-edges excluded). Upward
  /// edges are already layering violations, so any cycle found here runs
  /// through same-rank modules.
  void CheckModuleCycles() {
    std::map<std::string, std::set<std::string>> adjacency;
    for (const auto& [edge, count] : module_edges_) {
      adjacency[edge.first].insert(edge.second);
    }
    std::map<std::string, int> color;
    std::vector<std::string> stack;
    for (const auto& [module, targets] : adjacency) {
      if (color[module] == 0) DfsModule(module, adjacency, &color, &stack);
    }
  }

  void DfsModule(const std::string& module,
                 const std::map<std::string, std::set<std::string>>& adj,
                 std::map<std::string, int>* color,
                 std::vector<std::string>* stack) {
    (*color)[module] = 1;
    stack->push_back(module);
    const auto it = adj.find(module);
    if (it != adj.end()) {
      for (const std::string& next : it->second) {
        const int c = (*color)[next];
        if (c == 0) {
          DfsModule(next, adj, color, stack);
        } else if (c == 1) {
          std::string chain;
          const auto begin = std::find(stack->begin(), stack->end(), next);
          for (auto s = begin; s != stack->end(); ++s) chain += *s + " -> ";
          chain += next;
          Report("(module graph)", 0, "module-cycle",
                 "module cycle: " + chain);
        }
      }
    }
    stack->pop_back();
    (*color)[module] = 2;
  }

  /// Identifiers a header makes visible to its includers: its own plus,
  /// recursively, those of headers it re-exports via IWYU pragma.
  const std::set<std::string>& ProvidesClosure(const std::string& rel) {
    auto cached = provides_closure_.find(rel);
    if (cached != provides_closure_.end()) return cached->second;
    // Seed the cache first so re-export cycles terminate.
    std::set<std::string>& result = provides_closure_[rel];
    const auto it = files_.find(rel);
    if (it == files_.end()) return result;
    result = it->second.provided;
    for (const IncludeEdge& edge : it->second.includes) {
      if (!edge.pragma_export) continue;
      const std::set<std::string>& nested = ProvidesClosure(edge.target);
      result.insert(nested.begin(), nested.end());
    }
    return provides_closure_[rel];
  }

  static bool IsOwnHeader(const FileInfo& file, const std::string& target) {
    if (file.is_header) return false;
    const size_t dot = file.rel.rfind('.');
    return dot != std::string::npos &&
           target == file.rel.substr(0, dot) + ".h";
  }

  /// Check 4: every non-exempt include must contribute at least one
  /// referenced identifier.
  void CheckUnusedIncludes() {
    for (const auto& [rel, info] : files_) {
      for (const IncludeEdge& edge : info.includes) {
        if (edge.pragma_keep || edge.pragma_export) continue;
        if (IsOwnHeader(info, edge.target)) continue;
        const std::set<std::string>& provides = ProvidesClosure(edge.target);
        bool used = false;
        for (const std::string& ident : provides) {
          if (info.used_tokens.count(ident) > 0) {
            used = true;
            break;
          }
        }
        if (!used) {
          Report(rel, edge.line, "unused-include",
                 "'" + edge.target +
                     "' is included but none of its identifiers are "
                     "referenced; drop it or mark it '// IWYU pragma: "
                     "keep' with a reason");
        }
      }
    }
  }

  /// Check 5: src/ files must not lean on identifiers that only a
  /// transitive include provides. Conservative on purpose: only names a
  /// header truly declares (class / using / #define, not call-heads) can
  /// fire, only when exactly one reachable header declares the name, and
  /// x.cc may rely on anything its own x.h pulls in directly (the
  /// associated-header exemption IWYU itself grants).
  void CheckTransitiveUse() {
    for (const auto& [rel, info] : files_) {
      if (rel.rfind("src/", 0) != 0) continue;

      std::set<std::string> direct;  // direct includes + their re-exports
      for (const IncludeEdge& edge : info.includes) {
        CollectExportClosure(edge.target, &direct);
        if (IsOwnHeader(info, edge.target)) {
          const auto own = files_.find(edge.target);
          if (own != files_.end()) {
            for (const IncludeEdge& nested : own->second.includes) {
              CollectExportClosure(nested.target, &direct);
            }
          }
        }
      }
      std::set<std::string> reachable;
      CollectReachable(rel, &reachable);
      reachable.erase(rel);

      // The lenient provided set keeps this exemption broad: if a direct
      // include even plausibly supplies the name, stay quiet.
      std::set<std::string> direct_provided;
      for (const std::string& d : direct) {
        const auto it = files_.find(d);
        if (it == files_.end()) continue;
        direct_provided.insert(it->second.provided.begin(),
                               it->second.provided.end());
      }
      // How many reachable headers declare each identifier (uniqueness).
      std::map<std::string, int> provider_count;
      for (const std::string& r : reachable) {
        const auto it = files_.find(r);
        if (it == files_.end()) continue;
        for (const std::string& ident : it->second.declared) {
          provider_count[ident] += 1;
        }
      }

      for (const std::string& target : reachable) {
        if (direct.count(target) > 0) continue;
        const auto it = files_.find(target);
        if (it == files_.end()) continue;
        if (IsOwnHeader(info, target)) continue;
        for (const std::string& ident : it->second.declared) {
          if (info.used_tokens.count(ident) == 0) continue;
          if (direct_provided.count(ident) > 0) continue;
          if (info.provided.count(ident) > 0) continue;
          if (info.declared.count(ident) > 0) continue;
          if (provider_count[ident] != 1) continue;
          Report(rel, 1, "transitive-include",
                 "uses '" + ident + "' provided only by transitively "
                     "included '" + target +
                     "'; include it directly (include what you use)");
          break;  // one diagnostic per missing header
        }
      }
    }
  }

  /// Adds `rel` and, recursively, everything it re-exports.
  void CollectExportClosure(const std::string& rel,
                            std::set<std::string>* out) {
    if (!out->insert(rel).second) return;
    const auto it = files_.find(rel);
    if (it == files_.end()) return;
    for (const IncludeEdge& edge : it->second.includes) {
      if (edge.pragma_export) CollectExportClosure(edge.target, out);
    }
  }

  void CollectReachable(const std::string& rel, std::set<std::string>* out) {
    const auto it = files_.find(rel);
    if (it == files_.end()) return;
    for (const IncludeEdge& edge : it->second.includes) {
      if (out->insert(edge.target).second) {
        CollectReachable(edge.target, out);
      }
    }
  }

  fs::path root_;
  std::map<std::string, FileInfo> files_;  // rel path -> info
  std::map<std::pair<std::string, std::string>, int> module_edges_;
  std::map<std::string, std::set<std::string>> provides_closure_;
  std::vector<Violation> violations_;
};

std::string JsonEscape(const std::string& text) {
  std::string out;
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string DepsAnalyzer::GraphJson() const {
  std::map<std::string, int> file_counts;
  for (const auto& [rel, info] : files_) file_counts[info.module] += 1;

  std::string out = "{\n  \"modules\": [\n";
  bool first = true;
  for (const ModuleSpec& spec : kModules) {
    if (file_counts.find(spec.name) == file_counts.end()) continue;
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"" + std::string(spec.name) +
           "\", \"rank\": " + std::to_string(spec.rank) +
           ", \"files\": " + std::to_string(file_counts[spec.name]) + "}";
  }
  out += "\n  ],\n  \"module_edges\": [\n";
  first = true;
  for (const auto& [edge, count] : module_edges_) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"from\": \"" + JsonEscape(edge.first) + "\", \"to\": \"" +
           JsonEscape(edge.second) +
           "\", \"includes\": " + std::to_string(count) + "}";
  }
  out += "\n  ],\n  \"file_edges\": [\n";
  first = true;
  for (const auto& [rel, info] : files_) {
    for (const IncludeEdge& edge : info.includes) {
      if (!first) out += ",\n";
      first = false;
      out += "    {\"from\": \"" + JsonEscape(rel) + "\", \"to\": \"" +
             JsonEscape(edge.target) +
             "\", \"line\": " + std::to_string(edge.line) + "}";
    }
  }
  out += "\n  ],\n  \"violations\": " + std::to_string(violations_.size()) +
         "\n}\n";
  return out;
}

std::string DepsAnalyzer::GraphDot() const {
  std::string out = "digraph fairlaw_deps {\n";
  out += "  rankdir=BT;\n  node [shape=box, fontname=\"Helvetica\"];\n";
  std::map<int, std::vector<std::string>> by_rank;
  std::map<std::string, int> file_counts;
  for (const auto& [rel, info] : files_) file_counts[info.module] += 1;
  for (const ModuleSpec& spec : kModules) {
    if (file_counts.find(spec.name) == file_counts.end()) continue;
    by_rank[spec.rank].push_back(spec.name);
  }
  for (const auto& [rank, modules] : by_rank) {
    out += "  { rank=same;";
    for (const std::string& module : modules) {
      out += " \"" + module + "\";";
    }
    out += " }\n";
  }
  for (const auto& [rank, modules] : by_rank) {
    for (const std::string& module : modules) {
      out += "  \"" + module + "\" [label=\"" + module + "\\nrank " +
             std::to_string(rank) + ", " +
             std::to_string(file_counts[module]) + " files\"];\n";
    }
  }
  for (const auto& [edge, count] : module_edges_) {
    out += "  \"" + edge.first + "\" -> \"" + edge.second +
           "\" [label=\"" + std::to_string(count) + "\"];\n";
  }
  out += "}\n";
  return out;
}

bool WriteFileOrComplain(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << text;
  if (!out) {
    std::fprintf(stderr, "fairlaw_deps: cannot write '%s'\n", path.c_str());
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_flag = ".";
  std::string json_path;
  std::string dot_path;
  bool verbose = false;
  fairlaw::cli::FlagSet flags(
      "fairlaw_deps", "",
      "Layering / include-graph pass over the declared module DAG\n"
      "(see the header of tools/fairlaw_deps.cc for the rule set).\n"
      "exit codes: 0 clean, 1 violations, 2 usage or I/O error");
  flags.Add("root", &root_flag, "tree to scan");
  flags.Section("output");
  flags.Add("json", &json_path, "write the module graph as JSON here");
  flags.Add("dot", &dot_path, "write the module graph as Graphviz here");
  flags.Add("verbose", &verbose, "print the violation count even when clean");
  fairlaw::Result<fairlaw::cli::ParseResult> parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "fairlaw_deps: %s\n\n%s",
                 parsed.status().message().c_str(), flags.Help().c_str());
    return 2;
  }
  if (parsed->help) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!parsed->positionals.empty()) {
    std::fprintf(stderr, "fairlaw_deps: unexpected argument '%s'\n",
                 parsed->positionals[0].c_str());
    return 2;
  }
  fs::path root(root_flag);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fairlaw_deps: root '%s' is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  DepsAnalyzer analyzer(root);
  if (!analyzer.Scan()) return 2;
  analyzer.Analyze();

  if (!json_path.empty() &&
      !WriteFileOrComplain(json_path, analyzer.GraphJson())) {
    return 2;
  }
  if (!dot_path.empty() &&
      !WriteFileOrComplain(dot_path, analyzer.GraphDot())) {
    return 2;
  }

  for (const Violation& v : analyzer.violations()) {
    std::fprintf(stderr, "%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (verbose || !analyzer.violations().empty()) {
    std::fprintf(stderr, "fairlaw_deps: %zu violation(s)\n",
                 analyzer.violations().size());
  }
  return analyzer.violations().empty() ? 0 : 1;
}
