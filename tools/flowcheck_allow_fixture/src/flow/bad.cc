#include "flow/api.h"

// Escape-hatch fixture: every violation from
// tools/flowcheck_fixture/src/flow/bad.cc, each suppressed by its
// `flowcheck: allow-<rule>` marker on the flagged line or the line
// above. fairlaw_flowcheck over this tree must report zero findings.

namespace fairlaw::flow {

Status UseStore(Store& store, ThreadPool& pool) {
  store.Save(1);  // flowcheck: allow-discarded-status (fixture)

  // flowcheck: allow-discarded-status (deliberate fire-and-forget)
  (void)Store::Touch();

  // flowcheck: allow-discarded-status (probe call, outcome irrelevant)
  if (store.Load().ok()) OpenStore("again");

  Result<int> loaded = store.Load();
  int value = *loaded;  // flowcheck: allow-unchecked-result (fixture)

  Result<Store> reopened = OpenStore("path");
  // flowcheck: allow-unchecked-result (path exists by construction)
  reopened.ValueOrDie().Save(value);

  // flowcheck: allow-unchecked-result (store is pre-validated above)
  value += store.Load().ValueOrDie();

  Result<int> sibling = store.Load();
  {
    if (sibling.ok()) value += 1;
  }
  value += *sibling;  // flowcheck: allow-unchecked-result (fixture)

  pool.Submit([&store]() {
    store.Save(2);  // flowcheck: allow-status-in-task (fixture)
  });

  pool.ParallelFor(4, [&store](size_t task) {
    // flowcheck: allow-status-in-task (fixture)
    Status st = Store::Touch();
    // flowcheck: allow-status-in-task (fixture)
    store.Save(static_cast<int>(task));
  });

  // flowcheck: allow-dcheck-side-effect (fixture)
  FAIRLAW_DCHECK(Store::Touch().ok(), "touch must succeed");

  // flowcheck: allow-dcheck-side-effect (fixture)
  FAIRLAW_DCHECK(value++ < 100, "value stays small");

  return Status::OK();
}

}  // namespace fairlaw::flow
