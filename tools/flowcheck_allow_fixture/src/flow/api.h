#ifndef FAIRLAW_TOOLS_FLOWCHECK_ALLOW_FIXTURE_SRC_FLOW_API_H_
#define FAIRLAW_TOOLS_FLOWCHECK_ALLOW_FIXTURE_SRC_FLOW_API_H_

// Escape-hatch fixture for fairlaw_flowcheck: the same violating
// declarations as tools/flowcheck_fixture, each carrying its
// `flowcheck: allow-<rule>` marker. The ctest run over this tree must
// report ZERO findings (every one suppressed and counted), proving each
// rule's escape actually works.

namespace fairlaw::flow {

class Store {
 public:
  Status Save(int value);  // flowcheck: allow-nodiscard-missing
  // flowcheck: allow-nodiscard-missing
  static Status Touch();
  Result<int> Load() const;  // flowcheck: allow-nodiscard-missing
  auto Reload() -> Status;   // flowcheck: allow-nodiscard-missing
  // flowcheck: allow-nodiscard-missing
  auto LoadAll() -> Result<std::vector<int>>;
};

// flowcheck: allow-nodiscard-missing
Result<Store> OpenStore(const std::string& path);

// flowcheck: allow-nodiscard-missing
inline Status Commit(Store& store) try {
  return store.Save(0);
} catch (...) {
  return Status::Internal("commit failed");
}

}  // namespace fairlaw::flow

#endif  // FAIRLAW_TOOLS_FLOWCHECK_ALLOW_FIXTURE_SRC_FLOW_API_H_
