// Clean-fixture for the lexer-backed analysis passes: every banned
// identifier below lives inside a string literal or a comment, so a
// correct pass reports ZERO violations on this tree. The pre-lexer
// fairlaw_lint false-positived on both constructs:
//
//   * a raw string with an embedded quote flipped the old scanner's
//     in-string state, so literal text after the embedded quote was
//     scanned as code;
//   * a line comment ending in a backslash continues onto the next
//     line (translation phase 2 splices the newline), but the old
//     scanner ended the comment at the newline and scanned the
//     continuation as code.

namespace fairlaw_fixture {

// Raw string with embedded quotes: "steady_clock" and "rand" sit
// between quote characters the old scanner misread as string ends.
const char* kRawDoc =
    R"(prefer "steady_clock" via obs and never call "rand" or "srand")";

// Comment continued by a backslash-newline; everything on the next  \
   line is still comment: rand() srand() steady_clock this_thread \
   std::vector<bool> atoi strtod

// Raw string with a custom delimiter containing a plain )" sequence.
const char* kDelimited = R"doc(text with )" inside, plus atoi and rand)doc";

const char* Doc() { return kRawDoc; }
const char* Delimited() { return kDelimited; }

}  // namespace fairlaw_fixture
