// fairlaw_flowcheck — cross-file Status-discipline static analysis.
//
//   fairlaw_flowcheck [--root=DIR] [--json=PATH] [--self-test=RULES]
//                     [--verbose]
//
// Fourth analysis pass next to fairlaw_lint (local hygiene),
// fairlaw_deps (layering), and fairlaw_detcheck (determinism), and the
// first with cross-file knowledge: it builds a signature index of every
// Status/Result<T>-returning function declared in src/** headers
// (tools/analysis/index.h), then walks every .cc file under src/ and
// tools/ with a brace-matching, scope-aware pass that proves errors
// actually flow somewhere. The repo's contract (base/status.h: every
// fallible operation returns a Status) is worthless if a caller can
// silently drop the return — in an unattended fairlaw_serve daemon a
// dropped Status is a wrong four-fifths verdict, not a crashed CLI.
//
// Rules (escape hatch: a `flowcheck: allow-<rule>` comment on the
// flagged line or the line above; suppressions are counted in the JSON
// artifact so they stay visible):
//
//   1. discarded-status
//        A call to an indexed fallible function used as a bare
//        expression statement — no assignment, no
//        FAIRLAW_RETURN_NOT_OK / FAIRLAW_CHECK_OK wrapper. A `(void)`
//        cast does not exempt the call by itself; it must carry the
//        allow marker so every deliberate discard names its reason.
//   2. unchecked-result
//        `.ValueOrDie()` / `.value()` / unary `*` / `->` on a local
//        declared `Result<T>` with no `name.ok()` check earlier in the
//        same or an enclosing scope. ValueOrDie's crash-on-error
//        contract is for call sites where failure is impossible by
//        construction — those carry the marker and say why.
//   3. status-in-task
//        Inside a ThreadPool::Submit/ParallelFor worker lambda: a bare
//        fallible call, or a Status local that is never read again
//        before the lambda ends. A worker's error must escape — into a
//        per-task slot or a mutex-guarded aggregator — or the morsel
//        engine audits on silently-partial results.
//   4. nodiscard-missing
//        An indexed src/** header declaration lacking the
//        FAIRLAW_NODISCARD macro. The compiler then warns on the
//        discards this pass cannot see (macro bodies, templates,
//        out-of-tree callers); flowcheck keeps the sweep complete.
//   5. dcheck-side-effect
//        FAIRLAW_DCHECK / FAIRLAW_DCHECK_OK arguments containing
//        ++/--/assignment or a call to an indexed fallible function.
//        These macros compile out under NDEBUG, so the side effect —
//        including the fallible operation itself — vanishes from
//        release builds.
//
// Output: one `file:line: rule: message` diagnostic per finding on
// stderr, plus the canonical artifact via --json (schema
// {"tool":"fairlaw_flowcheck","schema_version":1,findings:[...],
// count,suppressed}; findings sorted by file/line/rule, byte-identical
// for a given tree — the same schema fairlaw_lint and fairlaw_detcheck
// emit via tools/analysis/report.h). --self-test=rule1,rule2 exits 0
// iff exactly that rule set fires. Directories named *_fixture are
// skipped. Exit codes: 0 clean, 1 findings, 2 usage or I/O error.
// Registered as a ctest test, so an unsuppressed finding fails tier-1.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "tools/analysis/index.h"
#include "tools/analysis/lexer.h"
#include "tools/analysis/report.h"
#include "tools/cli.h"

namespace {

namespace fs = std::filesystem;
using fairlaw::analysis::BuildIndex;
using fairlaw::analysis::CollectSources;
using fairlaw::analysis::Comment;
using fairlaw::analysis::FallibleFn;
using fairlaw::analysis::Lex;
using fairlaw::analysis::LexResult;
using fairlaw::analysis::MatchingClose;
using fairlaw::analysis::ReadFileToString;
using fairlaw::analysis::RelativeTo;
using fairlaw::analysis::Reporter;
using fairlaw::analysis::SignatureIndex;
using fairlaw::analysis::Token;
using fairlaw::analysis::TokenKind;

/// Half-open token range of a worker lambda's body: (body_open,
/// body_close) exclusive of both braces.
struct WorkerBody {
  size_t body_open = 0;
  size_t body_close = 0;
};

class FlowChecker {
 public:
  explicit FlowChecker(fs::path root)
      : root_(std::move(root)), reporter_("fairlaw_flowcheck", "flowcheck") {}

  Reporter& reporter() { return reporter_; }

  void Run() {
    // Pass 1: headers. Build the cross-file signature index and check
    // the nodiscard sweep (rule 4) while each header's comments are at
    // hand.
    constexpr std::string_view kHeaderTops[] = {"src"};
    for (const fs::path& path : CollectSources(root_, kHeaderTops)) {
      if (path.extension() != ".h") continue;
      const std::string rel = RelativeTo(path, root_);
      const LexResult lex = Lex(ReadFileToString(path));
      const size_t before = index_.functions().size();
      index_.AddHeader(rel, lex.tokens);
      for (size_t i = before; i < index_.functions().size(); ++i) {
        const FallibleFn& fn = index_.functions()[i];
        if (fn.has_nodiscard) continue;
        reporter_.Report(
            rel, lex.comments, fn.line, "nodiscard-missing",
            "'" + fn.qualified + "' returns " + fn.return_type +
                " but is not declared FAIRLAW_NODISCARD: without it the "
                "compiler stays silent when a caller drops the error");
      }
    }

    // Pass 2: implementation files. The scope-aware error-flow rules
    // run over every .cc under src/ and tools/ against the index.
    constexpr std::string_view kImplTops[] = {"src", "tools"};
    for (const fs::path& path : CollectSources(root_, kImplTops)) {
      if (path.extension() != ".cc") continue;
      CheckImplFile(RelativeTo(path, root_), ReadFileToString(path));
    }
  }

 private:
  // -- Token-stream helpers. -----------------------------------------------

  /// True when tokens[i] begins a statement: after ';', '{', '}',
  /// 'else'/'do', or the ')' of an if/while/for/switch header.
  bool IsStatementStart(std::span<const Token> tokens, size_t i,
                        const std::map<size_t, size_t>& open_of_close) const {
    if (i == 0) return true;
    const Token& prev = tokens[i - 1];
    if (prev.IsPunct(";") || prev.IsPunct("{") || prev.IsPunct("}")) {
      return true;
    }
    if (prev.IsIdent("else") || prev.IsIdent("do")) return true;
    if (prev.IsPunct(")")) {
      const auto it = open_of_close.find(i - 1);
      if (it != open_of_close.end() && it->second > 0) {
        const Token& head = tokens[it->second - 1];
        return head.IsIdent("if") || head.IsIdent("while") ||
               head.IsIdent("for") || head.IsIdent("switch");
      }
    }
    return false;
  }

  /// Maps each ')' token index to its '(' so statement-start checks can
  /// look behind closed condition headers without rescanning.
  static std::map<size_t, size_t> CloseToOpen(std::span<const Token> tokens) {
    std::map<size_t, size_t> map;
    std::vector<size_t> stack;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (tokens[i].IsPunct("(")) stack.push_back(i);
      if (tokens[i].IsPunct(")") && !stack.empty()) {
        map[i] = stack.back();
        stack.pop_back();
      }
    }
    return map;
  }

  /// Parses a postfix callee chain at `start` (`a.b->C::Fn(`); returns
  /// the index of the called name when the chain ends in a call, or
  /// tokens.size() when this is not a call statement.
  static size_t CalleeNameIndex(std::span<const Token> tokens, size_t start) {
    size_t k = start;
    if (k < tokens.size() && tokens[k].IsPunct("::")) ++k;  // ::fairlaw::Fn
    while (k + 1 < tokens.size()) {
      if (tokens[k].kind != TokenKind::kIdentifier) return tokens.size();
      const Token& next = tokens[k + 1];
      if (next.IsPunct("(")) return k;
      if (next.IsPunct("::") || next.IsPunct(".") || next.IsPunct("->")) {
        k += 2;
        continue;
      }
      return tokens.size();
    }
    return tokens.size();
  }

  /// Worker lambda bodies handed to ThreadPool::Submit/ParallelFor:
  /// lambda literals in argument position plus lambdas assigned to a
  /// name later passed as a task (the detcheck merge-order convention).
  static std::vector<WorkerBody> FindWorkerBodies(
      std::span<const Token> tokens) {
    std::vector<std::string> task_names;
    std::vector<size_t> intros;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!(tokens[i].IsIdent("Submit") || tokens[i].IsIdent("ParallelFor")) ||
          !tokens[i + 1].IsPunct("(")) {
        continue;
      }
      const size_t close = MatchingClose(tokens, i + 1);
      int depth = 0;
      for (size_t j = i + 1; j < close && j < tokens.size(); ++j) {
        if (tokens[j].IsPunct("(") || tokens[j].IsPunct("[") ||
            tokens[j].IsPunct("{")) {
          ++depth;
        }
        if (tokens[j].IsPunct(")") || tokens[j].IsPunct("]") ||
            tokens[j].IsPunct("}")) {
          --depth;
        }
        if (tokens[j].IsPunct("[") && depth == 2 &&
            (tokens[j - 1].IsPunct("(") || tokens[j - 1].IsPunct(","))) {
          intros.push_back(j);
        }
        if (depth == 1 && tokens[j].kind == TokenKind::kIdentifier &&
            (tokens[j - 1].IsPunct("(") || tokens[j - 1].IsPunct(",")) &&
            (tokens[j + 1].IsPunct(",") || tokens[j + 1].IsPunct(")"))) {
          task_names.push_back(tokens[j].text);
        }
      }
    }
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier &&
          std::find(task_names.begin(), task_names.end(), tokens[i].text) !=
              task_names.end() &&
          tokens[i + 1].IsPunct("=") && tokens[i + 2].IsPunct("[")) {
        intros.push_back(i + 2);
      }
    }
    std::vector<WorkerBody> bodies;
    for (const size_t intro : intros) {
      const size_t intro_close = MatchingClose(tokens, intro);
      if (intro_close >= tokens.size()) continue;
      size_t j = intro_close + 1;
      if (j < tokens.size() && tokens[j].IsPunct("(")) {
        j = MatchingClose(tokens, j);
        if (j >= tokens.size()) continue;
        ++j;
      }
      while (j < tokens.size() && !tokens[j].IsPunct("{") &&
             !tokens[j].IsPunct(";") && !tokens[j].IsPunct(")")) {
        ++j;
      }
      if (j >= tokens.size() || !tokens[j].IsPunct("{")) continue;
      const size_t body_close = MatchingClose(tokens, j);
      if (body_close >= tokens.size()) continue;
      bodies.push_back(WorkerBody{j, body_close});
    }
    return bodies;
  }

  static bool InWorkerBody(const std::vector<WorkerBody>& bodies, size_t i) {
    for (const WorkerBody& body : bodies) {
      if (i > body.body_open && i < body.body_close) return true;
    }
    return false;
  }

  // -- Per-file driver. ----------------------------------------------------

  void CheckImplFile(const std::string& rel, const std::string& text) {
    const LexResult lex = Lex(text);
    const std::span<const Token> tokens(lex.tokens);
    const std::map<size_t, size_t> open_of_close = CloseToOpen(tokens);
    const std::vector<WorkerBody> workers = FindWorkerBodies(tokens);

    CheckDiscardedStatus(rel, tokens, lex.comments, open_of_close, workers);
    CheckUncheckedResult(rel, tokens, lex.comments);
    CheckStatusInTask(rel, tokens, lex.comments, open_of_close, workers);
    CheckDcheckSideEffect(rel, tokens, lex.comments);
  }

  /// Rule 1: a fallible call as a bare expression statement. `(void)`
  /// casts are parsed through so they still require the allow marker.
  void CheckDiscardedStatus(const std::string& rel,
                            std::span<const Token> tokens,
                            const std::vector<Comment>& comments,
                            const std::map<size_t, size_t>& open_of_close,
                            const std::vector<WorkerBody>& workers) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (InWorkerBody(workers, i)) continue;  // rule 3's jurisdiction
      if (!IsStatementStart(tokens, i, open_of_close)) continue;
      size_t start = i;
      if (tokens[i].IsPunct("(") && i + 2 < tokens.size() &&
          tokens[i + 1].IsIdent("void") && tokens[i + 2].IsPunct(")")) {
        start = i + 3;
      }
      const size_t callee = CalleeNameIndex(tokens, start);
      if (callee >= tokens.size()) continue;
      if (!index_.IsFallible(tokens[callee].text)) continue;
      const size_t close = MatchingClose(tokens, callee + 1);
      if (close + 1 >= tokens.size() || !tokens[close + 1].IsPunct(";")) {
        continue;  // result is consumed (member access, operator, ...)
      }
      reporter_.Report(
          rel, comments, tokens[callee].line, "discarded-status",
          "call to fallible '" + tokens[callee].text +
              "' discards its Status/Result: assign and check it, wrap it "
              "in FAIRLAW_RETURN_NOT_OK/FAIRLAW_CHECK_OK, or (void)-cast "
              "it with a `flowcheck: allow-discarded-status` justification");
    }
  }

  /// Rule 2: Result<T> locals dereferenced before any ok() check in the
  /// same or an enclosing scope. Scopes are tracked by brace stack; a
  /// check covers an access iff the check's scope chain is a prefix of
  /// the access's (a check buried in some other block proves nothing).
  void CheckUncheckedResult(const std::string& rel,
                            std::span<const Token> tokens,
                            const std::vector<Comment>& comments) {
    struct ResultLocal {
      size_t decl = 0;
      std::vector<size_t> scope;  // open-brace token indices at decl
      // Scope chains of every `name.ok()` seen since the declaration.
      std::vector<std::vector<size_t>> checks;
    };
    std::map<std::string, ResultLocal> locals;
    std::vector<size_t> scope;

    auto is_prefix = [](const std::vector<size_t>& a,
                        const std::vector<size_t>& b) {
      if (a.size() > b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (a[i] != b[i]) return false;
      }
      return true;
    };

    auto report_access = [&](const std::string& name, size_t line,
                             const char* how) {
      reporter_.Report(
          rel, comments, line, "unchecked-result",
          std::string("Result '") + name + "' is accessed via " + how +
              " with no prior '" + name +
              ".ok()' check in this or an enclosing scope: on error this "
              "aborts the process; check ok(), use "
              "FAIRLAW_ASSIGN_OR_RETURN, or add a `flowcheck: "
              "allow-unchecked-result` comment stating why failure is "
              "impossible here");
    };

    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& token = tokens[i];
      if (token.IsPunct("{")) {
        scope.push_back(i);
        continue;
      }
      if (token.IsPunct("}")) {
        if (!scope.empty()) scope.pop_back();
        continue;
      }

      // Immediate dereference of a fallible call's temporary:
      // `Fallible(...).ValueOrDie()` / `.value()` / `->`. No ok() check
      // can possibly precede this — the Result dies in the expression —
      // so it is unchecked by construction and must either bind the
      // Result first or carry a justification marker.
      if (token.kind == TokenKind::kIdentifier &&
          index_.IsFallible(token.text) && i + 1 < tokens.size() &&
          tokens[i + 1].IsPunct("(")) {
        const size_t close = MatchingClose(tokens, i + 1);
        const bool arrow_deref =
            close + 1 < tokens.size() && tokens[close + 1].IsPunct("->");
        const bool dot_die =
            close + 2 < tokens.size() && tokens[close + 1].IsPunct(".") &&
            (tokens[close + 2].IsIdent("ValueOrDie") ||
             tokens[close + 2].IsIdent("value"));
        if (arrow_deref || dot_die) {
          reporter_.Report(
              rel, comments, tokens[close + 1].line, "unchecked-result",
              "result of fallible '" + token.text +
                  "' is dereferenced in the same expression: no ok() "
                  "check is possible on the temporary, so on error this "
                  "aborts the process; bind the Result and check it, or "
                  "add a `flowcheck: allow-unchecked-result` comment "
                  "stating why failure is impossible here");
          continue;
        }
      }

      // Declaration: [fairlaw::] Result < ... > name {=,(,{}.
      if (token.IsIdent("Result") && i + 1 < tokens.size() &&
          tokens[i + 1].IsPunct("<")) {
        int depth = 0;
        size_t j = i + 1;
        for (; j < tokens.size(); ++j) {
          if (tokens[j].IsPunct("<")) ++depth;
          if (tokens[j].IsPunct(">")) --depth;
          if (tokens[j].IsPunct(">>")) depth -= 2;
          if (tokens[j].IsPunct(";")) break;
          if (depth <= 0) break;
        }
        if (j >= tokens.size() || !tokens[j].IsPunct(">")) continue;
        ++j;
        while (j < tokens.size() &&
               (tokens[j].IsPunct("&") || tokens[j].IsPunct("*"))) {
          ++j;
        }
        if (j + 1 < tokens.size() &&
            tokens[j].kind == TokenKind::kIdentifier &&
            (tokens[j + 1].IsPunct("=") || tokens[j + 1].IsPunct("(") ||
             tokens[j + 1].IsPunct("{"))) {
          locals[tokens[j].text] = ResultLocal{j, scope, {}};
        }
        continue;
      }

      if (token.kind != TokenKind::kIdentifier) continue;
      const auto it = locals.find(token.text);
      if (it == locals.end() || i <= it->second.decl) continue;
      ResultLocal& local = it->second;

      // `name.ok(` — record the check with its scope chain. `name` as
      // the argument of FAIRLAW_ASSIGN_OR_RETURN-style macros never
      // reaches here because the macro name heads that statement.
      if (i + 2 < tokens.size() && tokens[i + 1].IsPunct(".") &&
          tokens[i + 2].IsIdent("ok")) {
        local.checks.push_back(scope);
        continue;
      }

      const char* how = nullptr;
      size_t line = token.line;
      if (i + 2 < tokens.size() && tokens[i + 1].IsPunct(".") &&
          (tokens[i + 2].IsIdent("ValueOrDie") ||
           tokens[i + 2].IsIdent("value"))) {
        how = tokens[i + 2].text == "value" ? ".value()" : ".ValueOrDie()";
      } else if (i + 1 < tokens.size() && tokens[i + 1].IsPunct("->")) {
        how = "operator->";
      } else if (i >= 2 && tokens[i - 1].IsPunct("*") &&
                 (tokens[i - 2].IsIdent("return") ||
                  (tokens[i - 2].kind != TokenKind::kIdentifier &&
                   tokens[i - 2].kind != TokenKind::kNumber &&
                   !tokens[i - 2].IsPunct(")") &&
                   !tokens[i - 2].IsPunct("]")))) {
        how = "unary *";
        line = tokens[i - 1].line;
      }
      if (how == nullptr) continue;

      bool checked = false;
      for (const std::vector<size_t>& check_scope : local.checks) {
        if (is_prefix(check_scope, scope)) {
          checked = true;
          break;
        }
      }
      if (!checked) report_access(token.text, line, how);
    }
  }

  /// Rule 3: errors swallowed inside worker lambdas — bare fallible
  /// calls, and Status locals that die in the body unread.
  void CheckStatusInTask(const std::string& rel,
                         std::span<const Token> tokens,
                         const std::vector<Comment>& comments,
                         const std::map<size_t, size_t>& open_of_close,
                         const std::vector<WorkerBody>& workers) {
    for (const WorkerBody& body : workers) {
      for (size_t i = body.body_open + 1; i < body.body_close; ++i) {
        // Bare fallible call in the task body.
        if (IsStatementStart(tokens, i, open_of_close)) {
          size_t start = i;
          if (tokens[i].IsPunct("(") && i + 2 < body.body_close &&
              tokens[i + 1].IsIdent("void") && tokens[i + 2].IsPunct(")")) {
            start = i + 3;
          }
          const size_t callee = CalleeNameIndex(tokens, start);
          if (callee < tokens.size() &&
              index_.IsFallible(tokens[callee].text)) {
            const size_t close = MatchingClose(tokens, callee + 1);
            if (close + 1 < tokens.size() && tokens[close + 1].IsPunct(";")) {
              reporter_.Report(
                  rel, comments, tokens[callee].line, "status-in-task",
                  "fallible '" + tokens[callee].text +
                      "' called inside a Submit/ParallelFor task with its "
                      "Status discarded: a worker's error must escape the "
                      "lambda (per-task slot or mutex-guarded aggregator), "
                      "or the merged result is silently partial");
              continue;
            }
          }
        }
        // `Status name = ...;` never read again before the body ends.
        if (tokens[i].IsIdent("Status") && i + 2 < body.body_close &&
            tokens[i + 1].kind == TokenKind::kIdentifier &&
            tokens[i + 2].IsPunct("=") &&
            !(i > 0 && tokens[i - 1].IsPunct("::"))) {
          const std::string& name = tokens[i + 1].text;
          bool read_later = false;
          for (size_t j = i + 3; j < body.body_close; ++j) {
            if (tokens[j].kind == TokenKind::kIdentifier &&
                tokens[j].text == name) {
              read_later = true;
              break;
            }
          }
          if (!read_later) {
            reporter_.Report(
                rel, comments, tokens[i + 1].line, "status-in-task",
                "Status '" + name +
                    "' produced inside a Submit/ParallelFor task is never "
                    "read before the lambda ends: store it in a per-task "
                    "slot or hand it to a guarded aggregator so the "
                    "caller sees the failure");
          }
        }
      }
    }
  }

  /// Rule 5: side effects inside debug-only check macros.
  void CheckDcheckSideEffect(const std::string& rel,
                             std::span<const Token> tokens,
                             const std::vector<Comment>& comments) {
    static constexpr std::string_view kMutatingOps[] = {
        "++", "--", "=",  "+=",  "-=",  "*=", "/=",
        "%=", "&=", "|=", "^=", "<<=", ">>=",
    };
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!(tokens[i].IsIdent("FAIRLAW_DCHECK") ||
            tokens[i].IsIdent("FAIRLAW_DCHECK_OK")) ||
          !tokens[i + 1].IsPunct("(")) {
        continue;
      }
      const size_t close = MatchingClose(tokens, i + 1);
      for (size_t j = i + 2; j < close && j < tokens.size(); ++j) {
        bool mutating = false;
        std::string what;
        if (tokens[j].kind == TokenKind::kPunct) {
          for (const std::string_view op : kMutatingOps) {
            if (tokens[j].text == op) {
              mutating = true;
              what = "operator '" + tokens[j].text + "'";
              break;
            }
          }
        } else if (tokens[j].kind == TokenKind::kIdentifier &&
                   index_.IsFallible(tokens[j].text) &&
                   j + 1 < tokens.size() && tokens[j + 1].IsPunct("(")) {
          mutating = true;
          what = "call to fallible '" + tokens[j].text + "'";
        }
        if (!mutating) continue;
        reporter_.Report(
            rel, comments, tokens[j].line, "dcheck-side-effect",
            what + " inside " + tokens[i].text +
                ": the macro compiles out under NDEBUG, so this side "
                "effect silently vanishes from release builds; hoist it "
                "out and check the stored result instead");
        break;  // one finding per macro invocation is enough
      }
    }
  }

  fs::path root_;
  SignatureIndex index_;
  Reporter reporter_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string root_flag = ".";
  std::string json_path;
  std::string self_test;
  bool verbose = false;
  fairlaw::cli::FlagSet flags(
      "fairlaw_flowcheck", "",
      "Cross-file Status-discipline static analysis: signature index of\n"
      "every fallible function in src/** headers plus scope-aware\n"
      "error-flow rules over .cc files (see the header of\n"
      "tools/fairlaw_flowcheck.cc for the rule set and the\n"
      "`flowcheck: allow-<rule>` escape convention).\n"
      "exit codes: 0 clean, 1 findings, 2 usage or I/O error");
  flags.Add("root", &root_flag, "tree to scan");
  flags.Section("output");
  flags.Add("json", &json_path, "write the findings artifact to this path");
  flags.Add("self-test", &self_test,
            "comma-separated rule names; exit 0 iff exactly these rules "
            "produce findings (fixture tests)");
  flags.Add("verbose", &verbose, "print the finding count even when clean");
  fairlaw::Result<fairlaw::cli::ParseResult> parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "fairlaw_flowcheck: %s\n\n%s",
                 parsed.status().message().c_str(), flags.Help().c_str());
    return 2;
  }
  if (parsed->help) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!parsed->positionals.empty()) {
    std::fprintf(stderr, "fairlaw_flowcheck: unexpected argument '%s'\n",
                 parsed->positionals[0].c_str());
    return 2;
  }
  const fs::path root(root_flag);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fairlaw_flowcheck: root '%s' is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  FlowChecker checker(root);
  // flowcheck: allow-discarded-status (FlowChecker::Run returns void; the name-keyed index collides with the fallible audit::Auditor::Run)
  checker.Run();
  checker.reporter().Sorted();
  checker.reporter().PrintFindings(verbose);

  if (!json_path.empty() && !checker.reporter().WriteArtifact(json_path)) {
    return 2;
  }
  if (!self_test.empty()) {
    return checker.reporter().SelfTestMatches(self_test) ? 0 : 1;
  }
  return checker.reporter().FiredRules().empty() ? 0 : 1;
}
