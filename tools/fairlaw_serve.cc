// fairlaw_serve — windowed audit daemon over line-delimited JSON.
//
//   fairlaw_generate events --n=100000 --events-jsonl --batch=512 |
//       fairlaw_serve --bucket-width=1000 --window-buckets=60
//
// Reads one request per line on stdin, writes one response per line on
// stdout. Requests: {"op":"ingest","events":[...]} appends events to
// the sliding window (a ring of time buckets holding mergeable tallies
// and per-group KLL score sketches); {"op":"query","type":...} answers
// audits over the current window without rescanning history;
// {"op":"stats"} dumps the full obs registry. The determinism contract:
// query responses are byte-identical for a given event sequence
// regardless of ingest batch boundaries and --threads — CI replays the
// same stream at two batch sizes and byte-compares the '"op":"query"'
// lines. Protocol details: DESIGN.md §15.
// Exit codes: 0 = clean shutdown (stdin EOF), 1 = bad flags.
#include <cstdint>
#include <cstdio>
#include <iostream>
#include <string>

#include "serve/api.h"
#include "serve/service.h"
#include "tools/cli.h"

namespace {

fairlaw::Result<fairlaw::serve::ServeConfig> Parse(int argc, char** argv,
                                                   bool* show_help,
                                                   std::string* help_text) {
  fairlaw::serve::ServeConfig config;
  fairlaw::cli::FlagSet flags(
      "fairlaw_serve", "",
      "Windowed fairness-audit daemon: line-delimited JSON requests on\n"
      "stdin, one response per line on stdout. Maintains a sliding\n"
      "window of mergeable per-group state and answers audit queries\n"
      "without rescanning history. Query responses are byte-identical\n"
      "for every ingest batching and thread count.");

  flags.Section("window");
  int64_t window_buckets = static_cast<int64_t>(config.num_buckets);
  flags.Add("bucket-width", &config.bucket_width,
            "event-time units per window bucket",
            fairlaw::cli::Range<int64_t>{1, int64_t{1} << 62});
  flags.Add("window-buckets", &window_buckets,
            "ring size: the window covers this many buckets ending at "
            "the watermark",
            fairlaw::cli::Range<int64_t>{1, 1 << 20});

  flags.Section("event schema");
  flags.Add("with-labels", &config.with_labels,
            "events carry 'label' (enables the label metrics)");
  flags.Add("with-scores", &config.with_scores,
            "events carry 'score' (enables drift and quantile queries; "
            "requires --with-labels)");
  flags.Add("with-strata", &config.with_strata,
            "events carry 'stratum' (enables conditional metrics and "
            "drill-down queries)");

  flags.Section("audit thresholds");
  int64_t min_stratum_size = static_cast<int64_t>(config.min_stratum_size);
  flags.Add("tolerance", &config.tolerance,
            "gap tolerance for the equality-style metrics",
            fairlaw::cli::Range<double>{0.0, 1.0});
  flags.Add("di-threshold", &config.di_threshold,
            "disparate-impact ratio threshold (four-fifths rule)",
            fairlaw::cli::Range<double>{0.0, 1.0, /*min_inclusive=*/false});
  flags.Add("drift-tolerance", &config.drift_tolerance,
            "max per-group KS statistic for the sketch drift audit",
            fairlaw::cli::Range<double>{0.0, 1.0});
  flags.Add("min-stratum-size", &min_stratum_size,
            "minimum events per stratum for the conditional metrics",
            fairlaw::cli::Range<int64_t>{1, int64_t{1} << 31});

  flags.Section("execution");
  int64_t threads = static_cast<int64_t>(config.num_threads);
  int64_t sketch_k = static_cast<int64_t>(config.sketch_k);
  flags.Add("threads", &threads,
            "worker threads for window folds and metric evaluation (0 = "
            "one per hardware thread); responses are identical for every "
            "value",
            fairlaw::cli::Range<int64_t>{0, 512});
  flags.Add("sketch-k", &sketch_k,
            "KLL accuracy parameter for the per-group score sketches",
            fairlaw::cli::Range<int64_t>{8, 1 << 20});

  *help_text = flags.Help();
  FAIRLAW_ASSIGN_OR_RETURN(fairlaw::cli::ParseResult parsed,
                           flags.Parse(argc, argv));
  if (parsed.help) {
    *show_help = true;
    return config;
  }
  if (!parsed.positionals.empty()) {
    return fairlaw::Status::Invalid(
        "fairlaw_serve takes no positional arguments (requests arrive on "
        "stdin)");
  }
  config.num_buckets = static_cast<size_t>(window_buckets);
  config.min_stratum_size = static_cast<size_t>(min_stratum_size);
  config.num_threads = static_cast<size_t>(threads);
  config.sketch_k = static_cast<uint32_t>(sketch_k);
  FAIRLAW_RETURN_NOT_OK(config.Validate());
  return config;
}

}  // namespace

int main(int argc, char** argv) {
  bool show_help = false;
  std::string help_text;
  fairlaw::Result<fairlaw::serve::ServeConfig> config =
      Parse(argc, argv, &show_help, &help_text);
  if (!config.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s",
                 config.status().message().c_str(), help_text.c_str());
    return 1;
  }
  if (show_help) {
    std::printf("%s", help_text.c_str());
    return 0;
  }

  fairlaw::serve::Service service(*config);
  std::string line;
  while (std::getline(std::cin, line)) {
    const std::string response = service.HandleLine(line);
    std::fputs(response.c_str(), stdout);
    std::fputc('\n', stdout);
    // One response per request, visible as soon as it exists — callers
    // drive the daemon interactively over a pipe.
    std::fflush(stdout);
  }
  return 0;
}
