#!/usr/bin/env bash
# Serve determinism smoke: replay one generated event stream at two
# ingest batch sizes and several thread counts; every '"op":"query"'
# response line must be byte-identical (ingest acks and stats dumps
# legitimately vary and are filtered out). Driven by ctest
# (tools_serve_identity) and by the CI serve job with a larger --n.
#
# Usage: serve_smoke.sh <fairlaw_generate> <fairlaw_serve> <n> <workdir>
set -euo pipefail

gen="$1"
serve="$2"
n="$3"
dir="$4"

mkdir -p "$dir"
query_every=$((n / 4))

# Same seed, different batching: the event sequence and the query
# positions (after every query_every events) are identical by
# construction; only the ingest line boundaries differ.
"$gen" events --events-jsonl --n="$n" --batch=64 \
    --query-every="$query_every" --with-strata --out="$dir/stream_a.jsonl"
"$gen" events --events-jsonl --n="$n" --batch=977 \
    --query-every="$query_every" --with-strata --out="$dir/stream_b.jsonl"

"$serve" --with-strata <"$dir/stream_a.jsonl" \
    | grep '"op":"query"' >"$dir/resp_batch64.jsonl"
"$serve" --with-strata --threads=4 <"$dir/stream_b.jsonl" \
    | grep '"op":"query"' >"$dir/resp_batch977_t4.jsonl"
"$serve" --with-strata --threads=0 <"$dir/stream_a.jsonl" \
    | grep '"op":"query"' >"$dir/resp_batch64_t0.jsonl"

cmp "$dir/resp_batch64.jsonl" "$dir/resp_batch977_t4.jsonl"
cmp "$dir/resp_batch64.jsonl" "$dir/resp_batch64_t0.jsonl"

count=$(wc -l <"$dir/resp_batch64.jsonl")
if [ "$count" -lt 4 ]; then
  echo "expected at least one full query suite, got $count lines" >&2
  exit 1
fi
echo "serve identity ok: $count query responses byte-identical"
