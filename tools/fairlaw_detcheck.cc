// fairlaw_detcheck — determinism and lock-discipline static analysis.
//
//   fairlaw_detcheck [--root=DIR] [--json=PATH] [--self-test=RULES]
//                    [--verbose]
//
// Third analysis pass next to fairlaw_lint (local hygiene) and
// fairlaw_deps (layering): it guards the repo's load-bearing guarantee
// that audit findings, bootstrap CIs, and obs exports are byte-identical
// for any thread/chunk configuration — the reproducibility bar that lets
// a regulator treat an audit as evidence rather than a one-off run.
// Every rule rejects a construct that can silently leak scheduling,
// hashing, or environment state into exported results. Built on the
// shared token lexer (tools/analysis/lexer.h), so identifiers inside
// strings and comments never trip a rule.
//
// Rules (escape hatch: a `detcheck: allow-<rule>` comment on the
// flagged line or the line above; suppressions are counted in the JSON
// artifact so they stay visible):
//
//   1. unordered-iteration
//        Range-for loops or .begin()/.cbegin() iteration over
//        identifiers declared std::unordered_map/std::unordered_set in
//        the output-contributing trees (src/audit, src/metrics,
//        src/stats, src/obs, src/legal, src/causal). Hash-table
//        iteration order is implementation- and seed-defined, so it
//        must never feed exported or merged results; iterate a sorted
//        view or a first-seen-order index (data::GroupIndex) instead.
//   2. entropy
//        Unsanctioned randomness/time/environment sources anywhere but
//        src/obs/ (home of MonotonicNowNs and the env kill switch):
//        rand, srand, rand_r, drand48, random_device, std engines
//        (mt19937, default_random_engine, ...), system_clock,
//        high_resolution_clock, gettimeofday, timespec_get,
//        clock_gettime, getenv, and time(/clock( calls. Randomness
//        flows through the counter-based SplitMix64 streams
//        (stats::Rng), timing through obs::MonotonicNowNs().
//   3. merge-order
//        Direct accumulation into by-reference-captured state from a
//        worker lambda handed to ThreadPool::Submit/ParallelFor
//        (compound assignment, ++/--, or container push/insert).
//        Completion order is nondeterministic, so workers must write
//        only their own slot (results[i] = ...) or hand (seq, value)
//        pairs to a mutex-guarded aggregator that sorts by sequence
//        number before merging — the idiom Auditor::RunAudit and the
//        subgroup enumerator established. Lambdas named at the call
//        site (auto task = [&](...){...}; pool.ParallelFor(n, task);)
//        are followed to their definition.
//   4. lock-expensive
//        A MutexLock scope that performs I/O, heavy allocation, or
//        pool submission (printf/fstream/ostream, Submit/ParallelFor,
//        std::to_string formatting, export/load entry points, ...).
//        Clang's -Wthread-safety proves the lock is *held*; this rule
//        covers what it cannot express — that the critical section
//        stays short and allocation-light. Snapshot under the lock,
//        format and publish outside it.
//   5. float-reduction
//        std::accumulate / std::reduce / std::transform_reduce /
//        std::inner_product outside src/stats/. Floating-point
//        addition is not associative, so reduction order changes
//        results in the last ulp; stats/ owns the fixed-order
//        reduction helpers every exported number must flow through.
//
// Output: one `file:line: rule: message` diagnostic per finding on
// stderr, plus a machine-readable findings artifact via --json in the
// schema every analysis pass shares (tools/analysis/report.h:
// {"tool":"fairlaw_detcheck","schema_version":1,"findings":[{file,line,
// rule,message}],"count":N,"suppressed":N}; findings sorted by
// file/line/rule, byte-identical for a given tree). --self-test=rule1,
// rule2 exits 0 iff exactly that rule set fires (the fixture tests use
// it to prove every rule detects its negative fixture). Directories
// named *_fixture are skipped. Exit codes: 0 clean, 1 findings, 2 usage
// or I/O error. Registered as a ctest test, so an unsuppressed finding
// fails tier-1.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tools/analysis/lexer.h"
#include "tools/analysis/report.h"
#include "tools/cli.h"

namespace {

namespace fs = std::filesystem;
using fairlaw::analysis::CollectSources;
using fairlaw::analysis::Comment;
using fairlaw::analysis::Lex;
using fairlaw::analysis::LexResult;
using fairlaw::analysis::MatchingClose;
using fairlaw::analysis::ReadFileToString;
using fairlaw::analysis::RelativeTo;
using fairlaw::analysis::Reporter;
using fairlaw::analysis::Token;
using fairlaw::analysis::TokenKind;
using fairlaw::analysis::TokenSeqAt;

/// Trees whose iteration/merge order reaches exported results: audit
/// findings, metric reports, stats CIs, obs exports, legal dossiers,
/// and the causal values metrics consume.
constexpr std::string_view kOutputTrees[] = {
    "src/audit/", "src/metrics/", "src/stats/",
    "src/obs/",   "src/legal/",   "src/causal/",
};

/// Identifiers that smuggle in nondeterminism (rule 2). `time` and
/// `clock` are only flagged as calls (identifier followed by '(').
constexpr std::string_view kEntropyIdents[] = {
    "rand",          "srand",
    "rand_r",        "drand48",
    "random_device", "mt19937",
    "mt19937_64",    "default_random_engine",
    "knuth_b",       "minstd_rand",
    "system_clock",  "high_resolution_clock",
    "gettimeofday",  "timespec_get",
    "clock_gettime", "getenv",
};

constexpr std::string_view kEntropyCallIdents[] = {"time", "clock"};

/// Calls too expensive for a critical section (rule 4): I/O, pool
/// submission, and formatting/allocation-heavy entry points.
constexpr std::string_view kExpensiveInLock[] = {
    "Submit",  "ParallelFor", "printf",  "fprintf",    "fputs",
    "fwrite",  "fopen",       "fflush",  "ifstream",   "ofstream",
    "fstream", "getline",     "system",  "cout",       "cerr",
    "clog",    "to_string",   "ExportJson", "LoadCsv", "ReadFile",
    "WriteFile", "Flush",     "sleep_for",
};

/// Container members whose call from a worker lambda appends in
/// completion order (rule 3).
constexpr std::string_view kAppendMembers[] = {
    "push_back", "emplace_back", "insert", "emplace", "append",
};

constexpr std::string_view kCompoundOps[] = {
    "+=", "-=", "*=", "/=", "|=", "&=", "^=", "++", "--",
};

/// Identifier-before-identifier contexts that are NOT declarations, so
/// `return total;` does not mark `total` as a lambda-local.
constexpr std::string_view kNotDeclKeywords[] = {
    "return",   "co_return", "co_yield", "co_await", "throw",
    "new",      "delete",    "else",     "do",       "goto",
    "case",     "sizeof",    "typename", "using",    "namespace",
    "operator", "if",        "while",    "for",
};

bool InTrees(const std::string& rel, std::span<const std::string_view> trees) {
  for (const std::string_view tree : trees) {
    if (rel.rfind(tree, 0) == 0) return true;
  }
  return false;
}

template <size_t N>
bool Contains(const std::string_view (&arr)[N], std::string_view value) {
  for (const std::string_view element : arr) {
    if (element == value) return true;
  }
  return false;
}

class DetChecker {
 public:
  explicit DetChecker(fs::path root) : root_(std::move(root)) {}

  /// Scans the tree and returns the pass's Reporter with findings in
  /// canonical order. Scan order comes from CollectSources, so the
  /// artifact is byte-identical for a given tree.
  Reporter& Run() {
    static constexpr std::string_view kTops[] = {"src", "tools"};
    for (const fs::path& path : CollectSources(root_, kTops)) {
      CheckFile(path);
    }
    reporter_.Sorted();
    return reporter_;
  }

 private:
  void CheckFile(const fs::path& path) {
    const std::string text = ReadFileToString(path);
    const std::string rel = RelativeTo(path, root_);
    const LexResult lex = Lex(text);
    const std::span<const Token> tokens(lex.tokens);

    if (InTrees(rel, kOutputTrees)) {
      CheckUnorderedIteration(rel, tokens, lex.comments);
    }
    if (rel.rfind("src/obs/", 0) != 0) {
      CheckEntropy(rel, tokens, lex.comments);
    }
    CheckMergeOrder(rel, tokens, lex.comments);
    CheckLockExpensive(rel, tokens, lex.comments);
    if (rel.rfind("src/stats/", 0) != 0) {
      CheckFloatReduction(rel, tokens, lex.comments);
    }
  }

  /// The escape-marker handling (`detcheck: allow-<rule>` on the line,
  /// the line above, or the anchor line) lives in Reporter::Report.
  void Report(const std::string& rel, const std::vector<Comment>& comments,
              size_t line, std::string rule, std::string message,
              size_t anchor_line = 0) {
    reporter_.Report(rel, comments, line, std::move(rule), std::move(message),
                     anchor_line);
  }

  /// Names declared with type std::unordered_map<...> or
  /// std::unordered_set<...> in this file (members, locals, and
  /// parameters alike) — purely lexical: the declared name is the first
  /// identifier after the template argument list and any &/* sigils.
  static std::vector<std::string> UnorderedNames(
      std::span<const Token> tokens) {
    std::vector<std::string> names;
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (!TokenSeqAt(tokens, i, {"std", "::"})) continue;
      const Token& kind = tokens[i + 2];
      if (!kind.IsIdent("unordered_map") && !kind.IsIdent("unordered_set")) {
        continue;
      }
      size_t j = i + 3;
      if (j >= tokens.size() || !tokens[j].IsPunct("<")) continue;
      // Skip the template argument list; ">>" closes two levels.
      int depth = 0;
      for (; j < tokens.size(); ++j) {
        if (tokens[j].IsPunct("<")) ++depth;
        if (tokens[j].IsPunct(">")) --depth;
        if (tokens[j].IsPunct(">>")) depth -= 2;
        if (depth <= 0) break;
      }
      ++j;  // past the closer
      while (j < tokens.size() &&
             (tokens[j].IsPunct("&") || tokens[j].IsPunct("*"))) {
        ++j;
      }
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
        names.push_back(tokens[j].text);
      }
    }
    return names;
  }

  /// Rule 1: hash-order iteration in output-contributing trees.
  void CheckUnorderedIteration(const std::string& rel,
                               std::span<const Token> tokens,
                               const std::vector<Comment>& comments) {
    const std::vector<std::string> names = UnorderedNames(tokens);
    if (names.empty()) return;
    auto is_tracked = [&names](const Token& token) {
      return token.kind == TokenKind::kIdentifier &&
             std::find(names.begin(), names.end(), token.text) != names.end();
    };
    for (size_t i = 0; i < tokens.size(); ++i) {
      // Range-for whose range expression names an unordered container.
      if (tokens[i].IsIdent("for") && i + 1 < tokens.size() &&
          tokens[i + 1].IsPunct("(")) {
        const size_t close = MatchingClose(tokens, i + 1);
        size_t colon = tokens.size();
        int depth = 0;
        for (size_t j = i + 1; j < close; ++j) {
          if (tokens[j].IsPunct("(")) ++depth;
          if (tokens[j].IsPunct(")")) --depth;
          if (depth == 1 && tokens[j].IsPunct(":")) {
            colon = j;
            break;
          }
        }
        if (colon == tokens.size()) continue;
        for (size_t j = colon + 1; j < close; ++j) {
          if (!is_tracked(tokens[j])) continue;
          Report(rel, comments, tokens[i].line, "unordered-iteration",
                 "range-for over std::unordered_* '" + tokens[j].text +
                     "': hash iteration order is implementation-defined "
                     "and leaks into merged/exported results; iterate a "
                     "sorted view or a first-seen-order index");
          break;
        }
        continue;
      }
      // Explicit iterator loops: name.begin() / name.cbegin().
      if (i + 2 < tokens.size() && is_tracked(tokens[i]) &&
          tokens[i + 1].IsPunct(".") &&
          (tokens[i + 2].IsIdent("begin") || tokens[i + 2].IsIdent("cbegin"))) {
        Report(rel, comments, tokens[i].line, "unordered-iteration",
               "iterator over std::unordered_* '" + tokens[i].text +
                   "': hash iteration order is implementation-defined and "
                   "leaks into merged/exported results");
      }
    }
  }

  /// Rule 2: unsanctioned entropy/time/environment sources.
  void CheckEntropy(const std::string& rel, std::span<const Token> tokens,
                    const std::vector<Comment>& comments) {
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& token = tokens[i];
      if (token.kind != TokenKind::kIdentifier) continue;
      const bool named = Contains(kEntropyIdents, token.text);
      const bool call = Contains(kEntropyCallIdents, token.text) &&
                        i + 1 < tokens.size() && tokens[i + 1].IsPunct("(");
      if (!named && !call) continue;
      Report(rel, comments, token.line, "entropy",
             "'" + token.text +
                 "' is an unsanctioned entropy/time source: randomness "
                 "goes through the counter-based SplitMix64 streams "
                 "(stats::Rng), timing through obs::MonotonicNowNs(), so "
                 "results depend only on (seed, input), never on the "
                 "host, schedule, or wall clock");
    }
  }

  // -- Rule 3 helpers. -----------------------------------------------------

  struct Lambda {
    size_t intro = 0;       // index of '['
    size_t body_open = 0;   // index of '{'
    size_t body_close = 0;  // index of '}'
    bool default_ref = false;
    std::vector<std::string> ref_captures;
    std::vector<std::string> locals;  // params + declared-in-body names
  };

  /// Parses the lambda literal whose capture intro starts at `intro`
  /// ('[' token). Returns false when the bracket shape is not a lambda.
  static bool ParseLambda(std::span<const Token> tokens, size_t intro,
                          Lambda* out) {
    const size_t intro_close = MatchingClose(tokens, intro);
    if (intro_close >= tokens.size()) return false;
    out->intro = intro;
    // Capture list: [&], [&a, b], [=, &c], [this, &d] ...
    for (size_t j = intro + 1; j < intro_close; ++j) {
      if (tokens[j].IsPunct("&")) {
        if (j + 1 < intro_close &&
            tokens[j + 1].kind == TokenKind::kIdentifier) {
          out->ref_captures.push_back(tokens[j + 1].text);
          ++j;
        } else {
          out->default_ref = true;
        }
      }
    }
    // Optional parameter list.
    size_t j = intro_close + 1;
    if (j < tokens.size() && tokens[j].IsPunct("(")) {
      const size_t params_close = MatchingClose(tokens, j);
      if (params_close >= tokens.size()) return false;
      // The declared name of each parameter is the identifier right
      // before ',' or ')'.
      for (size_t k = j + 1; k <= params_close; ++k) {
        if ((tokens[k].IsPunct(",") || k == params_close) && k > j + 1 &&
            tokens[k - 1].kind == TokenKind::kIdentifier) {
          out->locals.push_back(tokens[k - 1].text);
        }
      }
      j = params_close + 1;
    }
    // Skip specifiers/trailing-return tokens up to the body brace.
    while (j < tokens.size() && !tokens[j].IsPunct("{") &&
           !tokens[j].IsPunct(";") && !tokens[j].IsPunct(")")) {
      ++j;
    }
    if (j >= tokens.size() || !tokens[j].IsPunct("{")) return false;
    out->body_open = j;
    out->body_close = MatchingClose(tokens, j);
    if (out->body_close >= tokens.size()) return false;
    CollectBodyLocals(tokens, out);
    return true;
  }

  /// Heuristic local-declaration scan of the body: `Type name`,
  /// `Tmpl<...> name`, and `Type& name` shapes mark `name` as local, so
  /// a worker accumulating into its own stack variable is not flagged.
  static void CollectBodyLocals(std::span<const Token> tokens, Lambda* out) {
    for (size_t j = out->body_open + 1; j < out->body_close; ++j) {
      if (tokens[j].kind != TokenKind::kIdentifier) continue;
      const Token& prev = tokens[j - 1];
      const bool after_type_name = prev.kind == TokenKind::kIdentifier &&
                                   !Contains(kNotDeclKeywords, prev.text);
      const bool after_template_close = prev.IsPunct(">");
      const bool after_sigil =
          (prev.IsPunct("&") || prev.IsPunct("*")) && j >= 2 &&
          (tokens[j - 2].kind == TokenKind::kIdentifier ||
           tokens[j - 2].IsPunct(">"));
      if (after_type_name || after_template_close || after_sigil) {
        out->locals.push_back(tokens[j].text);
      }
    }
  }

  /// True when `name` may be written from outside the worker: captured
  /// by reference explicitly, or visible through a [&] default and not
  /// declared locally.
  static bool IsSharedWrite(const Lambda& lambda, const std::string& name) {
    if (std::find(lambda.locals.begin(), lambda.locals.end(), name) !=
        lambda.locals.end()) {
      return false;
    }
    if (std::find(lambda.ref_captures.begin(), lambda.ref_captures.end(),
                  name) != lambda.ref_captures.end()) {
      return true;
    }
    return lambda.default_ref;
  }

  void ScanLambdaBody(const std::string& rel, std::span<const Token> tokens,
                      const std::vector<Comment>& comments,
                      const Lambda& lambda) {
    for (size_t j = lambda.body_open + 1; j < lambda.body_close; ++j) {
      const Token& token = tokens[j];
      std::string written;
      size_t op_index = 0;
      // `x += ...`, `x++`, `++x` on a captured name.
      if (token.kind == TokenKind::kIdentifier &&
          tokens[j + 1].kind == TokenKind::kPunct &&
          Contains(kCompoundOps, tokens[j + 1].text)) {
        written = token.text;
        op_index = j;
      } else if (token.kind == TokenKind::kPunct &&
                 (token.text == "++" || token.text == "--") &&
                 tokens[j + 1].kind == TokenKind::kIdentifier) {
        written = tokens[j + 1].text;
        op_index = j + 1;
      } else if (token.kind == TokenKind::kIdentifier &&
                 tokens[j + 1].IsPunct(".") &&
                 tokens[j + 2].kind == TokenKind::kIdentifier &&
                 Contains(kAppendMembers, tokens[j + 2].text) &&
                 j + 3 < tokens.size() && tokens[j + 3].IsPunct("(")) {
        written = token.text;
        op_index = j;
      } else {
        continue;
      }
      if (!IsSharedWrite(lambda, written)) continue;
      Report(rel, comments, tokens[op_index].line, "merge-order",
             "worker lambda accumulates into captured-by-reference '" +
                 written +
                 "': completion order is nondeterministic, so write a "
                 "per-task slot (results[i] = ...) or hand (seq, value) "
                 "to a mutex-guarded aggregator that merges in sequence "
                 "order (the RunAudit idiom)");
    }
  }

  /// Rule 3: accumulation from Submit/ParallelFor worker lambdas —
  /// lambda literals at the call site plus lambdas assigned to a name
  /// that is later passed to Submit/ParallelFor.
  void CheckMergeOrder(const std::string& rel, std::span<const Token> tokens,
                       const std::vector<Comment>& comments) {
    std::vector<std::string> task_names;
    std::vector<size_t> literal_intros;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (!(tokens[i].IsIdent("Submit") || tokens[i].IsIdent("ParallelFor")) ||
          !tokens[i + 1].IsPunct("(")) {
        continue;
      }
      const size_t close = MatchingClose(tokens, i + 1);
      int depth = 0;
      for (size_t j = i + 1; j < close; ++j) {
        if (tokens[j].IsPunct("(") || tokens[j].IsPunct("[") ||
            tokens[j].IsPunct("{")) {
          ++depth;
        }
        if (tokens[j].IsPunct(")") || tokens[j].IsPunct("]") ||
            tokens[j].IsPunct("}")) {
          --depth;
        }
        // A '[' in argument position opens a lambda intro (a subscript
        // would follow a name or ']'); arguments sit at depth 1.
        if (tokens[j].IsPunct("[") && depth == 2 &&
            (tokens[j - 1].IsPunct("(") || tokens[j - 1].IsPunct(","))) {
          literal_intros.push_back(j);
        }
        // An identifier argument names a task defined elsewhere.
        if (depth == 1 && tokens[j].kind == TokenKind::kIdentifier &&
            (tokens[j - 1].IsPunct("(") || tokens[j - 1].IsPunct(",")) &&
            (tokens[j + 1].IsPunct(",") || tokens[j + 1].IsPunct(")"))) {
          task_names.push_back(tokens[j].text);
        }
      }
    }
    // Definitions of named tasks: `name = [...](...) {...}`.
    for (size_t i = 0; i + 2 < tokens.size(); ++i) {
      if (tokens[i].kind == TokenKind::kIdentifier &&
          std::find(task_names.begin(), task_names.end(), tokens[i].text) !=
              task_names.end() &&
          tokens[i + 1].IsPunct("=") && tokens[i + 2].IsPunct("[")) {
        literal_intros.push_back(i + 2);
      }
    }
    for (const size_t intro : literal_intros) {
      Lambda lambda;
      if (ParseLambda(tokens, intro, &lambda)) {
        ScanLambdaBody(rel, tokens, comments, lambda);
      }
    }
  }

  /// Rule 4: expensive work inside a MutexLock critical section. The
  /// section runs from the `MutexLock guard(...)` declaration to the
  /// end of its enclosing block.
  void CheckLockExpensive(const std::string& rel,
                          std::span<const Token> tokens,
                          const std::vector<Comment>& comments) {
    int depth = 0;
    for (size_t i = 0; i + 1 < tokens.size(); ++i) {
      if (tokens[i].IsPunct("{")) ++depth;
      if (tokens[i].IsPunct("}")) --depth;
      if (!tokens[i].IsIdent("MutexLock") ||
          tokens[i + 1].kind != TokenKind::kIdentifier) {
        continue;  // class mentions / ctor decls, not a guard declaration
      }
      const size_t decl_line = tokens[i].line;
      int section_depth = depth;
      for (size_t j = i + 2; j < tokens.size(); ++j) {
        if (tokens[j].IsPunct("{")) ++section_depth;
        if (tokens[j].IsPunct("}") && --section_depth < depth) break;
        if (tokens[j].kind == TokenKind::kIdentifier &&
            Contains(kExpensiveInLock, tokens[j].text)) {
          Report(rel, comments, tokens[j].line, "lock-expensive",
                 "'" + tokens[j].text +
                     "' inside a MutexLock scope (held since line " +
                     std::to_string(decl_line) +
                     "): I/O, formatting, and pool submission do not "
                     "belong in a critical section; snapshot under the "
                     "lock, then format/publish outside it",
                 decl_line);
        }
      }
    }
  }

  /// Rule 5: order-sensitive floating reductions outside src/stats/.
  void CheckFloatReduction(const std::string& rel,
                           std::span<const Token> tokens,
                           const std::vector<Comment>& comments) {
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kIdentifier) continue;
      if (token.text != "accumulate" && token.text != "reduce" &&
          token.text != "transform_reduce" && token.text != "inner_product") {
        continue;
      }
      Report(rel, comments, token.line, "float-reduction",
             "'std::" + token.text +
                 "' outside src/stats/: floating-point addition is not "
                 "associative, so reduction order changes exported "
                 "numbers; use the fixed-order helpers in stats/");
    }
  }

  fs::path root_;
  Reporter reporter_{"fairlaw_detcheck", "detcheck"};
};

}  // namespace

int main(int argc, char** argv) {
  std::string root_flag = ".";
  std::string json_path;
  std::string self_test;
  bool verbose = false;
  fairlaw::cli::FlagSet flags(
      "fairlaw_detcheck", "",
      "Determinism / lock-discipline static analysis for the parallel\n"
      "audit stack (see the header of tools/fairlaw_detcheck.cc for the\n"
      "rule set and the `detcheck: allow-<rule>` escape convention).\n"
      "exit codes: 0 clean, 1 findings, 2 usage or I/O error");
  flags.Add("root", &root_flag, "tree to scan");
  flags.Section("output");
  flags.Add("json", &json_path, "write the findings artifact to this path");
  flags.Add("self-test", &self_test,
            "comma-separated rule names; exit 0 iff exactly these rules "
            "produce findings (fixture tests)");
  flags.Add("verbose", &verbose, "print the finding count even when clean");
  fairlaw::Result<fairlaw::cli::ParseResult> parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "fairlaw_detcheck: %s\n\n%s",
                 parsed.status().message().c_str(), flags.Help().c_str());
    return 2;
  }
  if (parsed->help) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!parsed->positionals.empty()) {
    std::fprintf(stderr, "fairlaw_detcheck: unexpected argument '%s'\n",
                 parsed->positionals[0].c_str());
    return 2;
  }
  const fs::path root(root_flag);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fairlaw_detcheck: root '%s' is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  DetChecker checker(root);
  Reporter& reporter = checker.Run();
  reporter.PrintFindings(verbose);
  if (!json_path.empty() && !reporter.WriteArtifact(json_path)) return 2;
  if (!self_test.empty()) return reporter.SelfTestMatches(self_test) ? 0 : 1;
  return reporter.Sorted().empty() ? 0 : 1;
}
