// Fixture: rule 5 (float-reduction). Reduction order over floating
// values changes the result in the last ulp, so exported numbers must
// flow through the fixed-order helpers in stats/. Not compiled; scanned
// by the detcheck self-test.
#include <numeric>
#include <vector>

namespace fairlaw_fixture {

double SumRates(const std::vector<double>& rates) {
  return std::accumulate(rates.begin(), rates.end(), 0.0);  // finding
}

double SumRatesParallel(const std::vector<double>& rates) {
  return std::reduce(rates.begin(), rates.end(), 0.0);  // finding
}

}  // namespace fairlaw_fixture
