// Fixture: rule 4 (lock-expensive). I/O, formatting, and pool
// submission inside a critical section serialize every other thread
// behind the slow call. Not compiled; scanned by the detcheck
// self-test.
#include <cstdio>
#include <string>

#include "base/mutex.h"
#include "base/thread_pool.h"

namespace fairlaw_fixture {

struct LoggedCounter {
  fairlaw::Mutex mu;
  long value = 0;

  void Add(long delta, fairlaw::ThreadPool* pool) {
    fairlaw::MutexLock lock(mu);
    value += delta;
    std::string rendered = std::to_string(value);      // finding: formatting
    std::fprintf(stderr, "%s\n", rendered.c_str());    // finding: I/O
    pool->Submit([] {});                               // finding: submission
  }
};

}  // namespace fairlaw_fixture
