// Fixture: rule 2 (entropy). Seeding or timing from ambient sources
// makes two runs of the same audit disagree. Not compiled; scanned by
// the detcheck self-test.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fairlaw_fixture {

unsigned AmbientSeed() {
  std::random_device device;                       // finding
  unsigned seed = device();
  seed ^= static_cast<unsigned>(time(nullptr));    // finding: time( call
  if (std::getenv("FIXTURE_SEED") != nullptr) {    // finding
    seed += 1;
  }
  return seed;
}

long WallClockTag() {
  return std::chrono::system_clock::now().time_since_epoch().count();
  // finding above: system_clock
}

}  // namespace fairlaw_fixture
