// Fixture: rule 1 (unordered-iteration). Iterating a hash container in
// an output-contributing tree leaks implementation-defined order into
// the merged findings. Not compiled; scanned by the detcheck self-test.
#include <string>
#include <unordered_map>

namespace fairlaw_fixture {

struct Report {
  std::unordered_map<std::string, double> per_group;

  double ExportSum() const {
    double sum = 0.0;
    for (const auto& [name, value] : per_group) {  // finding: hash order
      sum = sum * 2.0 + value;                     // order-sensitive fold
    }
    return sum;
  }

  double FirstByIterator() const {
    auto it = per_group.begin();  // finding: explicit hash iteration
    return it->second;
  }
};

}  // namespace fairlaw_fixture
