// Fixture: rule 3 (merge-order). Workers accumulating straight into
// captured-by-reference state publish results in completion order,
// which varies run to run. Not compiled; scanned by the detcheck
// self-test.
#include <string>
#include <vector>

#include "base/thread_pool.h"

namespace fairlaw_fixture {

double AccumulateUnordered(const std::vector<double>& values) {
  fairlaw::ThreadPool pool(4);
  double total = 0.0;
  std::vector<std::string> flagged;
  size_t done = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    pool.Submit([&, i] {
      total += values[i];                    // finding: shared accumulator
      flagged.push_back(std::to_string(i));  // finding: completion order
      ++done;                                // finding: shared counter
    });
  }
  return total;
}

double AccumulateViaNamedTask(const std::vector<double>& values) {
  fairlaw::ThreadPool pool(4);
  double total = 0.0;
  auto task = [&total, &values](size_t i) {
    total += values[i];  // finding: named task, followed to its definition
  };
  pool.ParallelFor(values.size(), task);
  return total;
}

}  // namespace fairlaw_fixture
