// Fixture: the same rule-5 violations as detcheck_fixture, each
// suppressed by the `detcheck: allow-float-reduction` escape, so a scan
// of this tree must report ZERO findings.
#include <numeric>
#include <vector>

namespace fairlaw_fixture {

double SumRates(const std::vector<double>& rates) {
  // detcheck: allow-float-reduction (fixture: deliberate scalar baseline)
  return std::accumulate(rates.begin(), rates.end(), 0.0);
}

double SumRatesParallel(const std::vector<double>& rates) {
  return std::reduce(  // detcheck: allow-float-reduction (trailing marker)
      rates.begin(), rates.end(), 0.0);
}

}  // namespace fairlaw_fixture
