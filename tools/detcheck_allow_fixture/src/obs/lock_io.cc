// Fixture: the same rule-4 violations as detcheck_fixture, suppressed
// via the `detcheck: allow-lock-expensive` escape on the MutexLock
// declaration line — the rule accepts the marker on either the flagged
// call or the guard that opens the section. A scan of this tree must
// report ZERO findings.
#include <cstdio>
#include <string>

#include "base/mutex.h"
#include "base/thread_pool.h"

namespace fairlaw_fixture {

struct LoggedCounter {
  fairlaw::Mutex mu;
  long value = 0;

  void Add(long delta, fairlaw::ThreadPool* pool) {
    fairlaw::MutexLock lock(mu);  // detcheck: allow-lock-expensive
    value += delta;
    std::string rendered = std::to_string(value);
    std::fprintf(stderr, "%s\n", rendered.c_str());
    pool->Submit([] {});
  }
};

}  // namespace fairlaw_fixture
