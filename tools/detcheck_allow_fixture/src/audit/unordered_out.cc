// Fixture: the same rule-1 violations as detcheck_fixture, each
// suppressed by the `detcheck: allow-unordered-iteration` escape, so a
// scan of this tree must report ZERO findings (and count 2 suppressed).
#include <string>
#include <unordered_map>

namespace fairlaw_fixture {

struct Report {
  std::unordered_map<std::string, double> per_group;

  double ExportSum() const {
    double sum = 0.0;
    // detcheck: allow-unordered-iteration (fixture: marker on line above)
    for (const auto& [name, value] : per_group) {
      sum = sum * 2.0 + value;
    }
    return sum;
  }

  double FirstByIterator() const {
    auto it = per_group.begin();  // detcheck: allow-unordered-iteration
    return it->second;
  }
};

}  // namespace fairlaw_fixture
