// Fixture: the same rule-3 violations as detcheck_fixture, each
// suppressed by the `detcheck: allow-merge-order` escape, so a scan of
// this tree must report ZERO findings.
#include <string>
#include <vector>

#include "base/thread_pool.h"

namespace fairlaw_fixture {

double AccumulateUnordered(const std::vector<double>& values) {
  fairlaw::ThreadPool pool(4);
  double total = 0.0;
  std::vector<std::string> flagged;
  size_t done = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    pool.Submit([&, i] {
      total += values[i];                    // detcheck: allow-merge-order
      flagged.push_back(std::to_string(i));  // detcheck: allow-merge-order
      ++done;                                // detcheck: allow-merge-order
    });
  }
  return total;
}

double AccumulateViaNamedTask(const std::vector<double>& values) {
  fairlaw::ThreadPool pool(4);
  double total = 0.0;
  auto task = [&total, &values](size_t i) {
    total += values[i];  // detcheck: allow-merge-order
  };
  pool.ParallelFor(values.size(), task);
  return total;
}

}  // namespace fairlaw_fixture
