// Fixture: the same rule-2 violations as detcheck_fixture, each
// suppressed by the `detcheck: allow-entropy` escape, so a scan of this
// tree must report ZERO findings.
#include <chrono>
#include <cstdlib>
#include <random>

namespace fairlaw_fixture {

unsigned AmbientSeed() {
  std::random_device device;                     // detcheck: allow-entropy
  unsigned seed = device();
  seed ^= static_cast<unsigned>(time(nullptr));  // detcheck: allow-entropy
  // detcheck: allow-entropy (fixture: marker on the line above the call)
  if (std::getenv("FIXTURE_SEED") != nullptr) {
    seed += 1;
  }
  return seed;
}

long WallClockTag() {
  return std::chrono::system_clock::now()  // detcheck: allow-entropy
      .time_since_epoch()
      .count();
}

}  // namespace fairlaw_fixture
