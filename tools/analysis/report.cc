#include "tools/analysis/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <tuple>

namespace fairlaw::analysis {

namespace fs = std::filesystem;

namespace {

std::string JsonEscape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

}  // namespace

void Reporter::Report(const std::string& file,
                      const std::vector<Comment>& comments, size_t line,
                      std::string rule, std::string message,
                      size_t anchor_line) {
  const std::string marker = marker_prefix_ + ": allow-" + rule;
  if (HasMarkerOnOrAbove(comments, marker, line) ||
      (anchor_line != 0 &&
       HasMarkerOnOrAbove(comments, marker, anchor_line))) {
    ++suppressed_;
    return;
  }
  findings_.push_back(Finding{file, line, std::move(rule), std::move(message)});
}

void Reporter::ReportAlways(std::string file, size_t line, std::string rule,
                            std::string message) {
  findings_.push_back(
      Finding{std::move(file), line, std::move(rule), std::move(message)});
}

const std::vector<Finding>& Reporter::Sorted() {
  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule) <
                     std::tie(b.file, b.line, b.rule);
            });
  return findings_;
}

std::set<std::string> Reporter::FiredRules() const {
  std::set<std::string> rules;
  for (const Finding& finding : findings_) rules.insert(finding.rule);
  return rules;
}

std::string Reporter::Json() const {
  std::ostringstream out;
  out << "{\"tool\":\"" << tool_ << "\",\"schema_version\":1,\"findings\":[";
  bool first = true;
  for (const Finding& finding : findings_) {
    if (!first) out << ',';
    first = false;
    out << "{\"file\":\"" << JsonEscape(finding.file)
        << "\",\"line\":" << finding.line << ",\"rule\":\"" << finding.rule
        << "\",\"message\":\"" << JsonEscape(finding.message) << "\"}";
  }
  out << "],\"count\":" << findings_.size()
      << ",\"suppressed\":" << suppressed_ << "}";
  return out.str();
}

void Reporter::PrintFindings(bool verbose) const {
  for (const Finding& finding : findings_) {
    std::fprintf(stderr, "%s:%zu: %s: %s\n", finding.file.c_str(),
                 finding.line, finding.rule.c_str(), finding.message.c_str());
  }
  if (verbose || !findings_.empty()) {
    std::fprintf(stderr, "%s: %zu finding(s), %zu suppressed\n", tool_.c_str(),
                 findings_.size(), suppressed_);
  }
}

bool Reporter::WriteArtifact(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "%s: cannot write '%s'\n", tool_.c_str(),
                 path.c_str());
    return false;
  }
  out << Json() << "\n";
  return true;
}

bool Reporter::SelfTestMatches(std::string_view spec) const {
  std::set<std::string> expected;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const size_t comma = rest.find(',');
    expected.insert(std::string(rest.substr(0, comma)));
    if (comma == std::string_view::npos) break;
    rest.remove_prefix(comma + 1);
  }
  const std::set<std::string> fired = FiredRules();
  if (fired == expected) return true;
  std::fprintf(stderr,
               "%s: self-test mismatch: expected %zu rule(s), got %zu\n",
               tool_.c_str(), expected.size(), fired.size());
  for (const std::string& rule : expected) {
    if (fired.count(rule) == 0) {
      std::fprintf(stderr, "  missing: %s\n", rule.c_str());
    }
  }
  for (const std::string& rule : fired) {
    if (expected.count(rule) == 0) {
      std::fprintf(stderr, "  unexpected: %s\n", rule.c_str());
    }
  }
  return false;
}

std::vector<fs::path> CollectSources(const fs::path& root,
                                     std::span<const std::string_view> tops) {
  std::vector<fs::path> files;
  for (const std::string_view top : tops) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
      if (it->is_directory() &&
          it->path().filename().string().ends_with("_fixture")) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const std::string ext = it->path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(it->path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string ReadFileToString(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string RelativeTo(const fs::path& path, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(path, root, ec);
  return ec ? path.generic_string() : rel.generic_string();
}

}  // namespace fairlaw::analysis
