#include "tools/analysis/lexer.h"

#include <cctype>

namespace fairlaw::analysis {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

bool IsDigit(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

/// Character scanner that performs translation-phase-2 line splicing
/// (backslash-newline disappears) transparently, while keeping an exact
/// 1-based line count. Raw string bodies bypass it (the standard
/// reverts splicing there) by indexing the source directly.
class Scanner {
 public:
  explicit Scanner(std::string_view source) : src_(source) {}

  /// Current character after splices, '\0' at end of input.
  char Cur() {
    SkipSplices();
    return i_ < src_.size() ? src_[i_] : '\0';
  }

  /// Character after Cur(), again splice-aware.
  char Next() {
    SkipSplices();
    const size_t save_i = i_;
    const size_t save_line = line_;
    Bump();
    const char c = Cur();
    i_ = save_i;
    line_ = save_line;
    return c;
  }

  /// Up to `n` upcoming spliced characters, for punctuator matching.
  std::string PeekString(size_t n) {
    const size_t save_i = i_;
    const size_t save_line = line_;
    std::string out;
    for (size_t k = 0; k < n; ++k) {
      const char c = Cur();
      if (c == '\0') break;
      out.push_back(c);
      Bump();
    }
    i_ = save_i;
    line_ = save_line;
    return out;
  }

  /// Consumes the current spliced character.
  void Bump() {
    SkipSplices();
    if (i_ >= src_.size()) return;
    if (src_[i_] == '\n') ++line_;
    ++i_;
  }

  bool AtEnd() {
    SkipSplices();
    return i_ >= src_.size();
  }

  size_t line() const { return line_; }

  // Raw access for raw-string bodies (no splicing, manual line count).
  size_t raw_pos() const { return i_; }
  void set_raw_pos(size_t i) { i_ = i; }
  void add_lines(size_t n) { line_ += n; }
  std::string_view source() const { return src_; }

 private:
  /// Skips every backslash-newline (optionally backslash-CR-LF) splice
  /// at the current position.
  void SkipSplices() {
    while (i_ + 1 < src_.size() && src_[i_] == '\\') {
      size_t j = i_ + 1;
      if (src_[j] == '\r' && j + 1 < src_.size()) ++j;
      if (src_[j] != '\n') return;
      i_ = j + 1;
      ++line_;
    }
  }

  std::string_view src_;
  size_t i_ = 0;
  size_t line_ = 1;
};

/// Punctuators, longest first so maximal munch falls out of the scan
/// order. Digraphs are deliberately absent.
constexpr std::string_view kPuncts[] = {
    "<<=", ">>=", "...", "->*", "<=>",                       // length 3
    "::", "->", "##", "<<", ">>", "<=", ">=", "==", "!=",    // length 2
    "&&", "||", "++", "--", "+=", "-=", "*=", "/=", "%=",    //
    "&=", "|=", "^=", ".*",                                  //
};

bool IsStringPrefix(std::string_view ident) {
  return ident == "u8" || ident == "u" || ident == "U" || ident == "L";
}

bool IsRawStringPrefix(std::string_view ident) {
  return ident == "R" || ident == "u8R" || ident == "uR" || ident == "UR" ||
         ident == "LR";
}

}  // namespace

const Token TokenCursor::kEof{};

LexResult Lex(std::string_view source) {
  LexResult out;
  Scanner s(source);

  // Lexes a quoted literal body (escape-aware) into `text`; `quote` is
  // '"' or '\''. A bare newline terminates the token so a broken file
  // cannot swallow the rest of the scan. The opening quote has been
  // consumed; consumes through the closing quote.
  auto lex_quoted = [&s](char quote, std::string* text) {
    while (true) {
      const char c = s.Cur();
      if (c == '\0' || c == '\n' || c == quote) {
        if (c == quote) s.Bump();
        return;
      }
      if (c == '\\') {  // escape: keep both characters verbatim
        text->push_back(c);
        s.Bump();
        const char escaped = s.Cur();
        if (escaped == '\0' || escaped == '\n') return;
        text->push_back(escaped);
        s.Bump();
        continue;
      }
      text->push_back(c);
      s.Bump();
    }
  };

  // Raw string body: R"delim( ... )delim". The opening quote has been
  // consumed. No splicing applies, so this walks the source directly.
  auto lex_raw_string = [&s](std::string* text) {
    std::string_view src = s.source();
    size_t i = s.raw_pos();
    std::string delim;
    while (i < src.size() && src[i] != '(' && src[i] != '\n') {
      delim.push_back(src[i++]);
    }
    if (i < src.size() && src[i] == '(') ++i;  // past '('
    const std::string closer = ")" + delim + "\"";
    size_t lines = 0;
    while (i < src.size() && src.compare(i, closer.size(), closer) != 0) {
      if (src[i] == '\n') ++lines;
      text->push_back(src[i++]);
    }
    if (i < src.size()) i += closer.size();  // past )delim"
    s.set_raw_pos(i);
    s.add_lines(lines);
  };

  while (!s.AtEnd()) {
    const char c = s.Cur();
    const size_t line = s.line();

    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      s.Bump();
      continue;
    }

    // Comments. A line comment whose last character is a backslash
    // splices onto the next line; Scanner handles that transparently,
    // so the 'ends at newline' test below is already splice-correct.
    if (c == '/' && s.Next() == '/') {
      s.Bump();
      s.Bump();
      Comment comment;
      comment.line = line;
      while (s.Cur() != '\0' && s.Cur() != '\n') {
        comment.text.push_back(s.Cur());
        s.Bump();
      }
      comment.end_line = s.line();
      out.comments.push_back(std::move(comment));
      continue;
    }
    if (c == '/' && s.Next() == '*') {
      s.Bump();
      s.Bump();
      Comment comment;
      comment.line = line;
      while (s.Cur() != '\0' && !(s.Cur() == '*' && s.Next() == '/')) {
        comment.text.push_back(s.Cur());
        s.Bump();
      }
      if (s.Cur() != '\0') {
        s.Bump();
        s.Bump();
      }
      comment.end_line = s.line();
      out.comments.push_back(std::move(comment));
      continue;
    }

    // Identifier, possibly a literal prefix (R"..., u8"..., L'...).
    if (IsIdentStart(c)) {
      std::string ident;
      while (IsIdentChar(s.Cur())) {
        ident.push_back(s.Cur());
        s.Bump();
      }
      if (s.Cur() == '"' && IsRawStringPrefix(ident)) {
        s.Bump();  // opening quote
        Token token{TokenKind::kString, "", line};
        lex_raw_string(&token.text);
        out.tokens.push_back(std::move(token));
        continue;
      }
      if (s.Cur() == '"' && IsStringPrefix(ident)) {
        s.Bump();
        Token token{TokenKind::kString, "", line};
        lex_quoted('"', &token.text);
        out.tokens.push_back(std::move(token));
        continue;
      }
      if (s.Cur() == '\'' && IsStringPrefix(ident)) {
        s.Bump();
        Token token{TokenKind::kCharLiteral, "", line};
        lex_quoted('\'', &token.text);
        out.tokens.push_back(std::move(token));
        continue;
      }
      out.tokens.push_back(Token{TokenKind::kIdentifier, std::move(ident),
                                 line});
      continue;
    }

    // pp-number: starts with a digit or dot-digit; consumes identifier
    // characters, digit separators, dots, and signed exponents.
    if (IsDigit(c) || (c == '.' && IsDigit(s.Next()))) {
      std::string number;
      while (true) {
        const char d = s.Cur();
        if (IsIdentChar(d) || d == '.' || d == '\'') {
          number.push_back(d);
          s.Bump();
          const char sign = s.Cur();
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') &&
              (sign == '+' || sign == '-')) {
            number.push_back(sign);
            s.Bump();
          }
          continue;
        }
        break;
      }
      out.tokens.push_back(Token{TokenKind::kNumber, std::move(number), line});
      continue;
    }

    // Plain literals.
    if (c == '"') {
      s.Bump();
      Token token{TokenKind::kString, "", line};
      lex_quoted('"', &token.text);
      out.tokens.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      s.Bump();
      Token token{TokenKind::kCharLiteral, "", line};
      lex_quoted('\'', &token.text);
      out.tokens.push_back(std::move(token));
      continue;
    }

    // Punctuator by longest match; anything unrecognized becomes a
    // single-character punctuator so the scan always advances.
    const std::string window = s.PeekString(3);
    std::string_view matched;
    for (const std::string_view punct : kPuncts) {
      if (window.size() >= punct.size() &&
          std::string_view(window).substr(0, punct.size()) == punct) {
        matched = punct;
        break;
      }
    }
    const size_t punct_size = matched.empty() ? 1 : matched.size();
    Token token{TokenKind::kPunct, window.substr(0, punct_size), line};
    out.tokens.push_back(std::move(token));
    for (size_t k = 0; k < punct_size; ++k) s.Bump();
  }

  out.tokens.push_back(Token{TokenKind::kEndOfFile, "", s.line()});
  return out;
}

bool TokenSeqAt(std::span<const Token> tokens, size_t at,
                std::initializer_list<std::string_view> seq) {
  size_t i = at;
  for (const std::string_view want : seq) {
    if (i >= tokens.size()) return false;
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kIdentifier &&
        token.kind != TokenKind::kPunct &&
        token.kind != TokenKind::kNumber) {
      return false;
    }
    if (token.text != want) return false;
    ++i;
  }
  return true;
}

size_t MatchingClose(std::span<const Token> tokens, size_t open_index) {
  int depth = 0;
  for (size_t i = open_index; i < tokens.size(); ++i) {
    const Token& token = tokens[i];
    if (token.kind != TokenKind::kPunct) continue;
    if (token.text == "(" || token.text == "[" || token.text == "{") {
      ++depth;
    } else if (token.text == ")" || token.text == "]" || token.text == "}") {
      if (--depth == 0) return i;
    }
  }
  return tokens.size();
}

bool HasMarkerOnOrAbove(const std::vector<Comment>& comments,
                        std::string_view marker, size_t line) {
  for (const Comment& comment : comments) {
    if (comment.line > line) break;  // comments are in source order
    const bool covers = comment.line <= line && comment.end_line + 1 >= line;
    if (covers && comment.text.find(marker) != std::string::npos) return true;
  }
  return false;
}

}  // namespace fairlaw::analysis
