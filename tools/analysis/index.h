#ifndef FAIRLAW_TOOLS_ANALYSIS_INDEX_H_
#define FAIRLAW_TOOLS_ANALYSIS_INDEX_H_

#include <cstddef>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tools/analysis/lexer.h"

/// fairlaw::analysis — cross-file signature index of fallible
/// declarations, the first analysis-pass component with knowledge that
/// spans translation units.
///
/// The repo's error-handling contract (base/status.h: every fallible
/// operation returns a Status or Result<T>) is only checkable at a call
/// site if the checker knows which callees are fallible — a single-file
/// pass cannot see that `table.GetColumn(...)` returns a Result. This
/// index scans every header under src/** and records each
/// function/method whose declared return type is `Status` or
/// `Result<T>` (by value or by reference, namespace- and
/// class-qualified, including static factories such as
/// `Status::Invalid`), handling the declaration shapes the repo
/// actually uses:
///
///   * leading specifiers: static, virtual, inline, constexpr,
///     explicit, friend, and the FAIRLAW_NODISCARD macro;
///   * qualified return types (`fairlaw::Status`, `::fairlaw::Result<T>`);
///   * trailing return types (`auto Foo(...) -> Status`);
///   * function-try-block definitions (`Status Foo() try { ... }`);
///   * template argument lists in Result<...> with nested <> and >>.
///
/// It is purely lexical (macros are not expanded, overloads are not
/// resolved), so consumers match call sites by unqualified callee name:
/// a name is "fallible" if ANY indexed declaration carries it. That is
/// deliberately conservative in the flagging direction — fairlaw
/// headers do not reuse a fallible function's name for an infallible
/// one — and rule code escapes the rare false positive with a
/// `flowcheck: allow-<rule>` marker.
namespace fairlaw::analysis {

/// One indexed declaration.
struct FallibleFn {
  std::string file;       // repo-relative header path
  size_t line = 0;        // line of the declaration's first token
  std::string qualified;  // e.g. "fairlaw::Table::GetColumn"
  std::string name;       // unqualified, e.g. "GetColumn"
  std::string return_type;  // "Status", "Result<Table>", "Status&", ...
  bool by_value = false;    // false for `const Status&` accessors
  bool has_nodiscard = false;  // FAIRLAW_NODISCARD present on the decl
};

class SignatureIndex {
 public:
  /// Indexes every Status/Result<T>-returning declaration found in one
  /// header's token stream. `rel_path` labels the entries; `tokens` is
  /// the lexer output for the header.
  void AddHeader(const std::string& rel_path, std::span<const Token> tokens);

  /// All indexed declarations, in scan order (callers sort as needed).
  const std::vector<FallibleFn>& functions() const { return functions_; }

  /// True when some indexed declaration with a by-value Status/Result
  /// return carries this unqualified name. This is the set the
  /// error-flow rules match call sites against: a discarded return from
  /// any of these loses an error.
  bool IsFallible(std::string_view name) const {
    return by_value_names_.count(std::string(name)) > 0;
  }

 private:
  std::vector<FallibleFn> functions_;
  std::set<std::string> by_value_names_;
};

/// Builds the index over every header under root/src/** (fixture
/// directories skipped), in sorted path order.
SignatureIndex BuildIndex(const std::filesystem::path& root);

}  // namespace fairlaw::analysis

#endif  // FAIRLAW_TOOLS_ANALYSIS_INDEX_H_
