#ifndef FAIRLAW_TOOLS_ANALYSIS_LEXER_H_
#define FAIRLAW_TOOLS_ANALYSIS_LEXER_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <string_view>
#include <vector>

/// fairlaw::analysis — the shared token substrate of the static
/// analysis passes (fairlaw_lint, fairlaw_detcheck).
///
/// The original passes scanned a comment/string-blanked copy of each
/// file, which misread two constructs the real compiler handles in
/// translation phase 2/3: raw string literals with embedded quotes, and
/// line comments continued by a backslash-newline splice. Lexing the
/// file into real tokens removes that whole class of false positives:
/// rule code only ever looks at identifier/punctuator tokens, and
/// literal/comment text is carried separately for the rules that need
/// it (empty-message checks, escape-hatch markers).
///
/// This is a single-file scanner, not a preprocessor: macros are not
/// expanded, #include targets are not followed, and digraphs/trigraphs
/// are not translated (the codebase bans them by convention). Handled
/// faithfully:
///
///   * line splices (backslash-newline, with optional \r) everywhere
///     except raw string bodies, where the standard reverts them;
///   * // and /* */ comments, including splice-continued line comments;
///   * string/char literals with escape sequences and the u8/u/U/L
///     prefixes; adjacent literals stay separate tokens;
///   * raw strings R"delim( ... )delim" with arbitrary delimiters;
///   * pp-numbers (hex, digit separators, exponents with signs);
///   * punctuators by longest match (<<=, <=>, ->*, ..., etc.).
///
/// Every token records the 1-based source line of its first character,
/// so diagnostics point at real positions even across splices.
namespace fairlaw::analysis {

enum class TokenKind : uint8_t {
  kIdentifier,   // keywords are identifiers; the passes match by text
  kNumber,       // pp-number spelling, e.g. "0x1p-3", "1'000'000"
  kString,       // text holds the *contents* (quotes/prefix stripped)
  kCharLiteral,  // text holds the contents
  kPunct,        // text holds the spelling, e.g. "::", "<=>", "{"
  kEndOfFile,    // sentinel; always the last token
};

struct Token {
  TokenKind kind = TokenKind::kEndOfFile;
  std::string text;
  size_t line = 0;  // 1-based line of the token's first character

  bool IsIdent(std::string_view spelling) const {
    return kind == TokenKind::kIdentifier && text == spelling;
  }
  bool IsPunct(std::string_view spelling) const {
    return kind == TokenKind::kPunct && text == spelling;
  }
};

/// A comment's text (delimiters stripped) and the source lines it
/// covers. Escape-hatch markers (`lint: allow-...`, `detcheck:
/// allow-...`) live in comments, so the passes search these instead of
/// re-reading the raw file.
struct Comment {
  std::string text;
  size_t line = 0;      // first line
  size_t end_line = 0;  // last line (multi-line block or spliced comment)
};

struct LexResult {
  std::vector<Token> tokens;  // terminated by a kEndOfFile token
  std::vector<Comment> comments;
};

/// Tokenizes `source`. Never fails: unterminated literals end at the
/// next newline (or end of file for raw strings/block comments), which
/// keeps the passes robust on files that do not compile.
LexResult Lex(std::string_view source);

/// True when the token at `at` begins the exact identifier/punctuator
/// spelling sequence `seq` (e.g. {"std", "::", "vector", "<", "bool"}).
/// String/char/number tokens never match, so literal text cannot fake a
/// code pattern.
bool TokenSeqAt(std::span<const Token> tokens, size_t at,
                std::initializer_list<std::string_view> seq);

/// Index of the punctuator that closes the opener at `open_index`
/// (one of "(", "[", "{"), honoring nesting of all three bracket
/// kinds. Returns tokens.size() when unbalanced.
size_t MatchingClose(std::span<const Token> tokens, size_t open_index);

/// True when some comment covering `line` or `line - 1` contains
/// `marker`. This is the escape-hatch convention shared by the passes:
/// the marker sits on the flagged line or the line above it.
bool HasMarkerOnOrAbove(const std::vector<Comment>& comments,
                        std::string_view marker, size_t line);

/// Forward-only view over a token stream with bounded lookahead; the
/// convenience layer rule code is written against.
class TokenCursor {
 public:
  explicit TokenCursor(std::span<const Token> tokens) : tokens_(tokens) {}

  /// Token `ahead` positions past the cursor; a kEndOfFile sentinel
  /// when that runs past the end.
  const Token& Peek(size_t ahead = 0) const {
    const size_t index = pos_ + ahead;
    return index < tokens_.size() ? tokens_[index] : kEof;
  }

  bool AtEnd() const {
    return pos_ >= tokens_.size() ||
           tokens_[pos_].kind == TokenKind::kEndOfFile;
  }

  void Advance(size_t n = 1) { pos_ += n; }

  size_t pos() const { return pos_; }
  void Seek(size_t pos) { pos_ = pos; }

  /// True when the tokens at the cursor spell out `seq`; see TokenSeqAt.
  bool MatchesSeq(std::initializer_list<std::string_view> seq) const {
    return TokenSeqAt(tokens_, pos_, seq);
  }

 private:
  static const Token kEof;
  std::span<const Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace fairlaw::analysis

#endif  // FAIRLAW_TOOLS_ANALYSIS_LEXER_H_
