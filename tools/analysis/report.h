#ifndef FAIRLAW_TOOLS_ANALYSIS_REPORT_H_
#define FAIRLAW_TOOLS_ANALYSIS_REPORT_H_

#include <cstddef>
#include <filesystem>
#include <set>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tools/analysis/lexer.h"

/// fairlaw::analysis — the shared reporting substrate of the static
/// analysis passes (fairlaw_lint, fairlaw_detcheck, fairlaw_flowcheck).
///
/// Every pass shares one contract: findings are `file:line: rule:
/// message` records sorted canonically so CI diffs are stable, an
/// escape hatch is a `<prefix>: allow-<rule>` comment on the flagged
/// line or the line above (suppressions are counted, never silently
/// dropped), the machine-readable artifact is one JSON object with the
/// schema {"tool":NAME,"schema_version":1,"findings":[{file,line,rule,
/// message}],"count":N,"suppressed":N}, byte-identical for a given
/// tree, and --self-test=rule1,rule2 asserts that exactly that rule set
/// fired. This header is that contract in code; the passes contribute
/// only their rules.
namespace fairlaw::analysis {

struct Finding {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

/// Collects findings for one pass, applying the escape-marker
/// convention and rendering the canonical artifact schema.
class Reporter {
 public:
  /// `tool` names the pass in diagnostics and the JSON artifact
  /// (e.g. "fairlaw_flowcheck"); `marker_prefix` is the escape-comment
  /// prefix (e.g. "flowcheck" for `flowcheck: allow-<rule>`).
  Reporter(std::string tool, std::string marker_prefix)
      : tool_(std::move(tool)), marker_prefix_(std::move(marker_prefix)) {}

  /// Records a finding unless a `<prefix>: allow-<rule>` marker covers
  /// `line` (or, when non-zero, the secondary anchor line — e.g. the
  /// MutexLock declaration for detcheck's lock-expensive). Suppressions
  /// are tallied, not dropped.
  void Report(const std::string& file, const std::vector<Comment>& comments,
              size_t line, std::string rule, std::string message,
              size_t anchor_line = 0);

  /// Records a finding with no escape hatch (structural rules such as
  /// lint's include-guard, where suppression would be meaningless).
  void ReportAlways(std::string file, size_t line, std::string rule,
                    std::string message);

  /// Sorts by (file, line, rule) and returns the findings. Filesystem
  /// iteration order is platform-defined, so every pass must publish
  /// through this canonical order.
  const std::vector<Finding>& Sorted();

  size_t suppressed() const { return suppressed_; }
  const std::string& tool() const { return tool_; }

  /// Distinct rules with at least one unsuppressed finding.
  std::set<std::string> FiredRules() const;

  /// Renders the canonical artifact. Call after Sorted(); the output is
  /// byte-identical across runs for a given tree.
  std::string Json() const;

  /// Prints findings (stderr, one per line) and, when `verbose` or any
  /// finding exists, the `<tool>: N finding(s), M suppressed` summary.
  void PrintFindings(bool verbose) const;

  /// Writes Json() + trailing newline to `path`; prints a diagnostic
  /// and returns false on I/O error.
  bool WriteArtifact(const std::string& path) const;

  /// Compares the fired rule set against a comma-separated `spec`
  /// (--self-test); prints missing/unexpected rules on mismatch.
  bool SelfTestMatches(std::string_view spec) const;

 private:
  std::string tool_;
  std::string marker_prefix_;
  std::vector<Finding> findings_;
  size_t suppressed_ = 0;
};

/// Every .h/.cc file under root/<top> for each listed top-level
/// directory, sorted so scan order (and therefore the artifact) is
/// deterministic. Directories named *_fixture hold deliberate
/// violations for the self-tests and are skipped.
std::vector<std::filesystem::path> CollectSources(
    const std::filesystem::path& root, std::span<const std::string_view> tops);

/// Whole-file read; returns "" for unreadable paths (the passes treat
/// an unreadable file as empty rather than failing the scan).
std::string ReadFileToString(const std::filesystem::path& path);

/// `path` relative to `root` with generic (/) separators; falls back to
/// `path` itself when no relative form exists.
std::string RelativeTo(const std::filesystem::path& path,
                       const std::filesystem::path& root);

}  // namespace fairlaw::analysis

#endif  // FAIRLAW_TOOLS_ANALYSIS_REPORT_H_
