#include "tools/analysis/index.h"

#include <string>

#include "tools/analysis/report.h"

namespace fairlaw::analysis {

namespace fs = std::filesystem;

namespace {

/// Leading declaration specifiers the backscan absorbs when locating a
/// declaration's first token: storage/function specifiers, the
/// FAIRLAW_NODISCARD macro itself, and the cv-qualifiers of a
/// reference-returning accessor (`const Status& status()`).
constexpr std::string_view kDeclSpecifiers[] = {
    "static", "virtual",           "inline", "constexpr", "explicit",
    "friend", "FAIRLAW_NODISCARD", "const",  "volatile",
};

bool IsDeclSpecifier(const Token& token) {
  if (token.kind != TokenKind::kIdentifier) return false;
  for (const std::string_view spec : kDeclSpecifiers) {
    if (token.text == spec) return true;
  }
  return false;
}

/// One entry per '{' currently open. Named entries are namespace/class
/// scopes and contribute to qualified names; anonymous entries are
/// function bodies, lambdas, initializers — declarations inside those
/// are locals, not API, and are not indexed.
struct Scope {
  std::string name;  // "" for anonymous
  bool named = false;
};

/// Index of the '>' closing the '<' at `open`, counting '>>' as two
/// closers (template shift quirk). Returns tokens.size() if unbalanced.
size_t MatchingAngleClose(std::span<const Token> tokens, size_t open) {
  int depth = 0;
  for (size_t j = open; j < tokens.size(); ++j) {
    if (tokens[j].IsPunct("<")) ++depth;
    if (tokens[j].IsPunct(">")) --depth;
    if (tokens[j].IsPunct(">>")) depth -= 2;
    // Give up on shapes that cannot be a template argument list.
    if (tokens[j].IsPunct(";") || tokens[j].IsPunct("{")) return tokens.size();
    if (depth <= 0) return j;
  }
  return tokens.size();
}

/// Renders the spelling of tokens [begin, end] for FallibleFn::return_type.
std::string Spelling(std::span<const Token> tokens, size_t begin, size_t end) {
  std::string out;
  for (size_t j = begin; j <= end && j < tokens.size(); ++j) {
    if (!out.empty() && tokens[j].kind == TokenKind::kIdentifier &&
        tokens[j - 1].kind == TokenKind::kIdentifier) {
      out += ' ';
    }
    out += tokens[j].text;
  }
  return out;
}

}  // namespace

void SignatureIndex::AddHeader(const std::string& rel_path,
                               std::span<const Token> tokens) {
  std::vector<Scope> scopes;

  // Pending namespace/class head: name to attach to the next '{'.
  std::string pending_name;
  bool pending = false;

  auto at_api_scope = [&scopes]() {
    for (const Scope& scope : scopes) {
      if (!scope.named) return false;  // inside a function body / lambda
    }
    return true;
  };

  // `anchor` starts the backscan for specifiers (the return type for
  // leading-type declarations, the `auto` for trailing returns);
  // [type_begin, type_end] is the Status/Result spelling itself.
  auto record = [&](size_t anchor, size_t type_begin, size_t type_end,
                    size_t name_index, bool by_value) {
    // Absorb a leading qualifier chain (fairlaw::Status, ::fairlaw::...).
    size_t first = anchor;
    while (first >= 2 && tokens[first - 1].IsPunct("::") &&
           tokens[first - 2].kind == TokenKind::kIdentifier) {
      first -= 2;
    }
    if (first >= 1 && tokens[first - 1].IsPunct("::")) --first;
    bool nodiscard = false;
    while (first > 0 && IsDeclSpecifier(tokens[first - 1])) {
      if (tokens[first - 1].text == "FAIRLAW_NODISCARD") nodiscard = true;
      --first;
    }
    FallibleFn fn;
    fn.file = rel_path;
    fn.line = tokens[first].line;
    fn.name = tokens[name_index].text;
    std::string prefix;
    for (const Scope& scope : scopes) {
      if (scope.named) prefix += scope.name + "::";
    }
    fn.qualified = prefix + fn.name;
    fn.return_type = Spelling(tokens, type_begin, type_end);
    fn.by_value = by_value;
    fn.has_nodiscard = nodiscard;
    if (by_value) by_value_names_.insert(fn.name);
    functions_.push_back(std::move(fn));
  };

  // After the return type at [type_begin, type_end]: optional &/&&
  // (reference return — indexed for the nodiscard sweep but not part of
  // the fallible-call set), then a non-operator name, then '('.
  auto try_decl_tail = [&](size_t type_begin, size_t type_end) {
    size_t j = type_end + 1;
    bool by_value = true;
    while (j < tokens.size() &&
           (tokens[j].IsPunct("&") || tokens[j].IsPunct("&&"))) {
      by_value = false;
      ++j;
    }
    if (j + 1 >= tokens.size()) return;
    if (tokens[j].kind != TokenKind::kIdentifier) return;
    if (tokens[j].text == "operator") return;  // operator= and friends
    if (!tokens[j + 1].IsPunct("(")) return;
    record(type_begin, type_begin, type_end, j, by_value);
  };

  for (size_t i = 0; i < tokens.size(); ++i) {
    const Token& token = tokens[i];

    if (token.IsPunct("{")) {
      Scope scope;
      if (pending) {
        scope.name = pending_name;
        scope.named = true;
        pending = false;
      }
      scopes.push_back(std::move(scope));
      continue;
    }
    if (token.IsPunct("}")) {
      if (!scopes.empty()) scopes.pop_back();
      continue;
    }
    if (token.IsPunct(";")) {
      pending = false;  // forward declaration / namespace alias
      continue;
    }

    if (token.kind != TokenKind::kIdentifier) continue;

    // Namespace heads: `namespace a::b {` (aliases cancelled at '=').
    if (token.IsIdent("namespace")) {
      std::string name;
      size_t j = i + 1;
      while (j < tokens.size() && (tokens[j].kind == TokenKind::kIdentifier ||
                                   tokens[j].IsPunct("::"))) {
        name += tokens[j].text;
        ++j;
      }
      if (j < tokens.size() && tokens[j].IsPunct("{")) {
        pending_name = name;  // may be "" (anonymous namespace)
        pending = true;
        // Anonymous namespaces still qualify as API scope.
        if (name.empty()) pending_name = "";
        i = j - 1;
      } else {
        pending = false;  // alias: namespace fs = std::filesystem;
      }
      continue;
    }

    // Class/struct heads: `class Name ... {`; forward declarations and
    // template parameters (`template <class T>`) never reach a '{'
    // before ';'/'>'/','/')' at angle depth zero.
    if ((token.IsIdent("class") || token.IsIdent("struct")) &&
        !(i > 0 && tokens[i - 1].IsIdent("enum"))) {
      if (i + 1 < tokens.size() &&
          tokens[i + 1].kind == TokenKind::kIdentifier) {
        int angle = 0;
        for (size_t j = i + 2; j < tokens.size(); ++j) {
          if (tokens[j].IsPunct("<")) ++angle;
          if (tokens[j].IsPunct(">")) --angle;
          if (tokens[j].IsPunct(">>")) angle -= 2;
          if (angle < 0) break;  // a template parameter, not a definition
          if (angle > 0) continue;
          if (tokens[j].IsPunct("{")) {
            pending_name = tokens[i + 1].text;
            pending = true;
            break;
          }
          if (tokens[j].IsPunct(";") || tokens[j].IsPunct("=") ||
              tokens[j].IsPunct(",") || tokens[j].IsPunct(")")) {
            break;
          }
        }
      }
      continue;
    }

    if (!at_api_scope()) continue;

    // `Status Name(...)` — but not `Status::...` (a qualifier, e.g. the
    // factory call `Status::Invalid(...)`), which is usage, not a
    // declaration.
    if (token.IsIdent("Status")) {
      if (i + 1 < tokens.size() && tokens[i + 1].IsPunct("::")) continue;
      try_decl_tail(i, i);
      continue;
    }

    // `Result<T> Name(...)`.
    if (token.IsIdent("Result") && i + 1 < tokens.size() &&
        tokens[i + 1].IsPunct("<")) {
      const size_t close = MatchingAngleClose(tokens, i + 1);
      if (close >= tokens.size()) continue;
      try_decl_tail(i, close);
      continue;
    }

    // Trailing return types: `auto Name(...) [specs] -> Status` /
    // `-> Result<T>`. The arrow target may be namespace-qualified.
    if (token.IsIdent("auto") && i + 2 < tokens.size() &&
        tokens[i + 1].kind == TokenKind::kIdentifier &&
        tokens[i + 1].text != "operator" && tokens[i + 2].IsPunct("(")) {
      const size_t params_close = MatchingClose(tokens, i + 2);
      if (params_close >= tokens.size()) continue;
      size_t j = params_close + 1;
      size_t arrow = tokens.size();
      while (j < tokens.size()) {
        if (tokens[j].IsPunct("->")) {
          arrow = j;
          break;
        }
        if (tokens[j].IsPunct(";") || tokens[j].IsPunct("{") ||
            tokens[j].IsPunct("}")) {
          break;
        }
        if (tokens[j].IsPunct("(")) {  // noexcept(...)
          j = MatchingClose(tokens, j);
          if (j >= tokens.size()) break;
        }
        ++j;
      }
      if (arrow >= tokens.size()) continue;
      size_t k = arrow + 1;
      if (k < tokens.size() && tokens[k].IsPunct("::")) ++k;
      while (k + 1 < tokens.size() &&
             tokens[k].kind == TokenKind::kIdentifier &&
             tokens[k + 1].IsPunct("::")) {
        k += 2;
      }
      if (k >= tokens.size()) continue;
      if (tokens[k].IsIdent("Status")) {
        size_t type_end = k;
        bool by_value = true;
        while (type_end + 1 < tokens.size() &&
               (tokens[type_end + 1].IsPunct("&") ||
                tokens[type_end + 1].IsPunct("&&"))) {
          by_value = false;
          ++type_end;
        }
        record(i, k, type_end, i + 1, by_value);
      } else if (tokens[k].IsIdent("Result") && k + 1 < tokens.size() &&
                 tokens[k + 1].IsPunct("<")) {
        const size_t close = MatchingAngleClose(tokens, k + 1);
        if (close < tokens.size()) record(i, k, close, i + 1, true);
      }
    }
  }
}

SignatureIndex BuildIndex(const fs::path& root) {
  SignatureIndex index;
  constexpr std::string_view kTops[] = {"src"};
  for (const fs::path& path : CollectSources(root, kTops)) {
    if (path.extension() != ".h") continue;
    const LexResult lex = Lex(ReadFileToString(path));
    index.AddHeader(RelativeTo(path, root), lex.tokens);
  }
  return index;
}

}  // namespace fairlaw::analysis
