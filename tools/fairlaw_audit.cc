// fairlaw_audit — command-line fairness auditor.
//
//   fairlaw_audit decisions.csv --protected=gender --pred=decision
//       [--label=outcome] [--score=probability]
//       [--strata=dept,level] [--proxies=zip,education]
//       [--subgroups=gender,race] [--tolerance=0.05] [--json]
//       [--chunk-rows=65536] [--max-memory-mb=512] [--streaming]
//       [--obs-json=PATH] [--obs-timings]
//
// Reads a CSV, runs the configured fairness suite, and prints either the
// human-readable report or (with --json) the machine-readable artifact.
// --chunk-rows feeds the morsel-driven engine (the output is identical
// for every value); --streaming audits the CSV out-of-core one chunk at
// a time (metric audit only — the table never materializes, so the
// proxy/subgroup/sampling extras are unavailable); --max-memory-mb caps
// the derived chunk size so the bounded in-flight window fits the
// budget. --obs-json additionally dumps the obs probe registry
// (counters, histograms, trace spans) collected during the run; the dump
// is byte-identical for every --threads value unless --obs-timings adds
// the (non-reproducible) wall-clock totals.
// Exit codes: 0 = all clear, 2 = violations found, 1 = error.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>

#include "audit/auditor.h"
#include "audit/report_io.h"
#include "audit/source.h"
#include "core/json.h"
#include "core/suite.h"
#include "data/csv.h"
#include "obs/obs.h"
#include "tools/cli.h"

namespace {

struct CliOptions {
  std::string csv_path;
  fairlaw::SuiteConfig suite;
  bool json = false;
  bool streaming = false;
  std::string obs_json_path;
  bool obs_timings = false;
};

/// Rows per chunk that keep the streaming engine's bounded in-flight
/// window under `max_memory_mb`. The window holds ~2*threads chunks plus
/// the one being read; rows are costed at a conservative flat estimate
/// (mixed string/double columns) since the schema is unknown before the
/// first read. --threads=0 means "one per hardware thread", whose count
/// is unknown here, so the budget assumes a generous 16 workers rather
/// than querying thread primitives in a flag parser.
size_t ChunkRowsForBudget(size_t max_memory_mb, size_t threads) {
  constexpr size_t kBytesPerRowEstimate = 256;
  const size_t workers = threads == 0 ? 16 : threads;
  const size_t window_chunks = 2 * workers + 1;
  const size_t budget_rows = max_memory_mb * 1024 * 1024 /
                             (kBytesPerRowEstimate * window_chunks);
  // Never go below a useful morsel: tiny chunks drown in scheduling
  // overhead without buying memory back.
  return std::max<size_t>(budget_rows, 1024);
}

fairlaw::cli::FlagSet MakeFlags(CliOptions* options) {
  fairlaw::cli::FlagSet flags(
      "fairlaw_audit", "<csv>",
      "Audits the decisions in <csv> for the fairness definitions of\n"
      "'Fairness in AI: bridging algorithms and law' (ICDE 2024 wksp).\n"
      "exit codes: 0 all clear, 2 violations found, 1 error");
  fairlaw::audit::AuditConfig& audit = options->suite.audit;
  flags.Section("column mapping");
  flags.Add("protected", &audit.protected_column,
            "protected attribute column (required)");
  flags.Add("pred", &audit.prediction_column,
            "binary decision column (required)");
  flags.Add("label", &audit.label_column,
            "outcome column; enables the label-dependent metrics");
  flags.Add("score", &audit.score_column,
            "probability score column; enables the calibration audit");
  flags.Add("strata", &audit.strata_columns,
            "legitimate-factor columns for the conditional metrics");
  flags.Add("proxies", &options->suite.proxy_candidates,
            "candidate proxy columns for the proxy audit");
  flags.Add("subgroups", &options->suite.subgroup_columns,
            "attribute columns for the subgroup audit");
  flags.Section("audit gates");
  flags.Add("score-dist", &audit.audit_score_distribution,
            "audit per-group score-distribution drift (W1/KS against "
            "everyone else; requires --score)");
  flags.Add("score-dist-tolerance", &audit.score_distribution_tolerance,
            "max per-group KS statistic for the drift audit to pass",
            fairlaw::cli::Range<double>{0.0, 1.0});
  flags.Add("tolerance", &audit.tolerance,
            "gap tolerance for the equality-style metrics",
            fairlaw::cli::Range<double>{0.0, 1.0});
  flags.Add("di-threshold", &audit.di_threshold,
            "disparate-impact ratio threshold (four-fifths rule)",
            fairlaw::cli::Range<double>{0.0, 1.0, /*min_inclusive=*/false});
  flags.Section("output");
  flags.Add("json", &options->json, "emit the machine-readable JSON report");
  flags.Add("obs-json", &options->obs_json_path,
            "write the obs probe dump (counters/histograms/spans) here");
  flags.Add("obs-timings", &options->obs_timings,
            "include per-span wall-clock totals in the obs dump "
            "(non-reproducible across runs)");
  flags.Section("execution");
  flags.Add("streaming", &options->streaming,
            "stream the CSV out-of-core one chunk at a time (metric audit "
            "only; incompatible with --proxies/--subgroups)");
  return flags;
}

fairlaw::Result<CliOptions> Parse(int argc, char** argv, bool* show_help,
                                  std::string* help_text) {
  CliOptions options;
  // --threads is registered on a local so the same value can fan out to
  // both the metric pool and the subgroup lattice pool.
  int64_t threads = 1;
  int64_t score_dist_bins = 0;
  fairlaw::cli::FlagSet flags = MakeFlags(&options);
  flags.Add("score-dist-bins", &score_dist_bins,
            "histogram bins for the binned drift fast path (0 = exact "
            "presorted path)",
            fairlaw::cli::Range<int64_t>{0, 100000});
  flags.Add("threads", &threads,
            "worker threads (0 = one per hardware thread); the output is "
            "identical for every value",
            fairlaw::cli::Range<int64_t>{0, 512});
  int64_t chunk_rows = 0;
  flags.Add("chunk-rows", &chunk_rows,
            "rows per morsel for the chunked engine (0 = whole table as "
            "one chunk, or the 64k default when --streaming); the output "
            "is identical for every value",
            fairlaw::cli::Range<int64_t>{0, int64_t{1} << 31});
  int64_t max_memory_mb = 0;
  flags.Add("max-memory-mb", &max_memory_mb,
            "approximate memory budget; caps the chunk size so the "
            "in-flight window fits (0 = no cap)",
            fairlaw::cli::Range<int64_t>{0, int64_t{1} << 31});
  *help_text = flags.Help();
  FAIRLAW_ASSIGN_OR_RETURN(fairlaw::cli::ParseResult parsed,
                           flags.Parse(argc, argv));
  if (parsed.help) {
    *show_help = true;
    return options;
  }
  options.suite.audit.num_threads = static_cast<size_t>(threads);
  options.suite.subgroup_options.num_threads = static_cast<size_t>(threads);
  options.suite.audit.score_distribution_bins =
      static_cast<size_t>(score_dist_bins);
  size_t chunk = static_cast<size_t>(chunk_rows);
  if (max_memory_mb > 0) {
    const size_t budget_rows = ChunkRowsForBudget(
        static_cast<size_t>(max_memory_mb), static_cast<size_t>(threads));
    chunk = chunk == 0 ? budget_rows : std::min(chunk, budget_rows);
  }
  options.suite.audit.chunk_rows = chunk;
  options.suite.subgroup_options.chunk_rows = chunk;
  if (options.streaming && (!options.suite.proxy_candidates.empty() ||
                            !options.suite.subgroup_columns.empty())) {
    return fairlaw::Status::Invalid(
        "--streaming runs the metric audit only; drop --proxies and "
        "--subgroups or drop --streaming");
  }
  if (parsed.positionals.empty()) {
    return fairlaw::Status::Invalid("no input CSV given");
  }
  if (parsed.positionals.size() > 1) {
    return fairlaw::Status::Invalid("more than one input file given");
  }
  options.csv_path = parsed.positionals[0];
  if (options.suite.audit.protected_column.empty() ||
      options.suite.audit.prediction_column.empty()) {
    return fairlaw::Status::Invalid("--protected and --pred are required");
  }
  return options;
}

/// Writes the obs registry dump; called after the suite so the probes
/// cover the full run (the ThreadPools are joined by then, so every
/// worker's spans have merged).
fairlaw::Status WriteObsJson(const std::string& path, bool include_timings) {
  fairlaw::obs::ExportOptions export_options;
  export_options.include_timings = include_timings;
  const std::string dump = fairlaw::obs::ExportJson(export_options);
  std::ofstream output(path, std::ios::binary);
  if (!output) {
    return fairlaw::Status::IOError("cannot open '" + path +
                                    "' for writing");
  }
  output << dump << '\n';
  if (!output) {
    return fairlaw::Status::IOError("error writing '" + path + "'");
  }
  return fairlaw::Status::OK();
}

}  // namespace

int main(int argc, char** argv) {
  bool show_help = false;
  std::string help_text;
  fairlaw::Result<CliOptions> parsed =
      Parse(argc, argv, &show_help, &help_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s",
                 parsed.status().message().c_str(), help_text.c_str());
    return 1;
  }
  if (show_help) {
    std::printf("%s", help_text.c_str());
    return 0;
  }

  fairlaw::SuiteReport suite_report;
  if (parsed->streaming) {
    // Out-of-core path: the CSV streams through the chunk reader and the
    // table never materializes; only the metric audit section fills in.
    fairlaw::Result<fairlaw::audit::AuditResult> audit =
        fairlaw::audit::Auditor::Run(
            fairlaw::audit::AuditSource::FromCsv(parsed->csv_path),
            parsed->suite.audit);
    if (!audit.ok()) {
      std::fprintf(stderr, "audit error: %s\n",
                   audit.status().ToString().c_str());
      return 1;
    }
    suite_report.audit = std::move(*audit);
    suite_report.all_clear = suite_report.audit.all_satisfied;
  } else {
    fairlaw::Result<fairlaw::data::Table> table =
        fairlaw::data::ReadCsvFile(parsed->csv_path);
    if (!table.ok()) {
      std::fprintf(stderr, "error reading '%s': %s\n",
                   parsed->csv_path.c_str(),
                   table.status().ToString().c_str());
      return 1;
    }

    fairlaw::Result<fairlaw::SuiteReport> report =
        fairlaw::RunFairnessSuite(*table, parsed->suite);
    if (!report.ok()) {
      std::fprintf(stderr, "audit error: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    suite_report = std::move(*report);
  }

  if (!parsed->obs_json_path.empty()) {
    fairlaw::Status obs_status =
        WriteObsJson(parsed->obs_json_path, parsed->obs_timings);
    if (!obs_status.ok()) {
      std::fprintf(stderr, "obs dump error: %s\n",
                   obs_status.ToString().c_str());
      return 1;
    }
  }

  if (parsed->json) {
    fairlaw::Result<std::string> json =
        [&]() -> fairlaw::Result<std::string> {
      if (parsed->streaming) {
        // The streaming run produced a bare AuditResult; serialize it
        // as the versioned audit envelope rather than a suite report
        // with empty extras. audit.rows_audited is the one obs counter
        // that is chunk- and thread-invariant, so it may ride in the
        // envelope.
        fairlaw::audit::ReportEnvelopeOptions envelope;
        envelope.obs_counters = {"audit.rows_audited"};
        return fairlaw::audit::AuditResultToJson(suite_report.audit,
                                                 envelope);
      }
      return fairlaw::SuiteReportToJson(suite_report);
    }();
    if (!json.ok()) {
      std::fprintf(stderr, "serialization error: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
  } else {
    std::printf("%s", suite_report.Render().c_str());
  }
  return suite_report.all_clear ? 0 : 2;
}
