// fairlaw_audit — command-line fairness auditor.
//
//   fairlaw_audit decisions.csv --protected=gender --pred=decision
//       [--label=outcome] [--score=probability]
//       [--strata=dept,level] [--proxies=zip,education]
//       [--subgroups=gender,race] [--tolerance=0.05] [--json]
//
// Reads a CSV, runs the configured fairness suite, and prints either the
// human-readable report or (with --json) the machine-readable artifact.
// Exit codes: 0 = all clear, 2 = violations found, 1 = error.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "base/string_util.h"
#include "core/json.h"
#include "core/suite.h"
#include "data/csv.h"

namespace {

struct CliOptions {
  std::string csv_path;
  fairlaw::SuiteConfig suite;
  bool json = false;
  bool show_help = false;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fairlaw_audit <csv> --protected=COL --pred=COL\n"
      "       [--label=COL] [--score=COL] [--strata=COL[,COL...]]\n"
      "       [--proxies=COL[,COL...]] [--subgroups=COL[,COL...]]\n"
      "       [--tolerance=F] [--di-threshold=F] [--threads=N] [--json]\n"
      "\n"
      "Audits the decisions in <csv> for the fairness definitions of\n"
      "'Fairness in AI: bridging algorithms and law' (ICDE 2024 wksp).\n"
      "exit codes: 0 all clear, 2 violations found, 1 error\n");
}

fairlaw::Result<CliOptions> Parse(int argc, char** argv) {
  CliOptions options;
  auto value_of = [](const char* arg,
                     const char* name) -> const char* {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      return arg + len + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      options.show_help = true;
      return options;
    }
    if (std::strcmp(arg, "--json") == 0) {
      options.json = true;
    } else if ((v = value_of(arg, "--protected"))) {
      options.suite.audit.protected_column = v;
    } else if ((v = value_of(arg, "--pred"))) {
      options.suite.audit.prediction_column = v;
    } else if ((v = value_of(arg, "--label"))) {
      options.suite.audit.label_column = v;
    } else if ((v = value_of(arg, "--score"))) {
      options.suite.audit.score_column = v;
    } else if ((v = value_of(arg, "--strata"))) {
      options.suite.audit.strata_columns = fairlaw::Split(v, ',');
    } else if ((v = value_of(arg, "--proxies"))) {
      options.suite.proxy_candidates = fairlaw::Split(v, ',');
    } else if ((v = value_of(arg, "--subgroups"))) {
      options.suite.subgroup_columns = fairlaw::Split(v, ',');
    } else if ((v = value_of(arg, "--tolerance"))) {
      // ParseDouble wraps std::from_chars: whole-input, checked conversion.
      FAIRLAW_ASSIGN_OR_RETURN(options.suite.audit.tolerance,
                               fairlaw::ParseDouble(v));
      if (options.suite.audit.tolerance < 0.0 ||
          options.suite.audit.tolerance > 1.0) {
        return fairlaw::Status::Invalid(
            "--tolerance must lie in [0,1], got " + std::string(v));
      }
    } else if ((v = value_of(arg, "--di-threshold"))) {
      FAIRLAW_ASSIGN_OR_RETURN(options.suite.audit.di_threshold,
                               fairlaw::ParseDouble(v));
      if (options.suite.audit.di_threshold <= 0.0 ||
          options.suite.audit.di_threshold > 1.0) {
        return fairlaw::Status::Invalid(
            "--di-threshold must lie in (0,1], got " + std::string(v));
      }
    } else if ((v = value_of(arg, "--threads"))) {
      // The audit output is identical for every thread count; N > 1 only
      // changes how the metric evaluations are scheduled. 0 = one worker
      // per hardware thread.
      FAIRLAW_ASSIGN_OR_RETURN(int64_t threads, fairlaw::ParseInt64(v));
      if (threads < 0 || threads > 512) {
        return fairlaw::Status::Invalid(
            "--threads must lie in [0,512], got " + std::string(v));
      }
      options.suite.audit.num_threads = static_cast<size_t>(threads);
      options.suite.subgroup_options.num_threads =
          static_cast<size_t>(threads);
    } else if (arg[0] == '-') {
      return fairlaw::Status::Invalid(std::string("unknown flag: ") + arg);
    } else if (options.csv_path.empty()) {
      options.csv_path = arg;
    } else {
      return fairlaw::Status::Invalid("more than one input file given");
    }
  }
  if (options.csv_path.empty()) {
    return fairlaw::Status::Invalid("no input CSV given");
  }
  if (options.suite.audit.protected_column.empty() ||
      options.suite.audit.prediction_column.empty()) {
    return fairlaw::Status::Invalid(
        "--protected and --pred are required");
  }
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  fairlaw::Result<CliOptions> parsed = Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n",
                 parsed.status().message().c_str());
    PrintUsage();
    return 1;
  }
  if (parsed->show_help) {
    PrintUsage();
    return 0;
  }

  fairlaw::Result<fairlaw::data::Table> table =
      fairlaw::data::ReadCsvFile(parsed->csv_path);
  if (!table.ok()) {
    std::fprintf(stderr, "error reading '%s': %s\n",
                 parsed->csv_path.c_str(),
                 table.status().ToString().c_str());
    return 1;
  }

  fairlaw::Result<fairlaw::SuiteReport> report =
      fairlaw::RunFairnessSuite(*table, parsed->suite);
  if (!report.ok()) {
    std::fprintf(stderr, "audit error: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }

  if (parsed->json) {
    fairlaw::Result<std::string> json =
        fairlaw::SuiteReportToJson(*report);
    if (!json.ok()) {
      std::fprintf(stderr, "serialization error: %s\n",
                   json.status().ToString().c_str());
      return 1;
    }
    std::printf("%s\n", json->c_str());
  } else {
    std::printf("%s", report->Render().c_str());
  }
  return report->all_clear ? 0 : 2;
}
