// fairlaw_lint — project-invariant static analysis pass.
//
//   fairlaw_lint [--root=DIR] [--verbose]
//
// Walks src/, tools/, and tests/ under --root (default: current
// directory) and enforces the fairlaw project invariants that generic
// compiler warnings cannot express:
//
//   1. include-guard   every header uses the canonical
//                      FAIRLAW_<DIR>_<FILE>_H_ guard derived from its path
//                      (the src/ prefix is dropped; tools/x.h guards with
//                      FAIRLAW_TOOLS_X_H_).
//   2. banned-function no rand, srand, atoi, or strtod anywhere:
//                      randomness goes through stats::Rng (reproducible
//                      audits) and parsing through base/string_util.h
//                      (checked conversions). printf-to-stdout is banned
//                      in library code (src/) only — printing is the
//                      product of a CLI tool.
//   3. bare-check      every FAIRLAW_CHECK failure path must carry a
//                      message (use FAIRLAW_CHECK_MSG / FAIRLAW_CHECK_OK);
//                      messages must be non-empty.
//   4. registry-coverage
//                      every metric name registered in src/core/registry.cc
//                      must be referenced by name in some tests/*_test.cc.
//   5. thread-primitive
//                      raw std::thread and std::this_thread::sleep_for are
//                      banned outside src/base/: concurrency goes through
//                      fairlaw::ThreadPool, and synchronization happens on
//                      state, not wall-clock time.
//   6. hot-path        std::vector<bool> is banned tree-wide (its packed
//                      proxy references defeat spans and word-wise
//                      kernels; use std::vector<uint8_t> or data::Bitmap),
//                      and per-row std::string equality comparisons inside
//                      loops are flagged in src/audit/ and src/metrics/
//                      (group membership belongs in data::GroupIndex
//                      bitmaps, not string compares). A deliberate scalar
//                      baseline can opt out with a
//                      `lint: allow-string-compare` comment on the line or
//                      the line above.
//   7. timing-source   raw std::chrono::steady_clock is banned outside
//                      src/obs/: measurements flow through
//                      obs::MonotonicNowNs() / obs::TraceSpan so they
//                      share one clock and honor the obs kill switch.
//
// Comments and string literals are stripped before rules 2, 3, 5, 6, and 7
// run, so prose mentioning a banned identifier does not trip the pass.
// Directories named *_fixture are skipped: they hold the deliberate
// violations the self-tests check. Exit code 0 = clean, 1 = violations
// (listed one per line as file:line: rule: msg), 2 = usage or I/O error.
// Registered as a ctest test so violations fail tier-1.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "tools/cli.h"

namespace {

namespace fs = std::filesystem;

struct Violation {
  std::string file;
  size_t line = 0;
  std::string rule;
  std::string message;
};

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  /// Runs every rule; returns the collected violations.
  const std::vector<Violation>& Run() {
    const fs::path src = root_ / "src";
    if (fs::is_directory(src)) {
      ScanTree(src, /*library=*/true);
    } else {
      Report(src.string(), 0, "tree", "missing src/ directory under root");
    }
    // Tools, tests, and benchmarks get the same hygiene rules except the
    // stdout ban: printing IS the product of a CLI tool.
    for (const char* top : {"tools", "tests", "bench"}) {
      const fs::path dir = root_ / top;
      if (fs::is_directory(dir)) ScanTree(dir, /*library=*/false);
    }
    CheckRegistryCoverage();
    return violations_;
  }

 private:
  /// Applies the per-file rules to every source file under `dir`.
  /// Directories named *_fixture hold deliberate violations for the
  /// analysis-pass self-tests and are skipped.
  void ScanTree(const fs::path& dir, bool library) {
    for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
      if (it->is_directory() &&
          it->path().filename().string().ends_with("_fixture")) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const fs::path& path = it->path();
      const std::string ext = path.extension().string();
      if (ext == ".h") CheckIncludeGuard(path);
      if (ext == ".h" || ext == ".cc") {
        std::string stripped = StripCommentsAndStrings(ReadFile(path));
        CheckBannedFunctions(path, stripped, library);
        CheckMessagedChecks(path, stripped, ReadFile(path));
        CheckThreadPrimitives(path, stripped);
        CheckTimingSource(path, stripped);
        CheckHotPath(path, stripped, ReadFile(path));
      }
    }
  }

  std::string ReadFile(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string RelPath(const fs::path& path) {
    std::error_code ec;
    fs::path rel = fs::relative(path, root_, ec);
    return ec ? path.string() : rel.generic_string();
  }

  void Report(std::string file, size_t line, std::string rule,
              std::string message) {
    violations_.push_back(Violation{std::move(file), line, std::move(rule),
                                    std::move(message)});
  }

  /// Blanks comment bodies and string/char literal contents, preserving
  /// newlines so that byte offsets still map to the right line.
  static std::string StripCommentsAndStrings(const std::string& text) {
    std::string out = text;
    enum class State { kCode, kLineComment, kBlockComment, kString, kChar };
    State state = State::kCode;
    for (size_t i = 0; i < out.size(); ++i) {
      const char c = out[i];
      const char next = i + 1 < out.size() ? out[i + 1] : '\0';
      switch (state) {
        case State::kCode:
          if (c == '/' && next == '/') {
            state = State::kLineComment;
            out[i] = ' ';
          } else if (c == '/' && next == '*') {
            state = State::kBlockComment;
            out[i] = ' ';
          } else if (c == '"') {
            state = State::kString;
          } else if (c == '\'') {
            state = State::kChar;
          }
          break;
        case State::kLineComment:
          if (c == '\n') {
            state = State::kCode;
          } else {
            out[i] = ' ';
          }
          break;
        case State::kBlockComment:
          if (c == '*' && next == '/') {
            out[i] = ' ';
            out[i + 1] = ' ';
            ++i;
            state = State::kCode;
          } else if (c != '\n') {
            out[i] = ' ';
          }
          break;
        case State::kString:
          if (c == '\\' && next != '\0') {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
            ++i;
          } else if (c == '"') {
            state = State::kCode;
          } else if (c != '\n') {
            out[i] = ' ';
          }
          break;
        case State::kChar:
          if (c == '\\' && next != '\0') {
            out[i] = ' ';
            if (next != '\n') out[i + 1] = ' ';
            ++i;
          } else if (c == '\'') {
            state = State::kCode;
          } else if (c != '\n') {
            out[i] = ' ';
          }
          break;
      }
    }
    return out;
  }

  static size_t LineOfOffset(std::string_view text, size_t offset) {
    size_t line = 1;
    for (size_t i = 0; i < offset && i < text.size(); ++i) {
      if (text[i] == '\n') ++line;
    }
    return line;
  }

  static bool IsIdentChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
  }

  /// Finds `ident` as a whole identifier token starting at or after `from`;
  /// returns npos when absent.
  static size_t FindIdentifier(std::string_view text, std::string_view ident,
                               size_t from) {
    while (true) {
      size_t pos = text.find(ident, from);
      if (pos == std::string_view::npos) return pos;
      const bool left_ok = pos == 0 || !IsIdentChar(text[pos - 1]);
      const size_t end = pos + ident.size();
      const bool right_ok = end >= text.size() || !IsIdentChar(text[end]);
      if (left_ok && right_ok) return pos;
      from = pos + 1;
    }
  }

  /// Rule 1: canonical include guards. src/metrics/group_metrics.h must
  /// guard with FAIRLAW_METRICS_GROUP_METRICS_H_; headers outside src/
  /// keep their top directory in the guard (tools/x.h -> FAIRLAW_TOOLS_X_H_).
  void CheckIncludeGuard(const fs::path& path) {
    std::error_code ec;
    fs::path rel = fs::relative(path, root_ / "src", ec);
    if (ec || rel.generic_string().rfind("../", 0) == 0) {
      rel = fs::relative(path, root_, ec);
      if (ec) return;
    }
    std::string guard = "FAIRLAW_";
    for (const char c : rel.generic_string()) {
      if (c == '/' || c == '.' || c == '-') {
        guard += '_';
      } else {
        guard += static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
      }
    }
    guard += "_";  // FAIRLAW_<DIR>_<FILE>_H -> ..._H_

    const std::string text = ReadFile(path);
    const std::string ifndef_line = "#ifndef " + guard;
    const std::string define_line = "#define " + guard;
    if (text.find(ifndef_line) == std::string::npos ||
        text.find(define_line) == std::string::npos) {
      Report(RelPath(path), 1, "include-guard",
             "expected guard '" + guard + "' (#ifndef/#define pair)");
    }
  }

  /// Rule 2: banned functions. The stdout ban only applies to library
  /// code (`library` = under src/); the rest apply everywhere.
  void CheckBannedFunctions(const fs::path& path,
                            const std::string& stripped, bool library) {
    struct Ban {
      const char* ident;
      const char* why;
      bool library_only;
    };
    static constexpr Ban kBans[] = {
        {"rand", "use stats::Rng: audits must be reproducible", false},
        {"srand", "use stats::Rng: audits must be reproducible", false},
        {"atoi", "use fairlaw::ParseInt64: unchecked parse loses errors",
         false},
        {"strtod", "use fairlaw::ParseDouble: unchecked parse loses errors",
         false},
        {"printf", "library code must not write to stdout; report via "
                   "Status or render strings", true},
    };
    for (const Ban& ban : kBans) {
      if (ban.library_only && !library) continue;
      size_t pos = 0;
      while ((pos = FindIdentifier(stripped, ban.ident, pos)) !=
             std::string::npos) {
        Report(RelPath(path), LineOfOffset(stripped, pos), "banned-function",
               std::string("call to '") + ban.ident + "': " + ban.why);
        pos += std::strlen(ban.ident);
      }
    }
  }

  /// Rule 3: every check carries a non-empty message. Bare FAIRLAW_CHECK
  /// is only allowed inside its defining header.
  void CheckMessagedChecks(const fs::path& path, const std::string& stripped,
                           const std::string& original) {
    const std::string rel = RelPath(path);
    if (rel == "src/base/check.h") return;
    size_t pos = 0;
    while ((pos = FindIdentifier(stripped, "FAIRLAW_CHECK", pos)) !=
           std::string::npos) {
      Report(rel, LineOfOffset(stripped, pos), "bare-check",
             "FAIRLAW_CHECK without a message; use FAIRLAW_CHECK_MSG so a "
             "production crash names the violated invariant");
      pos += std::strlen("FAIRLAW_CHECK");
    }
    for (const char* macro : {"FAIRLAW_CHECK_MSG", "FAIRLAW_NOTREACHED"}) {
      pos = 0;
      while ((pos = FindIdentifier(stripped, macro, pos)) !=
             std::string::npos) {
        const size_t open = stripped.find('(', pos);
        pos += std::strlen(macro);
        if (open == std::string::npos) continue;
        size_t close = open;
        int depth = 0;
        do {
          if (stripped[close] == '(') ++depth;
          if (stripped[close] == ')') --depth;
          if (depth == 0) break;
          ++close;
        } while (close < stripped.size());
        if (close >= stripped.size()) continue;
        // The stripped text blanks literal contents, so an empty message
        // shows up as `""` in the original at the argument tail.
        std::string_view tail =
            std::string_view(original).substr(open, close - open);
        const size_t last_quote = tail.rfind('"');
        if (last_quote != std::string_view::npos && last_quote > 0 &&
            tail[last_quote - 1] == '"') {
          Report(rel, LineOfOffset(stripped, pos), "bare-check",
                 std::string(macro) + " with an empty message");
        }
      }
    }
  }

  /// Rule 5: concurrency goes through base/thread_pool.h. Raw std::thread
  /// and std::this_thread::sleep_for are banned outside src/base/ — ad-hoc
  /// threads dodge the annotated-mutex discipline, and sleeps in tests are
  /// how flakes are born.
  void CheckThreadPrimitives(const fs::path& path,
                             const std::string& stripped) {
    const std::string rel = RelPath(path);
    if (rel.rfind("src/base/", 0) == 0) return;
    size_t pos = 0;
    while ((pos = stripped.find("std::thread", pos)) != std::string::npos) {
      const size_t end = pos + std::strlen("std::thread");
      if (end >= stripped.size() || !IsIdentChar(stripped[end])) {
        Report(rel, LineOfOffset(stripped, pos), "thread-primitive",
               "raw std::thread outside base/: use fairlaw::ThreadPool "
               "(base/thread_pool.h) so work is annotated and joined");
      }
      pos = end;
    }
    pos = 0;
    while ((pos = FindIdentifier(stripped, "this_thread", pos)) !=
           std::string::npos) {
      Report(rel, LineOfOffset(stripped, pos), "thread-primitive",
             "std::this_thread::sleep_for outside base/: synchronize on "
             "state, not on wall-clock time");
      pos += std::strlen("this_thread");
    }
  }

  /// Rule 7: one sanctioned clock. Raw std::chrono::steady_clock is
  /// banned outside src/obs/ — obs::MonotonicNowNs() and obs::TraceSpan
  /// are the timing sources, so every measurement shares one clock and
  /// honors the obs kill switch.
  void CheckTimingSource(const fs::path& path, const std::string& stripped) {
    const std::string rel = RelPath(path);
    if (rel.rfind("src/obs/", 0) == 0) return;
    size_t pos = 0;
    while ((pos = FindIdentifier(stripped, "steady_clock", pos)) !=
           std::string::npos) {
      Report(rel, LineOfOffset(stripped, pos), "timing-source",
             "raw std::chrono::steady_clock outside src/obs/: use "
             "obs::MonotonicNowNs() or obs::TraceSpan so measurements share "
             "one clock and honor the obs kill switch");
      pos += std::strlen("steady_clock");
    }
  }

  /// Returns the 1-based `line` of `text` (empty when out of range).
  static std::string_view LineAt(std::string_view text, size_t line) {
    size_t start = 0;
    for (size_t current = 1; current < line; ++current) {
      start = text.find('\n', start);
      if (start == std::string_view::npos) return {};
      ++start;
    }
    size_t end = text.find('\n', start);
    if (end == std::string_view::npos) end = text.size();
    return text.substr(start, end - start);
  }

  /// True when the flagged line (or the one above, for comments that do
  /// not fit beside the code) carries the escape-hatch marker. Markers
  /// live in comments, so we must look at the original text.
  static bool AllowsStringCompare(const std::string& original, size_t line) {
    constexpr std::string_view kMarker = "lint: allow-string-compare";
    if (LineAt(original, line).find(kMarker) != std::string_view::npos) {
      return true;
    }
    return line > 1 &&
           LineAt(original, line - 1).find(kMarker) != std::string_view::npos;
  }

  /// Collects the identifiers declared in `stripped` with type
  /// std::vector<std::string> (values, references, and members alike).
  /// Purely lexical: the declared name is the first identifier after the
  /// template closer.
  static std::vector<std::string> StringVectorNames(
      const std::string& stripped) {
    constexpr std::string_view kDecl = "std::vector<std::string>";
    std::vector<std::string> names;
    size_t pos = 0;
    while ((pos = stripped.find(kDecl, pos)) != std::string::npos) {
      size_t i = pos + kDecl.size();
      while (i < stripped.size() &&
             (stripped[i] == '&' || stripped[i] == '*' ||
              std::isspace(static_cast<unsigned char>(stripped[i])))) {
        ++i;
      }
      size_t end = i;
      while (end < stripped.size() && IsIdentChar(stripped[end])) ++end;
      if (end > i &&
          !std::isdigit(static_cast<unsigned char>(stripped[i]))) {
        names.push_back(stripped.substr(i, end - i));
      }
      pos += kDecl.size();
    }
    return names;
  }

  /// Rule 6: hot-path hygiene. std::vector<bool> is banned in every
  /// scanned tree; per-row string equality inside loops is flagged for
  /// the audit/metric kernels, where membership tests must run on
  /// data::GroupIndex bitmaps (see DESIGN.md §9).
  void CheckHotPath(const fs::path& path, const std::string& stripped,
                    const std::string& original) {
    const std::string rel = RelPath(path);
    size_t pos = 0;
    while ((pos = stripped.find("std::vector<bool>", pos)) !=
           std::string::npos) {
      Report(rel, LineOfOffset(stripped, pos), "hot-path",
             "std::vector<bool> is banned: its packed proxies defeat spans "
             "and word-wise kernels; use std::vector<uint8_t> or "
             "data::Bitmap");
      pos += std::strlen("std::vector<bool>");
    }

    const bool hot_tree = rel.rfind("src/audit/", 0) == 0 ||
                          rel.rfind("src/metrics/", 0) == 0;
    if (!hot_tree) return;
    const std::vector<std::string> names = StringVectorNames(stripped);
    if (names.empty()) return;

    // One pass over the file tracking which brace depths are loop bodies;
    // a `for`/`while` header counts as in-loop from its keyword onward,
    // which also catches per-row compares in the loop condition itself.
    std::vector<size_t> loop_depths;
    size_t depth = 0;
    bool pending_loop = false;
    for (size_t i = 0; i < stripped.size(); ++i) {
      const char c = stripped[i];
      if (c == '{') {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
        continue;
      }
      if (c == '}') {
        if (!loop_depths.empty() && loop_depths.back() == depth) {
          loop_depths.pop_back();
        }
        if (depth > 0) --depth;
        continue;
      }
      if (!IsIdentChar(c) || (i > 0 && IsIdentChar(stripped[i - 1]))) {
        continue;
      }
      size_t end = i;
      while (end < stripped.size() && IsIdentChar(stripped[end])) ++end;
      const std::string_view word(stripped.data() + i, end - i);
      if (word == "for" || word == "while") {
        pending_loop = true;
      } else if ((pending_loop || !loop_depths.empty()) &&
                 std::find(names.begin(), names.end(), word) !=
                     names.end()) {
        MaybeReportStringCompare(rel, stripped, original, end);
      }
      i = end - 1;
    }
  }

  /// Reports a hot-path violation when the text at `after_name` (just past
  /// a std::vector<std::string> identifier, inside a loop) reads
  /// `[...] ==` or `[...] !=` and the escape hatch is absent.
  void MaybeReportStringCompare(const std::string& rel,
                                const std::string& stripped,
                                const std::string& original,
                                size_t after_name) {
    size_t i = after_name;
    while (i < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[i]))) {
      ++i;
    }
    if (i >= stripped.size() || stripped[i] != '[') return;
    int depth = 0;
    while (i < stripped.size()) {
      if (stripped[i] == '[') ++depth;
      if (stripped[i] == ']' && --depth == 0) break;
      ++i;
    }
    if (i >= stripped.size()) return;
    ++i;  // past ']'
    while (i < stripped.size() &&
           std::isspace(static_cast<unsigned char>(stripped[i]))) {
      ++i;
    }
    if (i + 1 >= stripped.size() || stripped[i + 1] != '=' ||
        (stripped[i] != '=' && stripped[i] != '!')) {
      return;
    }
    const size_t line = LineOfOffset(stripped, i);
    if (AllowsStringCompare(original, line)) return;
    Report(rel, line, "hot-path",
           "per-row std::string compare inside a loop: audit/metric "
           "kernels must test membership via data::GroupIndex bitmaps "
           "(add `lint: allow-string-compare` only for a deliberate "
           "scalar baseline)");
  }

  /// Rule 4: every metric name registered in src/core/registry.cc must be
  /// referenced (as a quoted string) by at least one tests/*_test.cc.
  void CheckRegistryCoverage() {
    const fs::path registry = root_ / "src" / "core" / "registry.cc";
    const fs::path tests = root_ / "tests";
    if (!fs::is_regular_file(registry) || !fs::is_directory(tests)) return;
    const std::string text = ReadFile(registry);

    std::vector<std::string> names;
    size_t pos = 0;
    while ((pos = text.find("{\"", pos)) != std::string::npos) {
      const size_t begin = pos + 2;
      const size_t end = text.find('"', begin);
      if (end == std::string::npos) break;
      names.push_back(text.substr(begin, end - begin));
      pos = end + 1;
    }

    std::string corpus;
    for (const fs::directory_entry& entry : fs::directory_iterator(tests)) {
      if (!entry.is_regular_file()) continue;
      const std::string filename = entry.path().filename().string();
      if (filename.size() > 8 &&
          filename.substr(filename.size() - 8) == "_test.cc") {
        corpus += ReadFile(entry.path());
      }
    }
    for (const std::string& name : names) {
      if (corpus.find("\"" + name + "\"") == std::string::npos) {
        Report("src/core/registry.cc", LineOfOffset(text, text.find(name)),
               "registry-coverage",
               "registered metric '" + name +
                   "' is never referenced by name in tests/*_test.cc");
      }
    }
  }

  fs::path root_;
  std::vector<Violation> violations_;
};

}  // namespace

int main(int argc, char** argv) {
  std::string root_flag = ".";
  bool verbose = false;
  fairlaw::cli::FlagSet flags(
      "fairlaw_lint", "",
      "Static-analysis pass enforcing the fairlaw project invariants\n"
      "(see the header of tools/fairlaw_lint.cc for the rule set).\n"
      "exit codes: 0 clean, 1 violations, 2 usage or I/O error");
  flags.Add("root", &root_flag, "tree to scan");
  flags.Add("verbose", &verbose, "print the violation count even when clean");
  fairlaw::Result<fairlaw::cli::ParseResult> parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "fairlaw_lint: %s\n\n%s",
                 parsed.status().message().c_str(), flags.Help().c_str());
    return 2;
  }
  if (parsed->help) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!parsed->positionals.empty()) {
    std::fprintf(stderr, "fairlaw_lint: unexpected argument '%s'\n",
                 parsed->positionals[0].c_str());
    return 2;
  }
  fs::path root(root_flag);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fairlaw_lint: root '%s' is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  Linter linter(root);
  const std::vector<Violation>& violations = linter.Run();
  for (const Violation& v : violations) {
    std::fprintf(stderr, "%s:%zu: %s: %s\n", v.file.c_str(), v.line,
                 v.rule.c_str(), v.message.c_str());
  }
  if (verbose || !violations.empty()) {
    std::fprintf(stderr, "fairlaw_lint: %zu violation(s)\n",
                 violations.size());
  }
  return violations.empty() ? 0 : 1;
}
