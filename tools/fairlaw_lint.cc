// fairlaw_lint — project-invariant static analysis pass.
//
//   fairlaw_lint [--root=DIR] [--json=PATH] [--verbose]
//
// Walks src/, tools/, and tests/ under --root (default: current
// directory) and enforces the fairlaw project invariants that generic
// compiler warnings cannot express:
//
//   1. include-guard   every header uses the canonical
//                      FAIRLAW_<DIR>_<FILE>_H_ guard derived from its path
//                      (the src/ prefix is dropped; tools/x.h guards with
//                      FAIRLAW_TOOLS_X_H_).
//   2. banned-function no rand, srand, atoi, or strtod anywhere:
//                      randomness goes through stats::Rng (reproducible
//                      audits) and parsing through base/string_util.h
//                      (checked conversions). printf-to-stdout is banned
//                      in library code (src/) only — printing is the
//                      product of a CLI tool.
//   3. bare-check      every FAIRLAW_CHECK failure path must carry a
//                      message (use FAIRLAW_CHECK_MSG / FAIRLAW_CHECK_OK);
//                      messages must be non-empty.
//   4. registry-coverage
//                      every metric name registered in src/core/registry.cc
//                      must be referenced by name in some tests/*_test.cc.
//   5. thread-primitive
//                      raw std::thread and std::this_thread::sleep_for are
//                      banned outside src/base/: concurrency goes through
//                      fairlaw::ThreadPool, and synchronization happens on
//                      state, not wall-clock time.
//   6. hot-path        std::vector<bool> is banned tree-wide (its packed
//                      proxy references defeat spans and word-wise
//                      kernels; use std::vector<uint8_t> or data::Bitmap),
//                      and per-row std::string equality comparisons inside
//                      loops are flagged in src/audit/ and src/metrics/
//                      (group membership belongs in data::GroupIndex
//                      bitmaps, not string compares). A deliberate scalar
//                      baseline can opt out with a
//                      `lint: allow-string-compare` comment on the line or
//                      the line above.
//   7. timing-source   raw std::chrono::steady_clock is banned outside
//                      src/obs/: measurements flow through
//                      obs::MonotonicNowNs() / obs::TraceSpan so they
//                      share one clock and honor the obs kill switch.
//   8. simd-intrinsic  vendor SIMD intrinsics (<immintrin.h>/<arm_neon.h>
//                      includes, _mm*/__m* identifiers, NEON v*q_*
//                      builtins and vector types) live in exactly one
//                      header, src/base/simd.h. Everything else calls the
//                      fairlaw::simd wrappers, so the scalar fallback and
//                      the vector paths can never diverge silently.
//
// Rules 2, 3, 5, 6, and 7 run over the token stream produced by the
// shared analysis lexer (tools/analysis/lexer.h) — the same substrate
// fairlaw_detcheck uses — so identifiers inside string literals,
// comments, raw strings, and splice-continued comments never trip a
// rule (the pre-lexer scanner false-positived on the last two; see
// tools/lint_clean_fixture/). Directories named *_fixture are skipped:
// they hold the deliberate violations the self-tests check. Exit code
// 0 = clean, 1 = violations (listed one per line as
// file:line: rule: msg), 2 = usage or I/O error. --json writes the
// findings artifact in the schema every analysis pass shares
// (tools/analysis/report.h). Registered as a ctest test so violations
// fail tier-1.
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "tools/analysis/lexer.h"
#include "tools/analysis/report.h"
#include "tools/cli.h"

namespace {

namespace fs = std::filesystem;
using fairlaw::analysis::Comment;
using fairlaw::analysis::HasMarkerOnOrAbove;
using fairlaw::analysis::Lex;
using fairlaw::analysis::LexResult;
using fairlaw::analysis::MatchingClose;
using fairlaw::analysis::ReadFileToString;
using fairlaw::analysis::RelativeTo;
using fairlaw::analysis::Reporter;
using fairlaw::analysis::Token;
using fairlaw::analysis::TokenKind;
using fairlaw::analysis::TokenSeqAt;

class Linter {
 public:
  explicit Linter(fs::path root) : root_(std::move(root)) {}

  /// Runs every rule; returns the pass's Reporter with findings in
  /// canonical (file, line, rule) order.
  Reporter& Run() {
    const fs::path src = root_ / "src";
    if (fs::is_directory(src)) {
      ScanTree(src, /*library=*/true);
    } else {
      Report(src.string(), 0, "tree", "missing src/ directory under root");
    }
    // Tools, tests, and benchmarks get the same hygiene rules except the
    // stdout ban: printing IS the product of a CLI tool.
    for (const char* top : {"tools", "tests", "bench"}) {
      const fs::path dir = root_ / top;
      if (fs::is_directory(dir)) ScanTree(dir, /*library=*/false);
    }
    CheckRegistryCoverage();
    reporter_.Sorted();
    return reporter_;
  }

 private:
  /// Applies the per-file rules to every source file under `dir`.
  /// Directories named *_fixture hold deliberate violations for the
  /// analysis-pass self-tests and are skipped.
  void ScanTree(const fs::path& dir, bool library) {
    for (fs::recursive_directory_iterator it(dir), end; it != end; ++it) {
      if (it->is_directory() &&
          it->path().filename().string().ends_with("_fixture")) {
        it.disable_recursion_pending();
        continue;
      }
      if (!it->is_regular_file()) continue;
      const fs::path& path = it->path();
      const std::string ext = path.extension().string();
      if (ext == ".h") CheckIncludeGuard(path);
      if (ext == ".h" || ext == ".cc") {
        const LexResult lex = Lex(ReadFile(path));
        const std::span<const Token> tokens(lex.tokens);
        CheckBannedFunctions(path, tokens, library);
        CheckMessagedChecks(path, tokens);
        CheckThreadPrimitives(path, tokens);
        CheckTimingSource(path, tokens);
        CheckSimdConfinement(path, tokens);
        CheckHotPath(path, tokens, lex.comments);
      }
    }
  }

  std::string ReadFile(const fs::path& path) {
    return ReadFileToString(path);
  }

  std::string RelPath(const fs::path& path) {
    return RelativeTo(path, root_);
  }

  /// Most lint rules are structural (a wrong include guard cannot be
  /// "allowed"), so findings bypass the marker machinery; the hot-path
  /// string-compare rule keeps its own pre-existing
  /// `lint: allow-string-compare` marker check at the call site.
  void Report(std::string file, size_t line, std::string rule,
              std::string message) {
    reporter_.ReportAlways(std::move(file), line, std::move(rule),
                           std::move(message));
  }

  static size_t LineOfOffset(std::string_view text, size_t offset) {
    size_t line = 1;
    for (size_t i = 0; i < offset && i < text.size(); ++i) {
      if (text[i] == '\n') ++line;
    }
    return line;
  }

  /// Rule 1: canonical include guards. src/metrics/group_metrics.h must
  /// guard with FAIRLAW_METRICS_GROUP_METRICS_H_; headers outside src/
  /// keep their top directory in the guard (tools/x.h -> FAIRLAW_TOOLS_X_H_).
  void CheckIncludeGuard(const fs::path& path) {
    std::error_code ec;
    fs::path rel = fs::relative(path, root_ / "src", ec);
    if (ec || rel.generic_string().rfind("../", 0) == 0) {
      rel = fs::relative(path, root_, ec);
      if (ec) return;
    }
    std::string guard = "FAIRLAW_";
    for (const char c : rel.generic_string()) {
      if (c == '/' || c == '.' || c == '-') {
        guard += '_';
      } else {
        guard += static_cast<char>(
            std::toupper(static_cast<unsigned char>(c)));
      }
    }
    guard += "_";  // FAIRLAW_<DIR>_<FILE>_H -> ..._H_

    const std::string text = ReadFile(path);
    const std::string ifndef_line = "#ifndef " + guard;
    const std::string define_line = "#define " + guard;
    if (text.find(ifndef_line) == std::string::npos ||
        text.find(define_line) == std::string::npos) {
      Report(RelPath(path), 1, "include-guard",
             "expected guard '" + guard + "' (#ifndef/#define pair)");
    }
  }

  /// Rule 2: banned functions. The stdout ban only applies to library
  /// code (`library` = under src/); the rest apply everywhere.
  void CheckBannedFunctions(const fs::path& path,
                            std::span<const Token> tokens, bool library) {
    struct Ban {
      const char* ident;
      const char* why;
      bool library_only;
    };
    static constexpr Ban kBans[] = {
        {"rand", "use stats::Rng: audits must be reproducible", false},
        {"srand", "use stats::Rng: audits must be reproducible", false},
        {"atoi", "use fairlaw::ParseInt64: unchecked parse loses errors",
         false},
        {"strtod", "use fairlaw::ParseDouble: unchecked parse loses errors",
         false},
        {"printf", "library code must not write to stdout; report via "
                   "Status or render strings", true},
    };
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kIdentifier) continue;
      for (const Ban& ban : kBans) {
        if (ban.library_only && !library) continue;
        if (token.text != ban.ident) continue;
        Report(RelPath(path), token.line, "banned-function",
               std::string("call to '") + ban.ident + "': " + ban.why);
      }
    }
  }

  /// Rule 3: every check carries a non-empty message. Bare FAIRLAW_CHECK
  /// is only allowed inside its defining header.
  void CheckMessagedChecks(const fs::path& path,
                           std::span<const Token> tokens) {
    const std::string rel = RelPath(path);
    if (rel == "src/base/check.h") return;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& token = tokens[i];
      if (token.kind != TokenKind::kIdentifier) continue;
      if (token.text == "FAIRLAW_CHECK") {
        Report(rel, token.line, "bare-check",
               "FAIRLAW_CHECK without a message; use FAIRLAW_CHECK_MSG so a "
               "production crash names the violated invariant");
        continue;
      }
      if (token.text != "FAIRLAW_CHECK_MSG" &&
          token.text != "FAIRLAW_NOTREACHED") {
        continue;
      }
      if (i + 1 >= tokens.size() || !tokens[i + 1].IsPunct("(")) continue;
      const size_t close = MatchingClose(tokens, i + 1);
      // The message is the last string literal among the arguments; an
      // empty one defeats the point of the macro.
      const Token* last_string = nullptr;
      for (size_t j = i + 2; j < close && j < tokens.size(); ++j) {
        if (tokens[j].kind == TokenKind::kString) last_string = &tokens[j];
      }
      if (last_string != nullptr && last_string->text.empty()) {
        Report(rel, last_string->line, "bare-check",
               token.text + " with an empty message");
      }
    }
  }

  /// Rule 5: concurrency goes through base/thread_pool.h. Raw std::thread
  /// and std::this_thread::sleep_for are banned outside src/base/ — ad-hoc
  /// threads dodge the annotated-mutex discipline, and sleeps in tests are
  /// how flakes are born.
  void CheckThreadPrimitives(const fs::path& path,
                             std::span<const Token> tokens) {
    const std::string rel = RelPath(path);
    if (rel.rfind("src/base/", 0) == 0) return;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (TokenSeqAt(tokens, i, {"std", "::", "thread"})) {
        Report(rel, tokens[i].line, "thread-primitive",
               "raw std::thread outside base/: use fairlaw::ThreadPool "
               "(base/thread_pool.h) so work is annotated and joined");
      }
      if (tokens[i].IsIdent("this_thread")) {
        Report(rel, tokens[i].line, "thread-primitive",
               "std::this_thread::sleep_for outside base/: synchronize on "
               "state, not on wall-clock time");
      }
    }
  }

  /// Rule 7: one sanctioned clock. Raw std::chrono::steady_clock is
  /// banned outside src/obs/ — obs::MonotonicNowNs() and obs::TraceSpan
  /// are the timing sources, so every measurement shares one clock and
  /// honors the obs kill switch.
  void CheckTimingSource(const fs::path& path,
                         std::span<const Token> tokens) {
    const std::string rel = RelPath(path);
    if (rel.rfind("src/obs/", 0) == 0) return;
    for (const Token& token : tokens) {
      if (!token.IsIdent("steady_clock")) continue;
      Report(rel, token.line, "timing-source",
             "raw std::chrono::steady_clock outside src/obs/: use "
             "obs::MonotonicNowNs() or obs::TraceSpan so measurements share "
             "one clock and honor the obs kill switch");
    }
  }

  /// Rule 8: vendor intrinsics are confined to src/base/simd.h — the one
  /// translation-unit-visible place where backend divergence is possible,
  /// and the only code the SIMD-vs-scalar equivalence tests exercise.
  /// Matches the intrinsic headers by name, the x86 _mm*/_MM*/__m*
  /// namespace, and the NEON builtin/vector-type spellings.
  void CheckSimdConfinement(const fs::path& path,
                            std::span<const Token> tokens) {
    const std::string rel = RelPath(path);
    if (rel == "src/base/simd.h") return;
    static constexpr const char* kPrefixes[] = {
        "_mm", "_MM", "__m",                            // x86 SSE/AVX
        "vld1", "vst1", "vcntq", "vpaddl", "vaddq",     // NEON builtins
        "vgetq", "vdupq", "vbicq", "vandq", "vreinterpretq",
        "uint8x", "uint16x", "uint32x", "uint64x",      // NEON vector types
    };
    for (const Token& token : tokens) {
      if (token.kind != TokenKind::kIdentifier) continue;
      const bool header = token.text == "immintrin" ||
                          token.text == "arm_neon" ||
                          token.text == "x86intrin";
      bool prefixed = false;
      for (const char* prefix : kPrefixes) {
        if (token.text.rfind(prefix, 0) == 0) {
          prefixed = true;
          break;
        }
      }
      if (!header && !prefixed) continue;
      Report(rel, token.line, "simd-intrinsic",
             "vendor SIMD intrinsic '" + token.text +
                 "' outside src/base/simd.h: call the fairlaw::simd "
                 "wrappers so scalar and vector builds stay equivalent");
    }
  }

  /// Collects the identifiers declared with type std::vector<std::string>
  /// (values, references, and members alike). Purely lexical: the
  /// declared name is the first identifier after the template closer and
  /// any &/* sigils.
  static std::vector<std::string> StringVectorNames(
      std::span<const Token> tokens) {
    std::vector<std::string> names;
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (!TokenSeqAt(tokens, i,
                      {"std", "::", "vector", "<", "std", "::", "string",
                       ">"})) {
        continue;
      }
      size_t j = i + 8;
      while (j < tokens.size() &&
             (tokens[j].IsPunct("&") || tokens[j].IsPunct("*"))) {
        ++j;
      }
      if (j < tokens.size() && tokens[j].kind == TokenKind::kIdentifier) {
        names.push_back(tokens[j].text);
      }
    }
    return names;
  }

  /// Rule 6: hot-path hygiene. std::vector<bool> is banned in every
  /// scanned tree; per-row string equality inside loops is flagged for
  /// the audit/metric kernels, where membership tests must run on
  /// data::GroupIndex bitmaps (see DESIGN.md §9).
  void CheckHotPath(const fs::path& path, std::span<const Token> tokens,
                    const std::vector<Comment>& comments) {
    const std::string rel = RelPath(path);
    for (size_t i = 0; i < tokens.size(); ++i) {
      if (TokenSeqAt(tokens, i, {"std", "::", "vector", "<", "bool", ">"})) {
        Report(rel, tokens[i].line, "hot-path",
               "std::vector<bool> is banned: its packed proxies defeat "
               "spans and word-wise kernels; use std::vector<uint8_t> or "
               "data::Bitmap");
      }
    }

    const bool hot_tree = rel.rfind("src/audit/", 0) == 0 ||
                          rel.rfind("src/metrics/", 0) == 0;
    if (!hot_tree) return;
    const std::vector<std::string> names = StringVectorNames(tokens);
    if (names.empty()) return;

    // One pass over the tokens tracking which brace depths are loop
    // bodies; a `for`/`while` header counts as in-loop from its keyword
    // onward, which also catches per-row compares in the loop condition
    // itself.
    std::vector<size_t> loop_depths;
    size_t depth = 0;
    bool pending_loop = false;
    for (size_t i = 0; i < tokens.size(); ++i) {
      const Token& token = tokens[i];
      if (token.IsPunct("{")) {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
        continue;
      }
      if (token.IsPunct("}")) {
        if (!loop_depths.empty() && loop_depths.back() == depth) {
          loop_depths.pop_back();
        }
        if (depth > 0) --depth;
        continue;
      }
      if (token.kind != TokenKind::kIdentifier) continue;
      if (token.text == "for" || token.text == "while") {
        pending_loop = true;
        continue;
      }
      if (!(pending_loop || !loop_depths.empty())) continue;
      if (std::find(names.begin(), names.end(), token.text) == names.end()) {
        continue;
      }
      // `name [ ... ] ==` or `!=`: a per-row rendered-string compare.
      if (i + 1 >= tokens.size() || !tokens[i + 1].IsPunct("[")) continue;
      const size_t close = MatchingClose(tokens, i + 1);
      if (close + 1 >= tokens.size()) continue;
      const Token& op = tokens[close + 1];
      if (!op.IsPunct("==") && !op.IsPunct("!=")) continue;
      if (HasMarkerOnOrAbove(comments, "lint: allow-string-compare",
                             op.line)) {
        continue;
      }
      Report(rel, op.line, "hot-path",
             "per-row std::string compare inside a loop: audit/metric "
             "kernels must test membership via data::GroupIndex bitmaps "
             "(add `lint: allow-string-compare` only for a deliberate "
             "scalar baseline)");
    }
  }

  /// Rule 4: every metric name registered in src/core/registry.cc must be
  /// referenced (as a quoted string) by at least one tests/*_test.cc.
  void CheckRegistryCoverage() {
    const fs::path registry = root_ / "src" / "core" / "registry.cc";
    const fs::path tests = root_ / "tests";
    if (!fs::is_regular_file(registry) || !fs::is_directory(tests)) return;
    const std::string text = ReadFile(registry);

    std::vector<std::string> names;
    size_t pos = 0;
    while ((pos = text.find("{\"", pos)) != std::string::npos) {
      const size_t begin = pos + 2;
      const size_t end = text.find('"', begin);
      if (end == std::string::npos) break;
      names.push_back(text.substr(begin, end - begin));
      pos = end + 1;
    }

    std::string corpus;
    for (const fs::directory_entry& entry : fs::directory_iterator(tests)) {
      if (!entry.is_regular_file()) continue;
      const std::string filename = entry.path().filename().string();
      if (filename.size() > 8 &&
          filename.substr(filename.size() - 8) == "_test.cc") {
        corpus += ReadFile(entry.path());
      }
    }
    for (const std::string& name : names) {
      if (corpus.find("\"" + name + "\"") == std::string::npos) {
        Report("src/core/registry.cc", LineOfOffset(text, text.find(name)),
               "registry-coverage",
               "registered metric '" + name +
                   "' is never referenced by name in tests/*_test.cc");
      }
    }
  }

  fs::path root_;
  Reporter reporter_{"fairlaw_lint", "lint"};
};

}  // namespace

int main(int argc, char** argv) {
  std::string root_flag = ".";
  std::string json_path;
  bool verbose = false;
  fairlaw::cli::FlagSet flags(
      "fairlaw_lint", "",
      "Static-analysis pass enforcing the fairlaw project invariants\n"
      "(see the header of tools/fairlaw_lint.cc for the rule set).\n"
      "exit codes: 0 clean, 1 violations, 2 usage or I/O error");
  flags.Add("root", &root_flag, "tree to scan");
  flags.Section("output");
  flags.Add("json", &json_path, "write the findings artifact to this path");
  flags.Add("verbose", &verbose, "print the violation count even when clean");
  fairlaw::Result<fairlaw::cli::ParseResult> parsed = flags.Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "fairlaw_lint: %s\n\n%s",
                 parsed.status().message().c_str(), flags.Help().c_str());
    return 2;
  }
  if (parsed->help) {
    std::printf("%s", flags.Help().c_str());
    return 0;
  }
  if (!parsed->positionals.empty()) {
    std::fprintf(stderr, "fairlaw_lint: unexpected argument '%s'\n",
                 parsed->positionals[0].c_str());
    return 2;
  }
  fs::path root(root_flag);
  if (!fs::is_directory(root)) {
    std::fprintf(stderr, "fairlaw_lint: root '%s' is not a directory\n",
                 root.string().c_str());
    return 2;
  }

  Linter linter(root);
  Reporter& reporter = linter.Run();
  reporter.PrintFindings(verbose);
  if (!json_path.empty() && !reporter.WriteArtifact(json_path)) return 2;
  return reporter.Sorted().empty() ? 0 : 1;
}
