#include "flow/api.h"

// Deliberately violating implementation for the fairlaw_flowcheck
// self-test: every error-flow rule must fire at least once in this
// file (the ctest fixture run asserts the exact rule set via
// --self-test).

namespace fairlaw::flow {

Status UseStore(Store& store, ThreadPool& pool) {
  // Rule 1: fallible call as a bare expression statement.
  store.Save(1);

  // Rule 1: a (void) cast without a flowcheck marker is still a
  // discard — deliberate discards must name their reason.
  (void)Store::Touch();

  // Rule 1: qualified free-function call, discarded after an if.
  if (store.Load().ok()) OpenStore("again");

  // Rule 2: dereferencing a Result local with no ok() check in scope.
  Result<int> loaded = store.Load();
  int value = *loaded;

  // Rule 2: ValueOrDie without a dominating check; the earlier check
  // of a DIFFERENT local must not count for this one.
  Result<Store> reopened = OpenStore("path");
  reopened.ValueOrDie().Save(value);

  // Rule 2: dereferencing the temporary of a fallible call in the same
  // expression — no ok() check is possible before the Result dies.
  value += store.Load().ValueOrDie();

  // Rule 2: an ok() check buried in a sibling scope does not dominate
  // the access that follows it.
  Result<int> sibling = store.Load();
  {
    if (sibling.ok()) value += 1;
  }
  value += *sibling;

  // Rule 3: fallible call inside a worker whose Status never escapes.
  pool.Submit([&store]() {
    store.Save(2);
  });

  // Rule 3: Status local produced in a task and never read again.
  pool.ParallelFor(4, [&store](size_t task) {
    Status st = Store::Touch();
    store.Save(static_cast<int>(task));
  });

  // Rule 5: fallible call inside a debug-only check macro vanishes
  // under NDEBUG.
  FAIRLAW_DCHECK(Store::Touch().ok(), "touch must succeed");

  // Rule 5: mutation inside a debug-only check macro.
  FAIRLAW_DCHECK(value++ < 100, "value stays small");

  return Status::OK();
}

}  // namespace fairlaw::flow
