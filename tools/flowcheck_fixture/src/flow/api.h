#ifndef FAIRLAW_TOOLS_FLOWCHECK_FIXTURE_SRC_FLOW_API_H_
#define FAIRLAW_TOOLS_FLOWCHECK_FIXTURE_SRC_FLOW_API_H_

// Deliberately violating header for the fairlaw_flowcheck self-test:
// every declaration below returns Status/Result<T> without
// FAIRLAW_NODISCARD, so each must land in the signature index AND fire
// rule 4 (nodiscard-missing). The declaration shapes cover what the
// index has to parse: plain methods, static factories, free functions,
// trailing return types, and a function-try-block definition.

namespace fairlaw::flow {

class Store {
 public:
  Status Save(int value);                  // nodiscard-missing
  static Status Touch();                   // nodiscard-missing (factory)
  Result<int> Load() const;                // nodiscard-missing
  auto Reload() -> Status;                 // nodiscard-missing (trailing)
  auto LoadAll() -> Result<std::vector<int>>;  // nodiscard-missing
};

Result<Store> OpenStore(const std::string& path);  // nodiscard-missing

// Function-try-block definition: the index must parse through `try`
// without losing the declaration or desynchronizing its scope stack.
inline Status Commit(Store& store) try {
  return store.Save(0);
} catch (...) {
  return Status::Internal("commit failed");
}

}  // namespace fairlaw::flow

#endif  // FAIRLAW_TOOLS_FLOWCHECK_FIXTURE_SRC_FLOW_API_H_
