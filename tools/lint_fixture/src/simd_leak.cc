// Deliberate violations of the simd-intrinsic rule: vendor intrinsics
// used outside src/base/simd.h. Kernels must go through the
// fairlaw::simd wrappers instead.
#include <immintrin.h>

#include <cstdint>

namespace fixture {

uint64_t LeakedAvx2Popcount(const uint64_t* words) {
  __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(words));
  __m256i sums = _mm256_sad_epu8(v, _mm256_setzero_si256());
  return static_cast<uint64_t>(_mm256_extract_epi64(sums, 0));
}

}  // namespace fixture
