#ifndef WRONG_GUARD_H
#define WRONG_GUARD_H

// Deliberately violating fixture for the fairlaw_lint self-test: wrong
// include guard, banned functions, and a bare FAIRLAW_CHECK. The
// fairlaw_lint_detects_violations ctest runs the pass over this tree and
// requires it to FAIL; if the pass ever stops catching these, tier-1 goes
// red.

inline int BadParse(const char* text) {
  return atoi(text);
}

inline void BadSeed() {
  srand(42);
  (void)rand();
}

#define USE_BARE_CHECK(x) FAIRLAW_CHECK(x)

#endif  // WRONG_GUARD_H
