// Deliberate hot-path violations for the fairlaw_lint self-test: a
// std::vector<bool> declaration and a per-row string compare inside a
// loop. The final compare carries the escape hatch and must NOT be
// reported — the live-tree lint run would catch a false positive there.
#include <cstddef>
#include <string>
#include <vector>

namespace fairlaw {

size_t CountMatchesTheSlowWay(const std::vector<std::string>& groups,
                              const std::string& wanted) {
  std::vector<bool> mask(groups.size(), false);  // violation: hot-path
  size_t count = 0;
  for (size_t row = 0; row < groups.size(); ++row) {
    if (groups[row] == wanted) {  // violation: hot-path string compare
      mask[row] = true;
      ++count;
    }
  }
  size_t suppressed = 0;
  for (size_t row = 0; row < groups.size(); ++row) {
    // lint: allow-string-compare
    if (groups[row] == wanted) ++suppressed;
  }
  return count + suppressed;
}

}  // namespace fairlaw
