// Deliberate timing-source violation for the fairlaw_lint self-test: a
// raw steady_clock read outside src/obs/, banned in favour of
// obs::MonotonicNowNs().
#include <chrono>
#include <cstdint>

namespace fairlaw {

int64_t ReadRawMonotonicClock() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace fairlaw
