// Deliberate thread-primitive violations for the fairlaw_lint self-test:
// a raw std::thread and a wall-clock sleep, both banned outside base/.
#include <chrono>
#include <thread>

namespace fairlaw {

void SpinOffUnmanagedWork() {
  std::thread worker([] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  worker.join();
}

}  // namespace fairlaw
