// Rank-4 header the fixture's data/ module illegally reaches up to.
#ifndef FAIRLAW_ML_MODEL_H_
#define FAIRLAW_ML_MODEL_H_

namespace fairlaw::ml {

struct Model {
  int Predict() { return 0; }
};

}  // namespace fairlaw::ml

#endif  // FAIRLAW_ML_MODEL_H_
