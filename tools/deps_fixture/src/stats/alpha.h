// Deliberately broken fixture for the fairlaw_deps self-test: alpha and
// beta include each other (include-cycle rule).
#ifndef FAIRLAW_STATS_ALPHA_H_
#define FAIRLAW_STATS_ALPHA_H_

#include "stats/beta.h"

namespace fairlaw::stats {

struct Alpha {
  Beta* beta = nullptr;
};

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_ALPHA_H_
