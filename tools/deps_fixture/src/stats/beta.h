// Second half of the include cycle with stats/alpha.h.
#ifndef FAIRLAW_STATS_BETA_H_
#define FAIRLAW_STATS_BETA_H_

#include "stats/alpha.h"

namespace fairlaw::stats {

struct Beta {
  Alpha* alpha = nullptr;
};

}  // namespace fairlaw::stats

#endif  // FAIRLAW_STATS_BETA_H_
