// Fixture violations: data (rank 2) includes ml (rank 4) — layering —
// and includes stats/alpha.h without using anything from it —
// unused-include.
#ifndef FAIRLAW_DATA_FRAME_H_
#define FAIRLAW_DATA_FRAME_H_

#include "ml/model.h"
#include "stats/alpha.h"

namespace fairlaw::data {

struct Frame {
  ml::Model model;
};

}  // namespace fairlaw::data

#endif  // FAIRLAW_DATA_FRAME_H_
