#ifndef FAIRLAW_TOOLS_CLI_H_
#define FAIRLAW_TOOLS_CLI_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "base/result.h"

/// Shared --flag=value parsing for the fairlaw command-line tools.
///
/// Before this existed every tool hand-rolled its own strncmp loop; the
/// four copies drifted (different unknown-flag behavior, different help
/// conventions, ad-hoc range checks). The FlagSet registry replaces all
/// of them:
///
///   cli::FlagSet flags("fairlaw_audit", "<csv>", "Audits decisions ...");
///   std::string protected_column;
///   double tolerance = 0.05;
///   bool json = false;
///   flags.Add("protected", &protected_column, "protected attribute column");
///   flags.Add("tolerance", &tolerance, "gap tolerance",
///             cli::Range<double>{0.0, 1.0});
///   flags.Add("json", &json, "emit machine-readable JSON");
///   FAIRLAW_ASSIGN_OR_RETURN(cli::ParseResult parsed,
///                            flags.Parse(argc, argv));
///
/// Conventions enforced for every tool:
///   * values attach with '=' ("--tolerance=0.1"); bool flags are bare
///     presence flags ("--json", optionally "--json=false").
///   * unknown flags are Status errors, never silently ignored.
///   * "--help" / "-h" short-circuit; FlagSet::Help() autogenerates the
///     flag listing (with defaults) so usage text cannot go stale.
///   * numeric flags take an optional Range with per-bound openness;
///     violations report "--name must lie in [lo,hi], got x".
namespace fairlaw::cli {

/// Typed parse/render behavior of one flag value. Specialized for the
/// supported target types (std::string, bool, double, int64_t,
/// uint64_t, std::vector<std::string>); FlagSet::Add works for exactly
/// these. Each specialization provides:
///   Hint()   — placeholder shown in help ("--name=F");
///   Parse()  — whole-input checked conversion of the text after '=';
///   Render() — value rendering for the "(default: ...)" help suffix
///              (empty string suppresses the suffix).
template <typename T>
struct Flag;

template <>
struct Flag<std::string> {
  static const char* Hint();
  static Result<std::string> Parse(std::string_view text);
  static std::string Render(const std::string& value);
};

template <>
struct Flag<bool> {
  static const char* Hint();
  static Result<bool> Parse(std::string_view text);
  static std::string Render(const bool& value);
};

template <>
struct Flag<double> {
  static const char* Hint();
  static Result<double> Parse(std::string_view text);
  static std::string Render(const double& value);
};

template <>
struct Flag<int64_t> {
  static const char* Hint();
  static Result<int64_t> Parse(std::string_view text);
  static std::string Render(const int64_t& value);
};

template <>
struct Flag<uint64_t> {
  static const char* Hint();
  static Result<uint64_t> Parse(std::string_view text);
  static std::string Render(const uint64_t& value);
};

template <>
struct Flag<std::vector<std::string>> {
  static const char* Hint();
  static Result<std::vector<std::string>> Parse(std::string_view text);
  static std::string Render(const std::vector<std::string>& value);
};

/// Closed/open numeric interval for range-checked flags.
template <typename T>
struct Range {
  T min;
  T max;
  bool min_inclusive = true;
  bool max_inclusive = true;

  bool Contains(T value) const {
    if (min_inclusive ? value < min : value <= min) return false;
    if (max_inclusive ? value > max : value >= max) return false;
    return true;
  }

  std::string Render() const {
    return std::string(min_inclusive ? "[" : "(") + Flag<T>::Render(min) +
           "," + Flag<T>::Render(max) + (max_inclusive ? "]" : ")");
  }
};

/// Outcome of a successful parse: the non-flag arguments in order, plus
/// whether --help/-h was seen (when set, no other argument was
/// processed and the tool should print Help() and exit 0).
struct ParseResult {
  std::vector<std::string> positionals;
  bool help = false;
};

/// Registry of a tool's flags; see the file comment for usage.
class FlagSet {
 public:
  /// `positionals` documents the positional arguments for the usage
  /// line (e.g. "<csv>"); `summary` is the one-paragraph description.
  FlagSet(std::string_view program, std::string_view positionals,
          std::string_view summary);

  /// Registers "--name=<value>" writing into `*target` (which holds the
  /// default and must outlive Parse). Bool targets register a bare
  /// presence flag.
  template <typename T>
  void Add(std::string_view name, T* target, std::string_view help) {
    AddImpl(name, target, help, std::optional<Range<T>>());
  }

  /// Range-checked numeric flag.
  template <typename T>
  void Add(std::string_view name, T* target, std::string_view help,
           Range<T> range) {
    static_assert(std::is_arithmetic_v<T> && !std::is_same_v<T, bool>,
                  "Range applies to numeric flags only");
    AddImpl(name, target, help, std::optional<Range<T>>(std::move(range)));
  }

  /// Parses argv. Flags may interleave with positionals; every
  /// "--name" must be registered, anything else starting with '-' is an
  /// unknown-flag error.
  Result<ParseResult> Parse(int argc, char* const* argv) const;

  /// Autogenerated usage text (usage line, summary, flag listing).
  std::string Help() const;

 private:
  struct Entry {
    std::string name;
    std::string help;
    std::string value_hint;
    std::string default_text;
    bool takes_value = true;
    std::function<Status(std::string_view)> parse;
  };

  template <typename T>
  void AddImpl(std::string_view name, T* target, std::string_view help,
               std::optional<Range<T>> range) {
    Entry entry;
    entry.name = std::string(name);
    entry.help = std::string(help);
    entry.value_hint = Flag<T>::Hint();
    entry.default_text = Flag<T>::Render(*target);
    entry.takes_value = !std::is_same_v<T, bool>;
    entry.parse = [target, range = std::move(range),
                   flag = std::string(name)](std::string_view text) -> Status {
      FAIRLAW_ASSIGN_OR_RETURN(T parsed, Flag<T>::Parse(text));
      if (range.has_value() && !range->Contains(parsed)) {
        return Status::Invalid("--" + flag + " must lie in " +
                               range->Render() + ", got " +
                               std::string(text));
      }
      *target = std::move(parsed);
      return Status::OK();
    };
    Register(std::move(entry));
  }

  void Register(Entry entry);
  const Entry* Find(std::string_view name) const;

  std::string program_;
  std::string positionals_;
  std::string summary_;
  std::vector<Entry> entries_;
};

}  // namespace fairlaw::cli

#endif  // FAIRLAW_TOOLS_CLI_H_
