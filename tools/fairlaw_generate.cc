// fairlaw_generate — synthetic fairness-scenario generator.
//
//   fairlaw_generate hiring    --n=10000 --label-bias=1.5 --proxy=1.0
//   fairlaw_generate lending   --n=10000 --label-bias=1.0
//   fairlaw_generate promotion --n=20000 --subgroup-bias=1.5
//   fairlaw_generate admissions --n=10000 --label-bias=0.5
//       [--seed=42] [--out=FILE]
//
// Emits the scenario's audit-ready CSV (protected attribute(s), model
// features, gender-blind merit, historical decision) to stdout or
// --out. Pairs with fairlaw_audit for end-to-end demos:
//
//   fairlaw_generate hiring --label-bias=1.5 --out=h.csv
//   fairlaw_audit h.csv --protected=gender --pred=hired --label=merit
#include <cstdio>
#include <cstring>
#include <string>

#include "base/string_util.h"
#include "data/csv.h"
#include "simulation/scenarios.h"

namespace {

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fairlaw_generate <hiring|lending|promotion|admissions>\n"
      "       [--n=N] [--seed=S] [--label-bias=F] [--proxy=F]\n"
      "       [--subgroup-bias=F] [--out=FILE]\n");
}

struct CliOptions {
  std::string scenario;
  bool show_help = false;
  size_t n = 10000;
  uint64_t seed = 42;
  double label_bias = 1.0;
  double proxy = 1.0;
  double subgroup_bias = 1.5;
  std::string out;
};

fairlaw::Result<CliOptions> Parse(int argc, char** argv) {
  CliOptions options;
  auto value_of = [](const char* arg, const char* name) -> const char* {
    size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      return arg + len + 1;
    }
    return nullptr;
  };
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* v = nullptr;
    if (std::strcmp(arg, "--help") == 0 || std::strcmp(arg, "-h") == 0) {
      options.show_help = true;
      return options;
    }
    if ((v = value_of(arg, "--n"))) {
      // ParseInt64 wraps std::from_chars: whole-input, checked conversion.
      FAIRLAW_ASSIGN_OR_RETURN(int64_t n, fairlaw::ParseInt64(v));
      if (n < 10 || n > (int64_t{1} << 31)) {
        return fairlaw::Status::Invalid(
            "--n must lie in [10, 2^31], got " + std::string(v));
      }
      options.n = static_cast<size_t>(n);
    } else if ((v = value_of(arg, "--seed"))) {
      FAIRLAW_ASSIGN_OR_RETURN(int64_t seed, fairlaw::ParseInt64(v));
      if (seed < 0) {
        return fairlaw::Status::Invalid("--seed must be >= 0, got " +
                                        std::string(v));
      }
      options.seed = static_cast<uint64_t>(seed);
    } else if ((v = value_of(arg, "--label-bias"))) {
      FAIRLAW_ASSIGN_OR_RETURN(options.label_bias,
                               fairlaw::ParseDouble(v));
    } else if ((v = value_of(arg, "--proxy"))) {
      FAIRLAW_ASSIGN_OR_RETURN(options.proxy, fairlaw::ParseDouble(v));
    } else if ((v = value_of(arg, "--subgroup-bias"))) {
      FAIRLAW_ASSIGN_OR_RETURN(options.subgroup_bias,
                               fairlaw::ParseDouble(v));
    } else if ((v = value_of(arg, "--out"))) {
      options.out = v;
    } else if (arg[0] == '-') {
      return fairlaw::Status::Invalid(std::string("unknown flag: ") + arg);
    } else if (options.scenario.empty()) {
      options.scenario = arg;
    } else {
      return fairlaw::Status::Invalid("more than one scenario given");
    }
  }
  if (options.scenario.empty()) {
    return fairlaw::Status::Invalid("no scenario given");
  }
  return options;
}

fairlaw::Result<fairlaw::sim::ScenarioData> Generate(
    const CliOptions& options) {
  fairlaw::stats::Rng rng(options.seed);
  if (options.scenario == "hiring") {
    fairlaw::sim::HiringOptions hiring;
    hiring.n = options.n;
    hiring.label_bias = options.label_bias;
    hiring.proxy_strength = options.proxy;
    return fairlaw::sim::MakeHiringScenario(hiring, &rng);
  }
  if (options.scenario == "lending") {
    fairlaw::sim::LendingOptions lending;
    lending.n = options.n;
    lending.label_bias = options.label_bias;
    return fairlaw::sim::MakeLendingScenario(lending, &rng);
  }
  if (options.scenario == "promotion") {
    fairlaw::sim::PromotionOptions promotion;
    promotion.n = options.n;
    promotion.subgroup_bias = options.subgroup_bias;
    return fairlaw::sim::MakePromotionScenario(promotion, &rng);
  }
  if (options.scenario == "admissions") {
    fairlaw::sim::AdmissionsOptions admissions;
    admissions.n = options.n;
    admissions.label_bias = options.label_bias;
    return fairlaw::sim::MakeAdmissionsScenario(admissions, &rng);
  }
  return fairlaw::Status::Invalid("unknown scenario '" + options.scenario +
                                  "' (hiring|lending|promotion|admissions)");
}

}  // namespace

int main(int argc, char** argv) {
  fairlaw::Result<CliOptions> parsed = Parse(argc, argv);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n",
                 parsed.status().message().c_str());
    PrintUsage();
    return 1;
  }
  if (parsed->show_help) {
    PrintUsage();
    return 0;
  }
  fairlaw::Result<fairlaw::sim::ScenarioData> scenario = Generate(*parsed);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  if (parsed->out.empty()) {
    fairlaw::Result<std::string> csv =
        fairlaw::data::WriteCsvString(scenario->table);
    if (!csv.ok()) {
      std::fprintf(stderr, "error: %s\n", csv.status().ToString().c_str());
      return 1;
    }
    std::fputs(csv->c_str(), stdout);
  } else {
    fairlaw::Status status =
        fairlaw::data::WriteCsvFile(scenario->table, parsed->out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu rows to %s\n",
                 scenario->table.num_rows(), parsed->out.c_str());
  }
  return 0;
}
