// fairlaw_generate — synthetic fairness-scenario generator.
//
//   fairlaw_generate hiring    --n=10000 --label-bias=1.5 --proxy=1.0
//   fairlaw_generate lending   --n=10000 --label-bias=1.0
//   fairlaw_generate promotion --n=20000 --subgroup-bias=1.5
//   fairlaw_generate admissions --n=10000 --label-bias=0.5
//       [--seed=42] [--out=FILE]
//
// Emits the scenario's audit-ready CSV (protected attribute(s), model
// features, gender-blind merit, historical decision) to stdout or
// --out. Pairs with fairlaw_audit for end-to-end demos:
//
//   fairlaw_generate hiring --label-bias=1.5 --out=h.csv
//   fairlaw_audit h.csv --protected=gender --pred=hired --label=merit
#include <cstdint>
#include <cstdio>
#include <string>

#include "data/csv.h"
#include "simulation/scenarios.h"
#include "tools/cli.h"

namespace {

struct CliOptions {
  std::string scenario;
  int64_t n = 10000;
  uint64_t seed = 42;
  double label_bias = 1.0;
  double proxy = 1.0;
  double subgroup_bias = 1.5;
  std::string out;
};

fairlaw::Result<CliOptions> Parse(int argc, char** argv, bool* show_help,
                                  std::string* help_text) {
  CliOptions options;
  fairlaw::cli::FlagSet flags(
      "fairlaw_generate", "<hiring|lending|promotion|admissions>",
      "Emits a synthetic audit-ready decision CSV to stdout or --out.");
  flags.Add("n", &options.n, "rows to generate",
            fairlaw::cli::Range<int64_t>{10, int64_t{1} << 31});
  flags.Add("seed", &options.seed, "rng seed (runs are reproducible)");
  flags.Add("label-bias", &options.label_bias,
            "historical label bias strength");
  flags.Add("proxy", &options.proxy, "proxy-feature strength (hiring)");
  flags.Add("subgroup-bias", &options.subgroup_bias,
            "intersectional bias strength (promotion)");
  flags.Add("out", &options.out, "output file (default: stdout)");
  *help_text = flags.Help();
  FAIRLAW_ASSIGN_OR_RETURN(fairlaw::cli::ParseResult parsed,
                           flags.Parse(argc, argv));
  if (parsed.help) {
    *show_help = true;
    return options;
  }
  if (parsed.positionals.empty()) {
    return fairlaw::Status::Invalid("no scenario given");
  }
  if (parsed.positionals.size() > 1) {
    return fairlaw::Status::Invalid("more than one scenario given");
  }
  options.scenario = parsed.positionals[0];
  return options;
}

fairlaw::Result<fairlaw::sim::ScenarioData> Generate(
    const CliOptions& options) {
  fairlaw::stats::Rng rng(options.seed);
  const size_t n = static_cast<size_t>(options.n);
  if (options.scenario == "hiring") {
    fairlaw::sim::HiringOptions hiring;
    hiring.n = n;
    hiring.label_bias = options.label_bias;
    hiring.proxy_strength = options.proxy;
    return fairlaw::sim::MakeHiringScenario(hiring, &rng);
  }
  if (options.scenario == "lending") {
    fairlaw::sim::LendingOptions lending;
    lending.n = n;
    lending.label_bias = options.label_bias;
    return fairlaw::sim::MakeLendingScenario(lending, &rng);
  }
  if (options.scenario == "promotion") {
    fairlaw::sim::PromotionOptions promotion;
    promotion.n = n;
    promotion.subgroup_bias = options.subgroup_bias;
    return fairlaw::sim::MakePromotionScenario(promotion, &rng);
  }
  if (options.scenario == "admissions") {
    fairlaw::sim::AdmissionsOptions admissions;
    admissions.n = n;
    admissions.label_bias = options.label_bias;
    return fairlaw::sim::MakeAdmissionsScenario(admissions, &rng);
  }
  return fairlaw::Status::Invalid("unknown scenario '" + options.scenario +
                                  "' (hiring|lending|promotion|admissions)");
}

}  // namespace

int main(int argc, char** argv) {
  bool show_help = false;
  std::string help_text;
  fairlaw::Result<CliOptions> parsed =
      Parse(argc, argv, &show_help, &help_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s",
                 parsed.status().message().c_str(), help_text.c_str());
    return 1;
  }
  if (show_help) {
    std::printf("%s", help_text.c_str());
    return 0;
  }
  fairlaw::Result<fairlaw::sim::ScenarioData> scenario = Generate(*parsed);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  if (parsed->out.empty()) {
    fairlaw::Result<std::string> csv =
        fairlaw::data::WriteCsvString(scenario->table);
    if (!csv.ok()) {
      std::fprintf(stderr, "error: %s\n", csv.status().ToString().c_str());
      return 1;
    }
    std::fputs(csv->c_str(), stdout);
  } else {
    fairlaw::Status status =
        fairlaw::data::WriteCsvFile(scenario->table, parsed->out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu rows to %s\n",
                 scenario->table.num_rows(), parsed->out.c_str());
  }
  return 0;
}
