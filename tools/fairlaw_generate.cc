// fairlaw_generate — synthetic fairness-scenario generator.
//
//   fairlaw_generate hiring    --n=10000 --label-bias=1.5 --proxy=1.0
//   fairlaw_generate lending   --n=10000 --label-bias=1.0
//   fairlaw_generate promotion --n=20000 --subgroup-bias=1.5
//   fairlaw_generate admissions --n=10000 --label-bias=0.5
//       [--seed=42] [--out=FILE]
//
// Emits the scenario's audit-ready CSV (protected attribute(s), model
// features, gender-blind merit, historical decision) to stdout or
// --out. Pairs with fairlaw_audit for end-to-end demos:
//
//   fairlaw_generate hiring --label-bias=1.5 --out=h.csv
//   fairlaw_audit h.csv --protected=gender --pred=hired --label=merit
//
// The "events" scenario instead emits a fairlaw_serve request stream
// (--events-jsonl): ingest requests of --batch events each, with query
// requests injected at fixed event positions (--query-every). The event
// sequence depends only on --seed/--n, never on --batch, so replaying
// the same seed at two batch sizes must produce byte-identical
// '"op":"query"' responses — the CI identity gate:
//
//   fairlaw_generate events --events-jsonl --n=100000 --batch=512 |
//       fairlaw_serve
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "base/string_util.h"
#include "data/csv.h"
#include "simulation/scenarios.h"
#include "tools/cli.h"

namespace {

struct CliOptions {
  std::string scenario;
  int64_t n = 10000;
  uint64_t seed = 42;
  double label_bias = 1.0;
  double proxy = 1.0;
  double subgroup_bias = 1.5;
  std::string out;
  bool events_jsonl = false;
  int64_t batch = 256;
  int64_t query_every = 0;
  int64_t t_step = 10;
  bool with_strata = false;
};

fairlaw::Result<CliOptions> Parse(int argc, char** argv, bool* show_help,
                                  std::string* help_text) {
  CliOptions options;
  fairlaw::cli::FlagSet flags(
      "fairlaw_generate", "<hiring|lending|promotion|admissions>",
      "Emits a synthetic audit-ready decision CSV to stdout or --out.");
  flags.Add("n", &options.n, "rows to generate",
            fairlaw::cli::Range<int64_t>{10, int64_t{1} << 31});
  flags.Add("seed", &options.seed, "rng seed (runs are reproducible)");
  flags.Add("label-bias", &options.label_bias,
            "historical label bias strength");
  flags.Add("proxy", &options.proxy, "proxy-feature strength (hiring)");
  flags.Add("subgroup-bias", &options.subgroup_bias,
            "intersectional bias strength (promotion)");
  flags.Add("out", &options.out, "output file (default: stdout)");
  flags.Section("serve event stream (scenario 'events')");
  flags.Add("events-jsonl", &options.events_jsonl,
            "emit a fairlaw_serve request stream instead of CSV");
  flags.Add("batch", &options.batch, "events per ingest request",
            fairlaw::cli::Range<int64_t>{1, int64_t{1} << 20});
  flags.Add("query-every", &options.query_every,
            "inject the query suite after every N events (0 = only once, "
            "after all events); positions depend on N alone, never on "
            "--batch",
            fairlaw::cli::Range<int64_t>{0, int64_t{1} << 31});
  flags.Add("t-step", &options.t_step,
            "event-time increment between consecutive events",
            fairlaw::cli::Range<int64_t>{1, int64_t{1} << 31});
  flags.Add("with-strata", &options.with_strata,
            "events carry a 'stratum' field (pairs with fairlaw_serve "
            "--with-strata)");
  *help_text = flags.Help();
  FAIRLAW_ASSIGN_OR_RETURN(fairlaw::cli::ParseResult parsed,
                           flags.Parse(argc, argv));
  if (parsed.help) {
    *show_help = true;
    return options;
  }
  if (parsed.positionals.empty()) {
    return fairlaw::Status::Invalid("no scenario given");
  }
  if (parsed.positionals.size() > 1) {
    return fairlaw::Status::Invalid("more than one scenario given");
  }
  options.scenario = parsed.positionals[0];
  if ((options.scenario == "events") != options.events_jsonl) {
    return fairlaw::Status::Invalid(
        "the 'events' scenario and --events-jsonl go together (both or "
        "neither)");
  }
  return options;
}

/// Emits the fairlaw_serve request stream. The event sequence is a pure
/// function of (seed, n, t_step, with_strata): one fixed Rng draws
/// every event in order, and --batch only decides how many consecutive
/// events share an ingest line. Three groups with deliberately
/// different positive rates and score distributions keep the audit
/// queries non-trivial (the four-fifths and drift gates actually have
/// something to find).
fairlaw::Status EmitEventStream(const CliOptions& options, std::FILE* out) {
  static const char* const kGroups[] = {"alpha", "beta", "gamma"};
  static const double kPredRate[] = {0.50, 0.35, 0.44};
  static const double kBaseRate[] = {0.45, 0.40, 0.42};
  static const double kScoreShift[] = {0.0, -0.08, 0.03};
  static const char* const kStrata[] = {"north", "south"};

  fairlaw::stats::Rng rng(options.seed);
  const int64_t n = options.n;
  const int64_t query_every = options.query_every;
  std::string batch_buffer;
  int64_t in_batch = 0;

  auto flush_batch = [&]() {
    if (in_batch == 0) return;
    std::fputs("{\"op\":\"ingest\",\"events\":[", out);
    std::fputs(batch_buffer.c_str(), out);
    std::fputs("]}\n", out);
    batch_buffer.clear();
    in_batch = 0;
  };
  auto emit_queries = [&]() {
    flush_batch();
    std::fputs("{\"op\":\"query\",\"type\":\"audit\"}\n", out);
    std::fputs("{\"op\":\"query\",\"type\":\"four_fifths\"}\n", out);
    std::fputs("{\"op\":\"query\",\"type\":\"drift\"}\n", out);
    std::fputs(
        "{\"op\":\"query\",\"type\":\"quantiles\",\"group\":\"alpha\","
        "\"q\":[0.25,0.5,0.75]}\n",
        out);
    if (options.with_strata) {
      std::fputs(
          "{\"op\":\"query\",\"type\":\"drilldown\",\"stratum\":\"north\"}"
          "\n",
          out);
    }
  };

  for (int64_t i = 0; i < n; ++i) {
    const size_t g = static_cast<size_t>(rng.UniformInt(3));
    const int pred = rng.Bernoulli(kPredRate[g]) ? 1 : 0;
    const int label = rng.Bernoulli(kBaseRate[g]) ? 1 : 0;
    double score = rng.Uniform() * 0.6 + 0.2 + kScoreShift[g] +
                   0.15 * static_cast<double>(label);
    if (score < 0.0) score = 0.0;
    if (score > 1.0) score = 1.0;

    std::string event = "{\"t\":" + std::to_string(i * options.t_step) +
                        ",\"group\":\"" + kGroups[g] +
                        "\",\"pred\":" + std::to_string(pred) +
                        ",\"label\":" + std::to_string(label) + ",\"score\":" +
                        fairlaw::FormatDouble(score, 6);
    if (options.with_strata) {
      event += std::string(",\"stratum\":\"") +
               kStrata[rng.UniformInt(2)] + "\"";
    }
    event += "}";
    if (in_batch > 0) batch_buffer += ",";
    batch_buffer += event;
    ++in_batch;
    if (in_batch == options.batch) flush_batch();
    if (query_every > 0 && (i + 1) % query_every == 0) emit_queries();
  }
  flush_batch();
  // Always finish with one query suite over the full stream — unless
  // the loop's last iteration just emitted it.
  if (query_every == 0 || n % query_every != 0) emit_queries();
  if (std::ferror(out) != 0) {
    return fairlaw::Status::IOError("error writing the event stream");
  }
  return fairlaw::Status::OK();
}

fairlaw::Result<fairlaw::sim::ScenarioData> Generate(
    const CliOptions& options) {
  fairlaw::stats::Rng rng(options.seed);
  const size_t n = static_cast<size_t>(options.n);
  if (options.scenario == "hiring") {
    fairlaw::sim::HiringOptions hiring;
    hiring.n = n;
    hiring.label_bias = options.label_bias;
    hiring.proxy_strength = options.proxy;
    return fairlaw::sim::MakeHiringScenario(hiring, &rng);
  }
  if (options.scenario == "lending") {
    fairlaw::sim::LendingOptions lending;
    lending.n = n;
    lending.label_bias = options.label_bias;
    return fairlaw::sim::MakeLendingScenario(lending, &rng);
  }
  if (options.scenario == "promotion") {
    fairlaw::sim::PromotionOptions promotion;
    promotion.n = n;
    promotion.subgroup_bias = options.subgroup_bias;
    return fairlaw::sim::MakePromotionScenario(promotion, &rng);
  }
  if (options.scenario == "admissions") {
    fairlaw::sim::AdmissionsOptions admissions;
    admissions.n = n;
    admissions.label_bias = options.label_bias;
    return fairlaw::sim::MakeAdmissionsScenario(admissions, &rng);
  }
  return fairlaw::Status::Invalid("unknown scenario '" + options.scenario +
                                  "' (hiring|lending|promotion|admissions)");
}

}  // namespace

int main(int argc, char** argv) {
  bool show_help = false;
  std::string help_text;
  fairlaw::Result<CliOptions> parsed =
      Parse(argc, argv, &show_help, &help_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n\n%s",
                 parsed.status().message().c_str(), help_text.c_str());
    return 1;
  }
  if (show_help) {
    std::printf("%s", help_text.c_str());
    return 0;
  }
  if (parsed->events_jsonl) {
    std::FILE* out = stdout;
    if (!parsed->out.empty()) {
      out = std::fopen(parsed->out.c_str(), "wb");
      if (out == nullptr) {
        std::fprintf(stderr, "error: cannot open '%s' for writing\n",
                     parsed->out.c_str());
        return 1;
      }
    }
    fairlaw::Status status = EmitEventStream(*parsed, out);
    if (out != stdout) std::fclose(out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    return 0;
  }
  fairlaw::Result<fairlaw::sim::ScenarioData> scenario = Generate(*parsed);
  if (!scenario.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 scenario.status().ToString().c_str());
    return 1;
  }
  if (parsed->out.empty()) {
    fairlaw::Result<std::string> csv =
        fairlaw::data::WriteCsvString(scenario->table);
    if (!csv.ok()) {
      std::fprintf(stderr, "error: %s\n", csv.status().ToString().c_str());
      return 1;
    }
    std::fputs(csv->c_str(), stdout);
  } else {
    fairlaw::Status status =
        fairlaw::data::WriteCsvFile(scenario->table, parsed->out);
    if (!status.ok()) {
      std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "wrote %zu rows to %s\n",
                 scenario->table.num_rows(), parsed->out.c_str());
  }
  return 0;
}
